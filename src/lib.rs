//! `treu` — umbrella crate for the TREU workspace.
//!
//! Re-exports every sub-crate and provides [`full_registry`], which wires
//! all of the paper's experiments (tables T1–T3, narrative N1, project
//! experiments E2.2–E2.11 with ablations, and the §3 contention study E3)
//! into a single [`treu_core::ExperimentRegistry`]. The examples and
//! integration tests drive everything through this entry point:
//!
//! ```
//! let reg = treu::full_registry();
//! let record = reg.run("T1", 2023).expect("registered");
//! assert_eq!(record.metric("max_abs_dev"), Some(0.0)); // Table 1 exact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use treu_autotune as autotune;
pub use treu_cluster as cluster;
pub use treu_core as core;
pub use treu_detect as detect;
pub use treu_histo as histo;
pub use treu_lint as lint;
pub use treu_malware as malware;
pub use treu_math as math;
pub use treu_nn as nn;
pub use treu_pf as pf;
pub use treu_rl as rl;
pub use treu_robust as robust;
pub use treu_shapes as shapes;
pub use treu_surveys as surveys;
pub use treu_traj as traj;
pub use treu_unlearn as unlearn;

use treu_core::experiment::Params;
use treu_core::ExperimentRegistry;

/// Builds the complete experiment registry: every table, figure-equivalent
/// experiment and ablation in DESIGN.md's index.
pub fn full_registry() -> ExperimentRegistry {
    let mut reg = ExperimentRegistry::new();
    treu_surveys::experiments::register(&mut reg); // T1, T2, T3, N1
    treu_surveys::bias::register(&mut reg); // X-bias (§4 future work)
    treu_pf::experiment::register(&mut reg); // E2.2a, E2.2b
    treu_unlearn::experiment::register(&mut reg); // E2.3
    treu_traj::experiment::register(&mut reg); // E2.4
    treu_autotune::experiment::register(&mut reg); // E2.5, E2.5-abl
    treu_detect::experiment::register(&mut reg); // E2.6
    treu_histo::experiment::register(&mut reg); // E2.7
    treu_rl::experiment::register(&mut reg); // E2.8, E2.8-abl
    treu_malware::experiment::register(&mut reg); // E2.9
    treu_robust::experiment::register(&mut reg); // E2.10, E2.10-abl
    treu_shapes::experiment::register(&mut reg); // E2.11
    treu_cluster::experiment::register(&mut reg); // E3, cluster_faults
    reg
}

/// The ids of the three published tables, in paper order.
pub const TABLE_IDS: [&str; 3] = ["T1", "T2", "T3"];

/// Every experiment id the registry is expected to contain.
pub const ALL_EXPERIMENT_IDS: [&str; 20] = [
    "T1",
    "T2",
    "T3",
    "N1",
    "E2.2a",
    "E2.2b",
    "E2.3",
    "E2.4",
    "E2.5",
    "E2.5-abl",
    "E2.6",
    "E2.7",
    "E2.8",
    "E2.8-abl",
    "E2.9",
    "E2.10",
    "E2.10-abl",
    "E2.11",
    "X-bias",
    "cluster_faults",
];

/// Lightened parameters per experiment id, so registry-wide conformance
/// sweeps (the harness tests, `treu chaos`, CI smoke runs) stay fast.
/// Determinism is a property of the code path, not of the workload size.
pub fn conformance_params(id: &str) -> Params {
    match id {
        "E2.2a" | "E2.2b" => Params::new().with_int("trials", 2).with_int("particles", 64),
        "E2.3" => Params::new().with_int("trials", 1).with_int("epochs", 8),
        "E2.4" => Params::new()
            .with_int("trials", 1)
            .with_int("train_per_class", 6)
            .with_int("test_per_class", 3),
        "E2.5" => Params::new().with_int("population", 8).with_int("generations", 4),
        "E2.5-abl" => Params::new().with_int("generations", 3),
        "E2.6" => Params::new().with_int("trials", 1).with_int("epochs", 4),
        "E2.7" => Params::new().with_int("n_train", 24).with_int("n_val", 8).with_int("epochs", 4),
        "E2.8" => Params::new().with_int("episodes", 25).with_int("seeds", 2),
        "E2.8-abl" => Params::new().with_int("episodes", 20).with_int("seeds", 2),
        "E2.9" => Params::new()
            .with_int("seq_len", 128)
            .with_int("n_train_per_class", 6)
            .with_int("n_test_per_class", 4)
            .with_int("epochs", 2),
        "E2.10" => Params::new().with_int("n", 200).with_int("trials", 1),
        "E2.10-abl" => Params::new().with_int("n", 200).with_int("d", 16).with_int("trials", 1),
        "E2.11" => Params::new().with_int("shapes", 8),
        "E3" => Params::new().with_int("jobs", 12).with_int("trials", 2),
        "cluster_faults" => Params::new().with_int("jobs", 12).with_int("trials", 1),
        _ => Params::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_every_design_md_id() {
        let reg = full_registry();
        assert_eq!(reg.len(), ALL_EXPERIMENT_IDS.len() + 1, "E3 plus the listed ids");
        for id in ALL_EXPERIMENT_IDS {
            assert!(reg.get(id).is_some(), "missing {id}");
        }
        assert!(reg.get("E3").is_some());
    }

    #[test]
    fn index_renders() {
        let s = full_registry().render_index();
        assert!(s.contains("Table 1"));
        assert!(s.contains("Section 2.10"));
    }
}
