//! `treu` — umbrella crate for the TREU workspace.
//!
//! Re-exports every sub-crate and provides [`full_registry`], which wires
//! all of the paper's experiments (tables T1–T3, narrative N1, project
//! experiments E2.2–E2.11 with ablations, and the §3 contention study E3)
//! into a single [`treu_core::ExperimentRegistry`]. The examples and
//! integration tests drive everything through this entry point:
//!
//! ```
//! let reg = treu::full_registry();
//! let record = reg.run("T1", 2023).expect("registered");
//! assert_eq!(record.metric("max_abs_dev"), Some(0.0)); // Table 1 exact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use treu_autotune as autotune;
pub use treu_cluster as cluster;
pub use treu_core as core;
pub use treu_detect as detect;
pub use treu_histo as histo;
pub use treu_lint as lint;
pub use treu_malware as malware;
pub use treu_math as math;
pub use treu_nn as nn;
pub use treu_pf as pf;
pub use treu_rl as rl;
pub use treu_robust as robust;
pub use treu_shapes as shapes;
pub use treu_surveys as surveys;
pub use treu_traj as traj;
pub use treu_unlearn as unlearn;

use treu_core::ExperimentRegistry;

/// Builds the complete experiment registry: every table, figure-equivalent
/// experiment and ablation in DESIGN.md's index.
pub fn full_registry() -> ExperimentRegistry {
    let mut reg = ExperimentRegistry::new();
    treu_surveys::experiments::register(&mut reg); // T1, T2, T3, N1
    treu_surveys::bias::register(&mut reg); // X-bias (§4 future work)
    treu_pf::experiment::register(&mut reg); // E2.2a, E2.2b
    treu_unlearn::experiment::register(&mut reg); // E2.3
    treu_traj::experiment::register(&mut reg); // E2.4
    treu_autotune::experiment::register(&mut reg); // E2.5, E2.5-abl
    treu_detect::experiment::register(&mut reg); // E2.6
    treu_histo::experiment::register(&mut reg); // E2.7
    treu_rl::experiment::register(&mut reg); // E2.8, E2.8-abl
    treu_malware::experiment::register(&mut reg); // E2.9
    treu_robust::experiment::register(&mut reg); // E2.10, E2.10-abl
    treu_shapes::experiment::register(&mut reg); // E2.11
    treu_cluster::experiment::register(&mut reg); // E3
    reg
}

/// The ids of the three published tables, in paper order.
pub const TABLE_IDS: [&str; 3] = ["T1", "T2", "T3"];

/// Every experiment id the registry is expected to contain.
pub const ALL_EXPERIMENT_IDS: [&str; 19] = [
    "T1",
    "T2",
    "T3",
    "N1",
    "E2.2a",
    "E2.2b",
    "E2.3",
    "E2.4",
    "E2.5",
    "E2.5-abl",
    "E2.6",
    "E2.7",
    "E2.8",
    "E2.8-abl",
    "E2.9",
    "E2.10",
    "E2.10-abl",
    "E2.11",
    "X-bias",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_every_design_md_id() {
        let reg = full_registry();
        assert_eq!(reg.len(), ALL_EXPERIMENT_IDS.len() + 1, "E3 plus the listed ids");
        for id in ALL_EXPERIMENT_IDS {
            assert!(reg.get(id).is_some(), "missing {id}");
        }
        assert!(reg.get("E3").is_some());
    }

    #[test]
    fn index_renders() {
        let s = full_registry().render_index();
        assert!(s.contains("Table 1"));
        assert!(s.contains("Section 2.10"));
    }
}
