//! `treu` — command-line front end to the experiment registry.
//!
//! ```text
//! treu list                  # print the experiment index
//! treu run [id] [seed]       # run one experiment (or all of them)
//! treu tables [seed]         # regenerate the paper's three tables
//! treu verify [id] [seed]    # run twice, check bitwise reproduction
//! treu env                   # print the captured environment
//! treu lint [path]           # static reproducibility analysis
//! ```
//!
//! Every run/tables/verify invocation accepts `--jobs N` (or `-j N`):
//! work fans out over N workers through [`treu::core::exec::Executor`],
//! and the output is bitwise-identical for every N — parallelism changes
//! wall-clock time, never results. The default is one worker per
//! hardware thread.
//!
//! The same commands accept `--cache-dir DIR`: completed runs are stored
//! content-addressed under DIR and replayed on later invocations when the
//! id, seed, parameters and code+environment fingerprint all match.
//! `--no-cache` disables the cache even when `--cache-dir` is given.

use treu::core::cache::RunCache;
use treu::core::environment::Environment;
use treu::core::exec::Executor;
use treu::lint::{DenyLevel, Lint, RuleId, Workspace};
use treu::surveys::{analysis, Cohort};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match extract_jobs(&mut args) {
        Ok(j) => j,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let cache = match extract_cache(&mut args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let cache = cache.as_ref();
    let exec = Executor::new(jobs);
    let reg = treu::full_registry();
    let seed_arg = |i: usize| -> u64 { args.get(i).and_then(|s| s.parse().ok()).unwrap_or(2023) };
    match args.first().map(String::as_str) {
        Some("list") => print!("{}", reg.render_index()),
        Some("run") => match args.get(1) {
            Some(id) => {
                let seed = seed_arg(2);
                let Some(entry) = reg.get(id) else {
                    eprintln!("unknown experiment id '{id}'; try `treu list`");
                    std::process::exit(1);
                };
                let hit = cache.and_then(|c| c.lookup(id, seed, &entry.defaults));
                let cached = hit.is_some();
                let rec = hit
                    .or_else(|| {
                        let rec = reg.run(id, seed).expect("id checked above");
                        if let Some(c) = cache {
                            if let Err(e) = c.store(id, seed, &entry.defaults, &rec) {
                                eprintln!("cache: store failed: {e}");
                            }
                        }
                        Some(rec)
                    })
                    .expect("run or replay produced a record");
                println!(
                    "{} (seed {}, {:.3}s, fingerprint {:#018x}){}",
                    rec.name,
                    rec.seed,
                    rec.wall_seconds,
                    rec.fingerprint(),
                    if cached { " [cached]" } else { "" }
                );
                print!("{}", rec.trail.render());
                if let Some(c) = cache {
                    print!("{}", c.render_stats());
                }
            }
            // No id: run the whole registry through the executor.
            None => {
                let (records, report) = exec.run_all_report_cached(&reg, seed_arg(1), cache);
                for (id, rec) in &records {
                    println!(
                        "{:<10} {} (seed {}, fingerprint {:#018x})",
                        id,
                        rec.name,
                        rec.seed,
                        rec.fingerprint()
                    );
                }
                println!();
                print!("{}", report.render());
                if let Some(c) = cache {
                    print!("{}", c.render_stats());
                }
            }
        },
        Some("tables") => {
            let seed = seed_arg(1);
            let tag = seed.to_string();
            let out = match cache.and_then(|c| c.lookup_blob("tables", &tag)) {
                Some(blob) => blob,
                None => {
                    let cohort = Cohort::simulate(seed);
                    // The three analyses are independent; fan them out, print
                    // in canonical order regardless of which finished first.
                    let rendered = exec.map_indexed(3, |i| match i {
                        0 => analysis::render_table1(&analysis::table1(&cohort)),
                        1 => analysis::render_table2(&analysis::table2(&cohort)),
                        _ => analysis::render_table3(&analysis::table3(&cohort)),
                    });
                    let mut out = String::new();
                    for table in rendered {
                        out.push_str(&table);
                        out.push('\n');
                    }
                    if let Some(c) = cache {
                        if let Err(e) = c.store_blob("tables", &tag, &out) {
                            eprintln!("cache: store failed: {e}");
                        }
                    }
                    out
                }
            };
            print!("{out}");
            if let Some(c) = cache {
                print!("{}", c.render_stats());
            }
        }
        Some("verify") => {
            let seed = seed_arg(2);
            match args.get(1) {
                Some(id) => {
                    let Some(entry) = reg.get(id) else {
                        eprintln!("unknown experiment id '{id}'");
                        std::process::exit(1);
                    };
                    if let Some(rec) = cache.and_then(|c| c.lookup(id, seed, &entry.defaults)) {
                        // A cached trail was produced by a verified run under
                        // the same code+env fingerprint: reproduced by replay.
                        println!(
                            "{id}: REPRODUCED [cached] (fingerprint {:#018x})",
                            rec.fingerprint()
                        );
                        if let Some(c) = cache {
                            print!("{}", c.render_stats());
                        }
                        return;
                    }
                    // Two concurrent replicas of the same run.
                    let runs =
                        exec.map_indexed(2, |_| reg.run(id, seed).expect("id checked above"));
                    if runs[0].trail == runs[1].trail {
                        if let Some(c) = cache {
                            if let Err(e) = c.store(id, seed, &entry.defaults, &runs[0]) {
                                eprintln!("cache: store failed: {e}");
                            }
                        }
                        println!("{id}: REPRODUCED (fingerprint {:#018x})", runs[0].fingerprint());
                        if let Some(c) = cache {
                            print!("{}", c.render_stats());
                        }
                    } else {
                        println!("{id}: MISMATCH — run is not deterministic");
                        std::process::exit(1);
                    }
                }
                // No id: verify the whole registry.
                None => {
                    let report = exec.verify_all_cached(&reg, seed_arg(1), cache);
                    print!("{}", report.render());
                    if let Some(c) = cache {
                        print!("{}", c.render_stats());
                    }
                    if !report.all_reproduced() {
                        std::process::exit(1);
                    }
                }
            }
        }
        Some("env") => print!("{}", Environment::capture().render()),
        Some("lint") => run_lint(&args[1..]),
        _ => {
            eprintln!(
                "usage: treu <list|run|tables|verify|env|lint> [...] \
                 [--jobs N] [--cache-dir DIR] [--no-cache]"
            );
            std::process::exit(2);
        }
    }
}

/// `treu lint [path] [--format human|json] [--deny none|warn|error]
/// [--rules R1,wall-clock,...]` — static reproducibility analysis over a
/// workspace (default: the current directory). Exits 1 when findings
/// reach the deny level, 2 on usage or I/O errors.
fn run_lint(args: &[String]) {
    fn usage_err(msg: String) -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let mut format = "human".to_string();
    let mut deny = DenyLevel::Warn;
    let mut rules: Option<Vec<RuleId>> = None;
    let mut root: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut flag_value = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Some(v.to_string());
            }
            if arg == flag {
                if i + 1 >= args.len() {
                    usage_err(format!("{flag} requires a value"));
                }
                i += 1;
                return Some(args[i].clone());
            }
            None
        };
        if let Some(v) = flag_value("--format") {
            if v != "human" && v != "json" {
                usage_err(format!("invalid --format '{v}' (want human|json)"));
            }
            format = v;
        } else if let Some(v) = flag_value("--deny") {
            deny = DenyLevel::parse(&v).unwrap_or_else(|| {
                usage_err(format!("invalid --deny '{v}' (want none|warn|error)"))
            });
        } else if let Some(v) = flag_value("--rules") {
            let parsed: Option<Vec<RuleId>> = v.split(',').map(RuleId::parse).collect();
            rules = Some(parsed.unwrap_or_else(|| {
                usage_err(format!("invalid --rules '{v}' (want codes R1..R7 or rule names)"))
            }));
        } else if arg.starts_with('-') {
            usage_err(format!("unknown lint flag '{arg}'"));
        } else if root.is_none() {
            root = Some(arg.clone());
        } else {
            usage_err(format!("unexpected argument '{arg}'"));
        }
        i += 1;
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    let ws = Workspace::discover(std::path::Path::new(&root)).unwrap_or_else(|e| {
        eprintln!("lint: cannot walk '{root}': {e}");
        std::process::exit(2);
    });
    let lint = match rules {
        Some(r) => Lint::with_rules(r),
        None => Lint::new(),
    };
    let report = lint.run(&ws).unwrap_or_else(|e| {
        eprintln!("lint: {e}");
        std::process::exit(2);
    });
    match format.as_str() {
        "json" => print!("{}", report.render_json()),
        _ => print!("{}", report.render_human()),
    }
    if report.exceeds(deny) {
        std::process::exit(1);
    }
}

/// Removes `--cache-dir DIR` (or `--cache-dir=DIR`) and `--no-cache` from
/// `args` and returns the opened run cache. The cache is opt-in: with no
/// `--cache-dir` there is nothing to read or write, and `--no-cache`
/// disables a `--cache-dir` that is also present (useful for forcing a
/// recomputation without editing scripts).
fn extract_cache(args: &mut Vec<String>) -> Result<Option<RunCache>, String> {
    let mut dir: Option<String> = None;
    let mut disabled = false;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        if arg == "--no-cache" {
            disabled = true;
            args.remove(i);
        } else if arg == "--cache-dir" {
            if i + 1 >= args.len() {
                return Err("--cache-dir requires a value".to_string());
            }
            dir = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(v) = arg.strip_prefix("--cache-dir=") {
            dir = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    if disabled {
        return Ok(None);
    }
    match dir {
        None => Ok(None),
        Some(d) => RunCache::open(std::path::Path::new(&d))
            .map(Some)
            .map_err(|e| format!("cannot open cache dir '{d}': {e}")),
    }
}

/// Removes `--jobs N` / `-j N` (or `--jobs=N`) from `args` and returns the
/// worker count, defaulting to the hardware thread count.
fn extract_jobs(args: &mut Vec<String>) -> Result<usize, String> {
    let mut jobs = treu::math::parallel::default_threads();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let value = if arg == "--jobs" || arg == "-j" {
            if i + 1 >= args.len() {
                return Err(format!("{arg} requires a value"));
            }
            let v = args.remove(i + 1);
            args.remove(i);
            v
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            args.remove(i);
            v.to_string()
        } else {
            i += 1;
            continue;
        };
        jobs =
            value.parse::<usize>().ok().filter(|&j| j >= 1).ok_or_else(|| {
                format!("invalid --jobs value '{value}' (want a positive integer)")
            })?;
    }
    Ok(jobs)
}
