//! `treu` — command-line front end to the experiment registry.
//!
//! ```text
//! treu list                  # print the experiment index
//! treu run [id] [seed]       # run one experiment (or all of them)
//! treu tables [seed]         # regenerate the paper's three tables
//! treu verify [id] [seed]    # run twice, check bitwise reproduction
//! treu chaos [seed]          # verify under injected transient faults
//! treu trace <dir|file>      # render or --check stored run traces
//! treu env                   # print the captured environment
//! treu attest <init|show|verify|badge>   # attestation chain ops
//! treu lint [path]           # static reproducibility analysis
//! treu soak [seed]           # sustained multi-tenant chaos soak
//! treu tune [seed]           # autotune matmul schedules into the book
//! treu worker                # verification worker (spawned, not typed)
//! ```
//!
//! Every run/tables/verify invocation accepts `--jobs N` (or `-j N`):
//! work fans out over N workers through [`treu::core::exec::Executor`],
//! and the output is bitwise-identical for every N — parallelism changes
//! wall-clock time, never results. The default is one worker per
//! hardware thread.
//!
//! The same commands accept `--cache-dir DIR`: completed runs are stored
//! content-addressed under DIR and replayed on later invocations when the
//! id, seed, parameters and code+environment fingerprint all match.
//! `--no-cache` disables the cache even when `--cache-dir` is given.
//!
//! `run`, `verify` and `chaos` also accept `--trace-out DIR`: the batch's
//! span stream (claims, attempts, faults, backoffs, cache traffic,
//! verdicts) is written content-addressed under DIR as
//! `trace-<hash>.jsonl`, with timestamps in a `.times.jsonl` sidecar that
//! is not part of the hash — the event stream is bitwise-identical for
//! every `--jobs` count. `treu trace DIR` renders stored traces and
//! `treu trace DIR --check` re-verifies them against their addresses.
//!
//! Registry-wide `run`, `verify`, `chaos` and `soak` accept `--workers
//! N`: the batch is sharded across N supervised `treu worker`
//! subprocesses speaking a length-prefixed frame protocol over
//! stdin/stdout. `--kill-plan SEED` arms a seeded chaos monkey that
//! SIGKILLs workers mid-shard (`--kill-rate F` tunes it),
//! `--respawn-budget N` bounds respawns per worker slot before the
//! coordinator degrades gracefully to in-process execution, and
//! `--shard-size N` overrides the auto shard size. Results, fingerprints
//! and trace addresses are bitwise-identical at every topology and kill
//! schedule.
//!
//! Registry-wide `run` and `verify` also accept `--attest-dir DIR` (and
//! `--attest-key FILE`): after the batch completes, the coordinator
//! seals an in-toto-style **link** into DIR naming everything the step
//! consumed and produced as content addresses, chained by a keyed MAC to
//! the previous link and rooted in the layout document. `treu attest
//! init` provisions the directory, `treu attest show` prints the chain,
//! `treu attest verify` walks it and pinpoints the first step whose
//! products were tampered, and `treu attest badge` turns a verified
//! chain into an ACM-style badge evaluation. Links are emitted
//! coordinator-side only, so their bytes are identical at every
//! `(workers, jobs)` topology.
//!
//! Supervision (run/verify): `--retries N` retries failed attempts under
//! the deterministic backoff, `--deadline-secs F` arms a per-run
//! watchdog, `--fault-seed S --fault-rate F` inject a seeded fault plan,
//! `--fault-panic ID` makes one id fail permanently, and `--deny
//! none|warn|error` decides what findings flip the exit code. Runs that
//! exhaust their budget are quarantined with a taxonomy, never fatal to
//! the batch.

use std::path::{Path, PathBuf};

use treu::core::artifact::Artifact;
use treu::core::attest::{
    hash_bytes, verify_chain, AttestKey, AttestStore, Layout, Link, LinkDraft, VerifyContext,
};
use treu::core::badge::{evaluate, Badge, ClaimCheck};
use treu::core::cache::{run_entry_file, CacheBound, RunCache};
use treu::core::environment::Environment;
use treu::core::exec::{
    run_supervised_traced, DenyPolicy, Executor, FailureKind, RunOutcome, SupervisePolicy,
};
use treu::core::experiment::Params;
use treu::core::fault::{FaultPlan, KillPlan};
use treu::core::svc::{run_all_svc, verify_all_svc, worker_loop, SvcConfig};
use treu::core::trace::{
    check_trace_file, parse_times, parse_trace, render_slowest, render_timeline,
    render_worker_table, AttemptOutcome, BatchTrace, CacheResult, RunTrace, TraceEvent,
};
use treu::core::ExperimentRegistry;
use treu::lint::{DenyLevel, Lint, RuleId, Workspace};
use treu::surveys::{analysis, Cohort};

/// Supervision settings pulled from the shared command-line flags.
#[derive(Default)]
struct Supervision {
    retries: Option<u32>,
    deadline_secs: Option<f64>,
    fault_seed: Option<u64>,
    fault_rate: Option<f64>,
    fault_panic: Vec<String>,
    deny: Option<DenyPolicy>,
    enforce: bool,
    full: bool,
    conformance: bool,
}

impl Supervision {
    /// The retry/deadline budget the flags ask for.
    fn policy(&self) -> SupervisePolicy {
        let p = SupervisePolicy::new(self.retries.unwrap_or(0));
        match self.deadline_secs {
            Some(s) => p.with_deadline_secs(s),
            None => p,
        }
    }

    /// The full-menu fault plan, when any fault flag is present.
    fn plan(&self) -> Option<FaultPlan> {
        if self.fault_seed.is_none() && self.fault_rate.is_none() && self.fault_panic.is_empty() {
            return None;
        }
        let mut plan = FaultPlan::new(self.fault_seed.unwrap_or(0), self.fault_rate.unwrap_or(0.0));
        for id in &self.fault_panic {
            plan = plan.and_panic_on(id);
        }
        Some(plan)
    }

    /// Exit-code policy; errors gate by default, as `verify` always did.
    fn deny(&self) -> DenyPolicy {
        self.deny.unwrap_or(DenyPolicy::Error)
    }

    /// True when any supervision behaviour beyond "run it plain" is
    /// requested — the plain paths stay bit-for-bit what they were.
    fn active(&self) -> bool {
        self.plan().is_some() || self.retries.is_some() || self.deadline_secs.is_some()
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("worker") {
        // A verification worker: speak the length-prefixed frame protocol
        // over stdin/stdout until the coordinator says shutdown. Injected
        // faults panic by design and the in-worker supervisor catches
        // them, so the default per-panic stderr trace is noise.
        std::panic::set_hook(Box::new(|_| {}));
        let reg = treu::full_registry();
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = worker_loop(&reg, stdin.lock(), stdout.lock()) {
            eprintln!("worker: {e}");
            std::process::exit(1);
        }
        return;
    }
    let jobs = match extract_jobs(&mut args) {
        Ok(j) => j,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let cache = match extract_cache(&mut args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let cache = cache.as_ref();
    let trace_out = match extract_trace_out(&mut args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let trace_out = trace_out.as_deref();
    let svc = match extract_svc(&mut args) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let svc = svc.as_ref();
    let attest = match extract_attest(&mut args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let attest = attest.as_ref();
    // `lint` owns its own `--deny` flag; leave its arguments untouched.
    let sup = if args.first().map(String::as_str) == Some("lint") {
        Supervision::default()
    } else {
        match extract_supervision(&mut args) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    };
    let chaos = args.first().map(String::as_str) == Some("chaos");
    let soak = args.first().map(String::as_str) == Some("soak");
    if sup.plan().is_some() || chaos || soak {
        // Injected faults panic by design; the supervisor catches and
        // reports them, so the default per-panic stderr trace is noise.
        std::panic::set_hook(Box::new(|_| {}));
    }
    let exec = Executor::new(jobs);
    let reg = treu::full_registry();
    let seed_arg = |i: usize| -> u64 { args.get(i).and_then(|s| s.parse().ok()).unwrap_or(2023) };
    match args.first().map(String::as_str) {
        Some("list") => print!("{}", reg.render_index()),
        Some("run") => match args.get(1) {
            Some(id) => {
                let seed = seed_arg(2);
                let Some(entry) = reg.get(id) else {
                    eprintln!("unknown experiment id '{id}'; try `treu list`");
                    std::process::exit(1);
                };
                if attest.is_some() {
                    eprintln!(
                        "attest: links attest whole-registry batches; \
                         --attest-dir is ignored for a single-id run"
                    );
                }
                if sup.active() {
                    // treu-lint: allow(wall-clock, reason = "trace timestamps live in the non-hashed sidecar")
                    let epoch = std::time::Instant::now();
                    let mut rt = trace_out.map(|_| RunTrace::new(id, seed));
                    if let Some(rt) = rt.as_mut() {
                        rt.push(TraceEvent::Claim { replica: 0 }, 0.0);
                    }
                    // Supervised runs bypass the cache: a faulted trail
                    // must never be stored as the experiment's record.
                    let out = run_supervised_traced(
                        entry.runner(),
                        id,
                        seed,
                        &entry.defaults,
                        &sup.policy(),
                        sup.plan().as_ref(),
                        0,
                        rt.as_mut().map(|rt| (rt, epoch)),
                    );
                    let gate = match out {
                        RunOutcome::Ok { record, attempts } => {
                            println!(
                                "{} (seed {}, {:.3}s, fingerprint {:#018x}){}",
                                record.name,
                                record.seed,
                                record.wall_seconds,
                                record.fingerprint(),
                                if attempts > 1 {
                                    format!(" [after {attempts} attempts]")
                                } else {
                                    String::new()
                                }
                            );
                            print!("{}", record.trail.render());
                            attempts > 1 && sup.deny() == DenyPolicy::Warn
                        }
                        RunOutcome::Failed(f) => {
                            println!(
                                "{id}: QUARANTINED({}) after {} attempt(s): {}",
                                f.taxonomy.name(),
                                f.attempts,
                                f.last_error
                            );
                            sup.deny() != DenyPolicy::None
                        }
                    };
                    if let (Some(dir), Some(rt)) = (trace_out, rt) {
                        let mut trace = BatchTrace::empty("run", seed);
                        trace.jobs = 1;
                        trace.wall_seconds = epoch.elapsed().as_secs_f64();
                        trace.runs.push(rt);
                        write_trace(&trace, dir);
                    }
                    if gate {
                        std::process::exit(1);
                    }
                    return;
                }
                // treu-lint: allow(wall-clock, reason = "trace timestamps live in the non-hashed sidecar")
                let epoch = std::time::Instant::now();
                let mut rt = trace_out.map(|_| RunTrace::new(id, seed));
                let hit = cache.and_then(|c| c.lookup(id, seed, &entry.defaults));
                let cached = hit.is_some();
                if let (Some(rt), Some(_)) = (rt.as_mut(), cache) {
                    let result = if cached { CacheResult::Hit } else { CacheResult::Miss };
                    rt.push(TraceEvent::Cache { result }, epoch.elapsed().as_secs_f64());
                }
                let rec = match hit {
                    Some(rec) => rec,
                    None => {
                        if let Some(rt) = rt.as_mut() {
                            let at = epoch.elapsed().as_secs_f64();
                            rt.push(TraceEvent::Claim { replica: 0 }, at);
                            rt.push(TraceEvent::AttemptStart { replica: 0, attempt: 0 }, at);
                        }
                        let rec = reg.run(id, seed).expect("id checked above");
                        if let Some(rt) = rt.as_mut() {
                            rt.push(
                                TraceEvent::AttemptEnd {
                                    replica: 0,
                                    attempt: 0,
                                    outcome: AttemptOutcome::Ok,
                                },
                                epoch.elapsed().as_secs_f64(),
                            );
                        }
                        if let Some(c) = cache {
                            match c.store(id, seed, &entry.defaults, &rec) {
                                Ok(()) => {
                                    if let Some(rt) = rt.as_mut() {
                                        rt.push(
                                            TraceEvent::CacheStored,
                                            epoch.elapsed().as_secs_f64(),
                                        );
                                    }
                                }
                                Err(e) => eprintln!("cache: store failed: {e}"),
                            }
                        }
                        rec
                    }
                };
                println!(
                    "{} (seed {}, {:.3}s, fingerprint {:#018x}){}",
                    rec.name,
                    rec.seed,
                    rec.wall_seconds,
                    rec.fingerprint(),
                    if cached { " [cached]" } else { "" }
                );
                print!("{}", rec.trail.render());
                if let Some(c) = cache {
                    print!("{}", c.render_stats());
                }
                if let (Some(dir), Some(rt)) = (trace_out, rt) {
                    let mut trace = BatchTrace::empty("run", seed);
                    trace.jobs = 1;
                    trace.wall_seconds = epoch.elapsed().as_secs_f64();
                    trace.runs.push(rt);
                    write_trace(&trace, dir);
                }
            }
            // No id: run the whole registry through the executor.
            None => {
                if let Some(svc) = svc {
                    let (pairs, report, stats) = run_all_svc(
                        &reg,
                        seed_arg(1),
                        cache,
                        &sup.policy(),
                        sup.plan().as_ref(),
                        svc.config(jobs, true),
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("svc: {e}");
                        std::process::exit(2);
                    });
                    for (id, out) in &pairs {
                        match out {
                            RunOutcome::Ok { record, attempts } => println!(
                                "{:<10} {} (seed {}, fingerprint {:#018x}){}",
                                id,
                                record.name,
                                record.seed,
                                record.fingerprint(),
                                if *attempts > 1 {
                                    format!(" [after {attempts} attempts]")
                                } else {
                                    String::new()
                                }
                            ),
                            RunOutcome::Failed(f) => println!(
                                "{:<10} QUARANTINED({}) after {} attempt(s): {}",
                                id,
                                f.taxonomy.name(),
                                f.attempts,
                                f.last_error
                            ),
                        }
                    }
                    println!();
                    print!("{}", report.render());
                    println!("{}", stats.render());
                    if let Some(c) = cache {
                        print!("{}", c.render_stats());
                    }
                    if let Some(dir) = trace_out {
                        write_trace(&report.trace, dir);
                    }
                    if let Some(at) = attest {
                        // Coordinator-side only: workers never touch the chain.
                        let mut d = LinkDraft::new("run", seed_arg(1));
                        d.absorb_run_outcomes(&pairs);
                        attest_emit(
                            at,
                            &reg,
                            d,
                            cache,
                            &|_, p| p,
                            trace_out.map(|_| &report.trace),
                        );
                    }
                    let retried = pairs.iter().any(|(_, o)| o.is_ok() && o.attempts() > 1);
                    let gated = match sup.deny() {
                        DenyPolicy::None => false,
                        DenyPolicy::Error => report.failed_runs > 0,
                        DenyPolicy::Warn => report.failed_runs > 0 || retried,
                    };
                    if gated {
                        std::process::exit(1);
                    }
                    return;
                }
                if sup.active() {
                    let (pairs, report) = exec.run_all_supervised(
                        &reg,
                        seed_arg(1),
                        &sup.policy(),
                        sup.plan().as_ref(),
                    );
                    for (id, out) in &pairs {
                        match out {
                            RunOutcome::Ok { record, attempts } => println!(
                                "{:<10} {} (seed {}, fingerprint {:#018x}){}",
                                id,
                                record.name,
                                record.seed,
                                record.fingerprint(),
                                if *attempts > 1 {
                                    format!(" [after {attempts} attempts]")
                                } else {
                                    String::new()
                                }
                            ),
                            RunOutcome::Failed(f) => println!(
                                "{:<10} QUARANTINED({}) after {} attempt(s): {}",
                                id,
                                f.taxonomy.name(),
                                f.attempts,
                                f.last_error
                            ),
                        }
                    }
                    println!();
                    print!("{}", report.render());
                    if let Some(dir) = trace_out {
                        write_trace(&report.trace, dir);
                    }
                    if let Some(at) = attest {
                        let mut d = LinkDraft::new("run", seed_arg(1));
                        d.absorb_run_outcomes(&pairs);
                        attest_emit(
                            at,
                            &reg,
                            d,
                            cache,
                            &|_, p| p,
                            trace_out.map(|_| &report.trace),
                        );
                    }
                    let retried = pairs.iter().any(|(_, o)| o.is_ok() && o.attempts() > 1);
                    let gated = match sup.deny() {
                        DenyPolicy::None => false,
                        DenyPolicy::Error => report.failed_runs > 0,
                        DenyPolicy::Warn => report.failed_runs > 0 || retried,
                    };
                    if gated {
                        std::process::exit(1);
                    }
                    return;
                }
                let (records, report) = exec.run_all_report_cached(&reg, seed_arg(1), cache);
                for (id, rec) in &records {
                    println!(
                        "{:<10} {} (seed {}, fingerprint {:#018x})",
                        id,
                        rec.name,
                        rec.seed,
                        rec.fingerprint()
                    );
                }
                println!();
                print!("{}", report.render());
                if let Some(c) = cache {
                    print!("{}", c.render_stats());
                }
                if let Some(dir) = trace_out {
                    write_trace(&report.trace, dir);
                }
                if let Some(at) = attest {
                    let mut d = LinkDraft::new("run", seed_arg(1));
                    d.absorb_run_records(&records);
                    attest_emit(at, &reg, d, cache, &|_, p| p, trace_out.map(|_| &report.trace));
                }
            }
        },
        Some("tables") => {
            let seed = seed_arg(1);
            let tag = seed.to_string();
            let out = match cache.and_then(|c| c.lookup_blob("tables", &tag)) {
                Some(blob) => blob,
                None => {
                    let cohort = Cohort::simulate(seed);
                    // The three analyses are independent; fan them out, print
                    // in canonical order regardless of which finished first.
                    let rendered = exec.map_indexed(3, |i| match i {
                        0 => analysis::render_table1(&analysis::table1(&cohort)),
                        1 => analysis::render_table2(&analysis::table2(&cohort)),
                        _ => analysis::render_table3(&analysis::table3(&cohort)),
                    });
                    let mut out = String::new();
                    for table in rendered {
                        out.push_str(&table);
                        out.push('\n');
                    }
                    if let Some(c) = cache {
                        if let Err(e) = c.store_blob("tables", &tag, &out) {
                            eprintln!("cache: store failed: {e}");
                        }
                    }
                    out
                }
            };
            print!("{out}");
            if let Some(c) = cache {
                print!("{}", c.render_stats());
            }
        }
        Some("verify") => {
            let seed = seed_arg(2);
            match args.get(1) {
                Some(id) => {
                    let Some(entry) = reg.get(id) else {
                        eprintln!("unknown experiment id '{id}'");
                        std::process::exit(1);
                    };
                    if attest.is_some() {
                        eprintln!(
                            "attest: links attest whole-registry batches; \
                             --attest-dir is ignored for a single-id verify"
                        );
                    }
                    if sup.active() {
                        let policy = sup.policy();
                        let plan = sup.plan();
                        // treu-lint: allow(wall-clock, reason = "trace timestamps live in the non-hashed sidecar")
                        let epoch = std::time::Instant::now();
                        let tracing = trace_out.is_some();
                        let pairs = exec.map_indexed(2, |i| {
                            let mut rt = tracing.then(|| RunTrace::new(id, seed));
                            if let Some(rt) = rt.as_mut() {
                                rt.push(
                                    TraceEvent::Claim { replica: i as u32 },
                                    epoch.elapsed().as_secs_f64(),
                                );
                            }
                            let out = run_supervised_traced(
                                entry.runner(),
                                id,
                                seed,
                                &entry.defaults,
                                &policy,
                                plan.as_ref(),
                                i as u32,
                                rt.as_mut().map(|rt| (rt, epoch)),
                            );
                            (out, rt)
                        });
                        let (outs, rts): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
                        let (gate, verdict) = match (&outs[0], &outs[1]) {
                            (
                                RunOutcome::Ok { record: a, attempts: aa },
                                RunOutcome::Ok { record: b, attempts: ab },
                            ) if a.trail == b.trail => {
                                let attempts = (*aa).max(*ab);
                                println!(
                                    "{id}: REPRODUCED (fingerprint {:#018x}){}",
                                    a.fingerprint(),
                                    if attempts > 1 {
                                        format!(" [after {attempts} attempts]")
                                    } else {
                                        String::new()
                                    }
                                );
                                let gate = attempts > 1 && sup.deny() == DenyPolicy::Warn;
                                (gate, (true, attempts, a.fingerprint(), None))
                            }
                            (
                                RunOutcome::Ok { record: a, attempts: aa },
                                RunOutcome::Ok { attempts: ab, .. },
                            ) => {
                                println!("{id}: MISMATCH — run is not deterministic");
                                (
                                    sup.deny() != DenyPolicy::None,
                                    (
                                        false,
                                        (*aa).max(*ab),
                                        a.fingerprint(),
                                        Some(FailureKind::Nondeterministic.name()),
                                    ),
                                )
                            }
                            _ => {
                                let f = outs
                                    .iter()
                                    .find_map(|o| match o {
                                        RunOutcome::Failed(f) => Some(f),
                                        RunOutcome::Ok { .. } => None,
                                    })
                                    .expect("a non-ok pair contains a failure");
                                println!(
                                    "{id}: QUARANTINED({}) after {} attempt(s): {}",
                                    f.taxonomy.name(),
                                    f.attempts,
                                    f.last_error
                                );
                                (
                                    sup.deny() != DenyPolicy::None,
                                    (false, f.attempts, 0, Some(f.taxonomy.name())),
                                )
                            }
                        };
                        if let Some(dir) = trace_out {
                            let mut merged = RunTrace::new(id, seed);
                            for rt in rts.into_iter().flatten() {
                                merged.absorb(rt);
                            }
                            let (reproduced, attempts, fingerprint, failure) = verdict;
                            merged.push(
                                TraceEvent::Verdict {
                                    reproduced,
                                    cached: false,
                                    attempts,
                                    fingerprint,
                                    failure,
                                },
                                epoch.elapsed().as_secs_f64(),
                            );
                            let mut trace = BatchTrace::empty("verify", seed);
                            trace.jobs = jobs;
                            trace.wall_seconds = epoch.elapsed().as_secs_f64();
                            trace.runs.push(merged);
                            write_trace(&trace, dir);
                        }
                        if gate {
                            std::process::exit(1);
                        }
                        return;
                    }
                    // treu-lint: allow(wall-clock, reason = "trace timestamps live in the non-hashed sidecar")
                    let epoch = std::time::Instant::now();
                    let mut rt = trace_out.map(|_| RunTrace::new(id, seed));
                    let write_verify_trace = |rt: RunTrace, dir: &Path| {
                        let mut trace = BatchTrace::empty("verify", seed);
                        trace.jobs = jobs;
                        trace.wall_seconds = epoch.elapsed().as_secs_f64();
                        trace.runs.push(rt);
                        write_trace(&trace, dir);
                    };
                    if let Some(rec) = cache.and_then(|c| c.lookup(id, seed, &entry.defaults)) {
                        // A cached trail was produced by a verified run under
                        // the same code+env fingerprint: reproduced by replay.
                        println!(
                            "{id}: REPRODUCED [cached] (fingerprint {:#018x})",
                            rec.fingerprint()
                        );
                        if let Some(c) = cache {
                            print!("{}", c.render_stats());
                        }
                        if let (Some(dir), Some(mut rt)) = (trace_out, rt) {
                            let at = epoch.elapsed().as_secs_f64();
                            rt.push(TraceEvent::Cache { result: CacheResult::Hit }, at);
                            rt.push(
                                TraceEvent::Verdict {
                                    reproduced: true,
                                    cached: true,
                                    attempts: 1,
                                    fingerprint: rec.fingerprint(),
                                    failure: None,
                                },
                                at,
                            );
                            write_verify_trace(rt, dir);
                        }
                        return;
                    }
                    if let (Some(rt), Some(_)) = (rt.as_mut(), cache) {
                        let at = epoch.elapsed().as_secs_f64();
                        rt.push(TraceEvent::Cache { result: CacheResult::Miss }, at);
                    }
                    // Two concurrent replicas of the same run.
                    let runs =
                        exec.map_indexed(2, |_| reg.run(id, seed).expect("id checked above"));
                    if let Some(rt) = rt.as_mut() {
                        let at = epoch.elapsed().as_secs_f64();
                        for replica in 0..2u32 {
                            rt.push(TraceEvent::Claim { replica }, at);
                            rt.push(TraceEvent::AttemptStart { replica, attempt: 0 }, at);
                            rt.push(
                                TraceEvent::AttemptEnd {
                                    replica,
                                    attempt: 0,
                                    outcome: AttemptOutcome::Ok,
                                },
                                at,
                            );
                        }
                    }
                    let reproduced = runs[0].trail == runs[1].trail;
                    if reproduced {
                        if let Some(c) = cache {
                            match c.store(id, seed, &entry.defaults, &runs[0]) {
                                Ok(()) => {
                                    if let Some(rt) = rt.as_mut() {
                                        rt.push(
                                            TraceEvent::CacheStored,
                                            epoch.elapsed().as_secs_f64(),
                                        );
                                    }
                                }
                                Err(e) => eprintln!("cache: store failed: {e}"),
                            }
                        }
                        println!("{id}: REPRODUCED (fingerprint {:#018x})", runs[0].fingerprint());
                        if let Some(c) = cache {
                            print!("{}", c.render_stats());
                        }
                    } else {
                        println!("{id}: MISMATCH — run is not deterministic");
                    }
                    if let (Some(dir), Some(mut rt)) = (trace_out, rt.take()) {
                        rt.push(
                            TraceEvent::Verdict {
                                reproduced,
                                cached: false,
                                attempts: 1,
                                fingerprint: runs[0].fingerprint(),
                                failure: (!reproduced)
                                    .then(|| FailureKind::Nondeterministic.name()),
                            },
                            epoch.elapsed().as_secs_f64(),
                        );
                        write_verify_trace(rt, dir);
                    }
                    if !reproduced {
                        std::process::exit(1);
                    }
                }
                // No id: verify the whole registry under supervision
                // (with default flags this is exactly the old behaviour).
                None => {
                    let params = |id: &str, d| {
                        if sup.conformance {
                            treu::conformance_params(id)
                        } else {
                            d
                        }
                    };
                    let report = match svc {
                        Some(svc) => {
                            let (report, stats) = verify_all_svc(
                                &reg,
                                seed_arg(1),
                                cache,
                                &sup.policy(),
                                sup.plan().as_ref(),
                                params,
                                svc.config(jobs, true),
                            )
                            .unwrap_or_else(|e| {
                                eprintln!("svc: {e}");
                                std::process::exit(2);
                            });
                            println!("{}", stats.render());
                            report
                        }
                        None => exec.verify_all_supervised_with(
                            &reg,
                            seed_arg(1),
                            cache,
                            &sup.policy(),
                            sup.plan().as_ref(),
                            params,
                        ),
                    };
                    print!("{}", report.render());
                    if let Some(c) = cache {
                        print!("{}", c.render_stats());
                    }
                    if let Some(dir) = trace_out {
                        write_trace(&report.trace, dir);
                    }
                    if let Some(at) = attest {
                        // Coordinator-side only: the svc workers never see
                        // the chain, so link bytes are topology-invariant.
                        let mut d = LinkDraft::new("verify", seed_arg(1));
                        d.absorb_verify(&report);
                        attest_emit(at, &reg, d, cache, &params, trace_out.map(|_| &report.trace));
                    }
                    if report.exceeds(sup.deny()) {
                        std::process::exit(1);
                    }
                }
            }
        }
        Some("env") => print!("{}", Environment::capture().render()),
        Some("attest") => run_attest_cmd(&args[1..], &reg, attest, cache, trace_out, &sup),
        Some("chaos") => run_chaos(&exec, &reg, seed_arg(1), &sup, trace_out, svc, jobs),
        Some("soak") => run_soak_cmd(&reg, &args[1..], jobs, &sup, svc),
        Some("trace") => run_trace(&args[1..]),
        Some("lint") => run_lint(&args[1..], jobs),
        Some("tune") => run_tune_cmd(&args[1..], cache, jobs, &sup),
        _ => {
            eprintln!(
                "usage: treu <list|run|tables|verify|chaos|trace|env|attest|lint|soak|tune|worker> \
                 [...] [--jobs N] [--cache-dir DIR] [--no-cache] [--trace-out DIR] \
                 [--attest-dir DIR] [--attest-key FILE] \
                 [--retries N] [--deadline-secs F] [--fault-seed S] \
                 [--fault-rate F] [--fault-panic ID] [--deny none|warn|error] \
                 [--workers N] [--kill-plan SEED] [--kill-rate F] \
                 [--respawn-budget N] [--shard-size N]"
            );
            std::process::exit(2);
        }
    }
}

/// The steady-state hit-rate the quick soak must converge to under its
/// default bound — the cache is useless below this, and the quick shape
/// reliably lands well above it.
const SOAK_HIT_RATE_FLOOR: f64 = 0.25;

/// `treu soak [seed] [--quick|--full-soak] [--enforce] [--tenants N]
/// [--epochs N] [--per-epoch N] [--cache-entries N] [--cache-bytes N]
/// [--out PATH] [--fault-seed S] [--rate F] [--jobs N]` — the sustained
/// multi-tenant drill: Zipf traffic from seeded tenants through fair
/// dispatch and supervised execution under an epoch-phased fault
/// schedule, with the run cache under a hard bound and logical-clock LRU
/// eviction. Writes `BENCH_soak.json` (or `--out`).
///
/// `--enforce` runs the acceptance ladder: the same soak at jobs=1,
/// jobs=4 and fault-free, then requires bitwise-identical trace
/// addresses, eviction logs and final cache contents across all three,
/// zero drift and zero quarantines, at least one eviction (the bound
/// must actually bite), and a steady-state hit-rate above the floor.
fn run_soak_cmd(
    reg: &treu::core::ExperimentRegistry,
    args: &[String],
    jobs: usize,
    sup: &Supervision,
    svc: Option<&SvcOpts>,
) {
    use treu_bench::soak::{generate, run_soak, SoakConfig, SoakReport};

    fn usage_err(msg: String) -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    if let Some(o) = svc {
        run_svc_soak_cmd(reg, args, sup, o);
        return;
    }
    let mut cfg = if sup.full { SoakConfig::full(jobs) } else { SoakConfig::quick(jobs) };
    if let Some(s) = sup.fault_seed {
        cfg.fault_seed = s;
    }
    if let Some(r) = sup.fault_rate {
        cfg.fault_rate = r;
    }
    let mut out_path = "BENCH_soak.json".to_string();
    let mut seed_pos: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut flag_value = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Some(v.to_string());
            }
            if arg == flag {
                if i + 1 >= args.len() {
                    usage_err(format!("{flag} requires a value"));
                }
                i += 1;
                return Some(args[i].clone());
            }
            None
        };
        let parse_n = |flag: &str, v: &str| -> usize {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| usage_err(format!("invalid {flag} value '{v}'")))
        };
        if let Some(v) = flag_value("--tenants") {
            cfg.tenants = parse_n("--tenants", &v);
        } else if let Some(v) = flag_value("--epochs") {
            cfg.epochs = parse_n("--epochs", &v) as u32;
        } else if let Some(v) = flag_value("--per-epoch") {
            cfg.submissions_per_epoch = parse_n("--per-epoch", &v);
        } else if let Some(v) = flag_value("--cache-entries") {
            cfg.bound = CacheBound::entries(parse_n("--cache-entries", &v));
        } else if let Some(v) = flag_value("--cache-bytes") {
            cfg.bound = CacheBound::bytes(parse_n("--cache-bytes", &v) as u64);
        } else if let Some(v) = flag_value("--out") {
            out_path = v;
        } else if arg == "--quick" {
            // The default shape; accepted so scripts can say what they mean.
        } else if arg.starts_with('-') {
            usage_err(format!("unknown soak flag '{arg}'"));
        } else if seed_pos.is_none() && arg.parse::<u64>().is_ok() {
            seed_pos = Some(arg.parse().expect("checked above"));
        } else {
            usage_err(format!("unexpected argument '{arg}'"));
        }
        i += 1;
    }
    if let Some(s) = seed_pos {
        cfg.seed = s;
    }
    // Conformance parameters keep every submission fast — the soak's
    // stress is volume and churn, not per-run cost.
    let params_of = |id: &str, _d: treu::core::experiment::Params| treu::conformance_params(id);

    // Each soak run gets a fresh bounded cache in scratch space; the
    // report is what survives, not the directory.
    let scratch = std::env::temp_dir().join(format!("treu-soak-{}", std::process::id()));
    let run_once = |label: &str, cfg: &SoakConfig| -> SoakReport {
        let dir = scratch.join(label);
        if dir.exists() {
            let _ = std::fs::remove_dir_all(&dir);
        }
        let cache = RunCache::open_bounded(&dir, cfg.bound).unwrap_or_else(|e| {
            eprintln!("soak: cannot open cache under '{}': {e}", dir.display());
            std::process::exit(2);
        });
        let report = run_soak(reg, &params_of, cfg, &cache);
        let _ = std::fs::remove_dir_all(&dir);
        report
    };

    // Sanity before spending anything: the generator must produce
    // traffic for the configured tenant population.
    let ids: Vec<String> = reg.iter().map(|(id, _)| id.to_string()).collect();
    if generate(&cfg, &ids).is_empty() {
        usage_err("soak: empty submission stream (check --epochs/--per-epoch)".into());
    }

    let primary = run_once("primary", &cfg);
    print!("{}", primary.render());
    match std::fs::write(&out_path, primary.render_json()) {
        Ok(()) => println!("soak: wrote {out_path}"),
        Err(e) => {
            eprintln!("soak: cannot write '{out_path}': {e}");
            std::process::exit(2);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    if !sup.enforce {
        return;
    }

    // The acceptance ladder: same soak at jobs=1, jobs=4, and with the
    // fault schedule disabled. Chaos and parallelism may cost retries
    // and wall time — never bits.
    let mut failures: Vec<String> = Vec::new();
    let mut variants: Vec<(String, SoakReport)> = Vec::new();
    for jobs_variant in [1usize, 4] {
        if jobs_variant == cfg.jobs {
            continue;
        }
        let mut v = cfg.clone();
        v.jobs = jobs_variant;
        variants
            .push((format!("jobs={jobs_variant}"), run_once(&format!("jobs{jobs_variant}"), &v)));
    }
    let mut clean = cfg.clone();
    clean.fault_rate = 0.0;
    variants.push(("fault-free".to_string(), run_once("clean", &clean)));
    let _ = std::fs::remove_dir_all(&scratch);

    for (label, report) in &variants {
        if report.trace_address != primary.trace_address {
            failures.push(format!(
                "{label}: trace address {:#018x} != primary {:#018x}",
                report.trace_address, primary.trace_address
            ));
        }
        if report.eviction_address != primary.eviction_address {
            failures.push(format!("{label}: eviction log diverged from primary"));
        }
        if report.final_entries != primary.final_entries {
            failures.push(format!("{label}: final cache contents diverged from primary"));
        }
        if !report.zero_drift() {
            failures.push(format!(
                "{label}: drift {} / quarantined {}",
                report.drift, report.quarantined
            ));
        }
    }
    if !primary.zero_drift() {
        failures.push(format!(
            "primary: drift {} / quarantined {}",
            primary.drift, primary.quarantined
        ));
    }
    if primary.evictions == 0 {
        failures
            .push("primary: the cache bound never evicted — soak too small for the bound".into());
    }
    if primary.steady_hit_rate < SOAK_HIT_RATE_FLOOR {
        failures.push(format!(
            "primary: steady-state hit-rate {:.3} below floor {SOAK_HIT_RATE_FLOOR}",
            primary.steady_hit_rate
        ));
    }
    if failures.is_empty() {
        println!(
            "soak: ENFORCED — {} variant(s) bitwise-identical to primary \
             (trace {:#018x}), zero drift, steady-state hit-rate {:.3}",
            variants.len(),
            primary.trace_address,
            primary.steady_hit_rate
        );
    } else {
        for f in &failures {
            eprintln!("soak: FAILED — {f}");
        }
        std::process::exit(1);
    }
}

/// `treu soak --workers N [seed] [--passes N] [--out PATH] [--kill-plan
/// SEED] [--kill-rate F] [--respawn-budget N] [--enforce]` — the
/// sharded-service soak: registry-wide verification driven repeatedly
/// through the coordinator/worker pool at a ladder of `(workers, jobs)`
/// topologies, with the seeded kill plan SIGKILLing workers mid-shard
/// when armed. Every pass must land on the fault-free in-process
/// baseline's trace address and fingerprint digest; throughput per
/// topology is written to `BENCH_svc.json` (or `--out`). `--enforce`
/// turns any divergence into exit 1.
fn run_svc_soak_cmd(
    reg: &treu::core::ExperimentRegistry,
    args: &[String],
    sup: &Supervision,
    o: &SvcOpts,
) {
    use treu_bench::svc::{run_svc_soak, SvcSoakConfig};

    fn usage_err(msg: String) -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let mut cfg = SvcSoakConfig::new(o.workers);
    cfg.kill_seed = o.kill_seed;
    cfg.kill_rate = o.kill_rate;
    cfg.respawn_budget = o.respawn_budget;
    let mut out_path = "BENCH_svc.json".to_string();
    let mut seed_pos: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut flag_value = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Some(v.to_string());
            }
            if arg == flag {
                if i + 1 >= args.len() {
                    usage_err(format!("{flag} requires a value"));
                }
                i += 1;
                return Some(args[i].clone());
            }
            None
        };
        if let Some(v) = flag_value("--passes") {
            cfg.passes = v.parse::<u32>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                usage_err(format!("invalid --passes value '{v}' (want a positive integer)"))
            });
        } else if let Some(v) = flag_value("--out") {
            out_path = v;
        } else if arg.starts_with('-') {
            usage_err(format!("unknown svc soak flag '{arg}'"));
        } else if seed_pos.is_none() && arg.parse::<u64>().is_ok() {
            seed_pos = Some(arg.parse().expect("checked above"));
        } else {
            usage_err(format!("unexpected argument '{arg}'"));
        }
        i += 1;
    }
    if let Some(s) = seed_pos {
        cfg.seed = s;
    }
    // Conformance parameters, as in the multi-tenant soak: the stress is
    // process churn and shard traffic, not per-run cost.
    let params_of = |id: &str, _d: treu::core::experiment::Params| treu::conformance_params(id);
    let report = run_svc_soak(reg, &params_of, &cfg).unwrap_or_else(|e| {
        eprintln!("svc soak: {e}");
        std::process::exit(2);
    });
    print!("{}", report.render());
    match std::fs::write(&out_path, report.render_json()) {
        Ok(()) => println!("svc soak: wrote {out_path}"),
        Err(e) => {
            eprintln!("svc soak: cannot write '{out_path}': {e}");
            std::process::exit(2);
        }
    }
    if sup.enforce && !report.all_converged() {
        eprintln!("svc soak: FAILED — a topology diverged from the in-process baseline");
        std::process::exit(1);
    }
}

/// `treu chaos [seed] [--fault-seed S] [--rate F] [--retries N]
/// [--deadline-secs F] [--enforce] [--full]` — the supervision
/// conformance check: every registered experiment runs fault-free once
/// (the baseline), then the whole registry is verified under a seeded
/// *transient-only* fault plan with enough retries to outlast it. Every
/// id must converge to its fault-free fingerprint; `--enforce` turns any
/// divergence or quarantine into exit 1. Uses the fast conformance
/// parameters unless `--full` asks for registry defaults.
///
/// With `--workers N` the chaos pass runs through the sharded
/// coordinator/worker service instead of in-process threads, and
/// `--kill-plan SEED` additionally arms the process-level chaos monkey
/// that SIGKILLs workers mid-shard — the drill then proves that
/// supervision, requeue and degradation still converge every id to its
/// fault-free fingerprint.
fn run_chaos(
    exec: &Executor,
    reg: &treu::core::ExperimentRegistry,
    seed: u64,
    sup: &Supervision,
    trace_out: Option<&Path>,
    svc: Option<&SvcOpts>,
    jobs: usize,
) {
    let plan = FaultPlan::transient(sup.fault_seed.unwrap_or(7), sup.fault_rate.unwrap_or(0.2));
    let retries = sup.retries.unwrap_or_else(|| plan.max_transient_attempts());
    let mut policy = SupervisePolicy::new(retries);
    if let Some(s) = sup.deadline_secs {
        policy = policy.with_deadline_secs(s);
    }
    let params = |id: &str, d: treu::core::experiment::Params| {
        if sup.full {
            d
        } else {
            treu::conformance_params(id)
        }
    };
    // Fault-free baseline: one clean run per id, in parallel.
    let ids: Vec<(&str, treu::core::experiment::Params)> =
        reg.iter().map(|(id, e)| (id, params(id, e.defaults.clone()))).collect();
    let baseline = exec.map_indexed(ids.len(), |i| {
        let (id, p) = &ids[i];
        reg.run_with(id, seed, p.clone())
            .expect("id from the registry's own iterator")
            .fingerprint()
    });
    // The same registry under injected transient chaos — through the
    // sharded service when --workers is given, in-process otherwise.
    let mut svc_stats = None;
    let mut report = match svc {
        Some(o) => {
            let (r, stats) =
                verify_all_svc(reg, seed, None, &policy, Some(&plan), params, o.config(jobs, true))
                    .unwrap_or_else(|e| {
                        eprintln!("svc: {e}");
                        std::process::exit(2);
                    });
            svc_stats = Some(stats);
            r
        }
        None => exec.verify_all_supervised_with(reg, seed, None, &policy, Some(&plan), params),
    };
    let mut diverged = 0usize;
    let mut quarantined = 0usize;
    for (o, base) in report.outcomes.iter().zip(&baseline) {
        if let Some(f) = &o.failure {
            quarantined += 1;
            println!(
                "{:<10} QUARANTINED({}) after {} attempt(s): {}",
                o.id,
                f.taxonomy.name(),
                f.attempts,
                f.last_error
            );
        } else if o.fingerprint != *base {
            diverged += 1;
            println!(
                "{:<10} DIVERGED: chaos fingerprint {:#018x} != fault-free {:#018x}",
                o.id, o.fingerprint, base
            );
        } else {
            println!(
                "{:<10} CONVERGED (fingerprint {:#018x}{})",
                o.id,
                o.fingerprint,
                if o.attempts > 1 { format!(", {} attempts", o.attempts) } else { String::new() }
            );
        }
    }
    println!(
        "{}/{} converged to fault-free trails under fault plan (seed {}, rate {:.2}, {} retr{}) \
         in {:.3}s with {} job(s)",
        report.outcomes.len() - diverged - quarantined,
        report.outcomes.len(),
        plan.seed(),
        plan.rate(),
        retries,
        if retries == 1 { "y" } else { "ies" },
        report.wall_seconds,
        report.jobs
    );
    if let Some(stats) = &svc_stats {
        println!("{}", stats.render());
    }
    if let Some(dir) = trace_out {
        report.trace.kind = "chaos".to_string();
        write_trace(&report.trace, dir);
    }
    if sup.enforce && (diverged > 0 || quarantined > 0) {
        std::process::exit(1);
    }
}

/// `treu lint [path] [--format human|json] [--deny none|warn|error]
/// [--rules R1,wall-clock,...] [--flow|--no-flow] [--baseline FILE]
/// [--write-baseline FILE]` — static reproducibility analysis over a
/// workspace (default: the current directory). The cross-file flow pass
/// (rules R8..R12) is on by default; `--baseline` gates only on findings
/// not recorded in FILE, and `--write-baseline` records the current
/// findings. Exits 1 when findings reach the deny level, 2 on usage or
/// I/O errors.
fn run_lint(args: &[String], jobs: usize) {
    fn usage_err(msg: String) -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let mut format = "human".to_string();
    let mut deny = DenyLevel::Warn;
    let mut rules: Option<Vec<RuleId>> = None;
    let mut root: Option<String> = None;
    let mut flow = true;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut flag_value = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Some(v.to_string());
            }
            if arg == flag {
                if i + 1 >= args.len() {
                    usage_err(format!("{flag} requires a value"));
                }
                i += 1;
                return Some(args[i].clone());
            }
            None
        };
        if let Some(v) = flag_value("--format") {
            if v != "human" && v != "json" {
                usage_err(format!("invalid --format '{v}' (want human|json)"));
            }
            format = v;
        } else if let Some(v) = flag_value("--deny") {
            deny = DenyLevel::parse(&v).unwrap_or_else(|| {
                usage_err(format!("invalid --deny '{v}' (want none|warn|error)"))
            });
        } else if let Some(v) = flag_value("--rules") {
            let parsed: Option<Vec<RuleId>> = v.split(',').map(RuleId::parse).collect();
            rules = Some(parsed.unwrap_or_else(|| {
                usage_err(format!("invalid --rules '{v}' (want codes R1..R12 or rule names)"))
            }));
        } else if let Some(v) = flag_value("--baseline") {
            baseline_path = Some(v);
        } else if let Some(v) = flag_value("--write-baseline") {
            write_baseline = Some(v);
        } else if arg == "--flow" {
            flow = true;
        } else if arg == "--no-flow" {
            flow = false;
        } else if arg.starts_with('-') {
            usage_err(format!("unknown lint flag '{arg}'"));
        } else if root.is_none() {
            root = Some(arg.clone());
        } else {
            usage_err(format!("unexpected argument '{arg}'"));
        }
        i += 1;
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    let ws = Workspace::discover(std::path::Path::new(&root)).unwrap_or_else(|e| {
        eprintln!("lint: cannot walk '{root}': {e}");
        std::process::exit(2);
    });
    let lint = match rules {
        Some(r) => Lint::with_rules(r),
        None => Lint::new(),
    }
    .flow(flow)
    .jobs(jobs);
    let mut report = lint.run(&ws).unwrap_or_else(|e| {
        eprintln!("lint: {e}");
        std::process::exit(2);
    });
    if let Some(path) = write_baseline {
        let text = treu_lint::baseline::render(&report);
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("lint: cannot write baseline '{path}': {e}");
            std::process::exit(2);
        });
        eprintln!("lint: wrote {} finding(s) to baseline '{path}'", report.diagnostics.len());
    }
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("lint: cannot read baseline '{path}': {e}");
            std::process::exit(2);
        });
        let keys = treu_lint::baseline::parse(&text).unwrap_or_else(|e| {
            eprintln!("lint: {path}: {e}");
            std::process::exit(2);
        });
        let (kept, absorbed) = treu_lint::baseline::apply(report, keys);
        report = kept;
        eprintln!("lint: baseline '{path}' absorbed {absorbed} finding(s)");
    }
    match format.as_str() {
        "json" => print!("{}", report.render_json()),
        _ => print!("{}", report.render_human()),
    }
    if report.exceeds(deny) {
        std::process::exit(1);
    }
}

/// Removes the supervision flags from `args`: `--retries N`,
/// `--deadline-secs F`, `--fault-seed S`, `--fault-rate F` (alias
/// `--rate F`), `--fault-panic ID` (repeatable), `--deny
/// none|warn|error`, and the boolean `--enforce` / `--full` /
/// `--conformance`.
fn extract_supervision(args: &mut Vec<String>) -> Result<Supervision, String> {
    let mut sup = Supervision::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let mut take = |flag: &str| -> Result<Option<String>, String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                args.remove(i);
                return Ok(Some(v.to_string()));
            }
            if arg == flag {
                if i + 1 >= args.len() {
                    return Err(format!("{flag} requires a value"));
                }
                let v = args.remove(i + 1);
                args.remove(i);
                return Ok(Some(v));
            }
            Ok(None)
        };
        if let Some(v) = take("--retries")? {
            sup.retries = Some(
                v.parse::<u32>()
                    .map_err(|_| format!("invalid --retries value '{v}' (want an integer)"))?,
            );
        } else if let Some(v) = take("--deadline-secs")? {
            sup.deadline_secs = Some(
                v.parse::<f64>()
                    .map_err(|_| format!("invalid --deadline-secs value '{v}' (want seconds)"))?,
            );
        } else if let Some(v) = take("--fault-seed")? {
            sup.fault_seed = Some(
                v.parse::<u64>()
                    .map_err(|_| format!("invalid --fault-seed value '{v}' (want an integer)"))?,
            );
        } else if let Some(v) = match take("--fault-rate")? {
            Some(v) => Some(v),
            None => take("--rate")?,
        } {
            let rate = v
                .parse::<f64>()
                .ok()
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| format!("invalid fault rate '{v}' (want 0.0..=1.0)"))?;
            sup.fault_rate = Some(rate);
        } else if let Some(v) = take("--fault-panic")? {
            sup.fault_panic.push(v);
        } else if let Some(v) = take("--deny")? {
            sup.deny = Some(
                DenyPolicy::parse(&v)
                    .ok_or_else(|| format!("invalid --deny '{v}' (want none|warn|error)"))?,
            );
        } else if arg == "--enforce" {
            sup.enforce = true;
            args.remove(i);
        } else if arg == "--full" {
            sup.full = true;
            args.remove(i);
        } else if arg == "--conformance" {
            sup.conformance = true;
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(sup)
}

/// Sharded-service settings pulled from the shared command-line flags.
struct SvcOpts {
    workers: usize,
    kill_seed: Option<u64>,
    kill_rate: Option<f64>,
    respawn_budget: Option<u32>,
    shard_size: Option<usize>,
}

impl SvcOpts {
    /// The pool configuration these flags ask for. `jobs` is the
    /// *per-worker* thread count (the shared `--jobs` flag).
    fn config(&self, jobs: usize, tracing: bool) -> SvcConfig {
        let mut cfg = SvcConfig::new(self.workers).with_jobs(jobs).with_tracing(tracing);
        if let Some(n) = self.respawn_budget {
            cfg = cfg.with_respawn_budget(n);
        }
        if let Some(n) = self.shard_size {
            cfg = cfg.with_shard_size(n);
        }
        if let Some(s) = self.kill_seed {
            let kp = match self.kill_rate {
                Some(r) => KillPlan::with_rate(s, r),
                None => KillPlan::new(s),
            };
            cfg = cfg.with_kill_plan(kp);
        }
        cfg
    }
}

/// Removes the sharded-service flags from `args`: `--workers N` routes
/// registry-wide run/verify/chaos/soak through the coordinator/worker
/// service; `--kill-plan SEED` arms the seeded chaos-monkey that SIGKILLs
/// workers mid-shard, `--kill-rate F` tunes its aggression,
/// `--respawn-budget N` bounds respawns per slot before degradation, and
/// `--shard-size N` overrides the auto shard size.
fn extract_svc(args: &mut Vec<String>) -> Result<Option<SvcOpts>, String> {
    let mut workers: Option<usize> = None;
    let mut kill_seed: Option<u64> = None;
    let mut kill_rate: Option<f64> = None;
    let mut respawn_budget: Option<u32> = None;
    let mut shard_size: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let mut take = |flag: &str| -> Result<Option<String>, String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                args.remove(i);
                return Ok(Some(v.to_string()));
            }
            if arg == flag {
                if i + 1 >= args.len() {
                    return Err(format!("{flag} requires a value"));
                }
                let v = args.remove(i + 1);
                args.remove(i);
                return Ok(Some(v));
            }
            Ok(None)
        };
        if let Some(v) = take("--workers")? {
            workers = Some(v.parse::<usize>().ok().filter(|&w| w >= 1).ok_or_else(|| {
                format!("invalid --workers value '{v}' (want a positive integer)")
            })?);
        } else if let Some(v) = take("--kill-plan")? {
            kill_seed = Some(
                v.parse::<u64>()
                    .map_err(|_| format!("invalid --kill-plan value '{v}' (want a seed)"))?,
            );
        } else if let Some(v) = take("--kill-rate")? {
            kill_rate = Some(
                v.parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| format!("invalid --kill-rate value '{v}' (want 0.0..=1.0)"))?,
            );
        } else if let Some(v) = take("--respawn-budget")? {
            respawn_budget =
                Some(v.parse::<u32>().map_err(|_| {
                    format!("invalid --respawn-budget value '{v}' (want an integer)")
                })?);
        } else if let Some(v) = take("--shard-size")? {
            shard_size = Some(v.parse::<usize>().ok().filter(|&s| s >= 1).ok_or_else(|| {
                format!("invalid --shard-size value '{v}' (want a positive integer)")
            })?);
        } else {
            i += 1;
        }
    }
    let Some(workers) = workers else {
        if kill_seed.is_some()
            || kill_rate.is_some()
            || respawn_budget.is_some()
            || shard_size.is_some()
        {
            return Err(
                "--kill-plan/--kill-rate/--respawn-budget/--shard-size require --workers N"
                    .to_string(),
            );
        }
        return Ok(None);
    };
    Ok(Some(SvcOpts { workers, kill_seed, kill_rate, respawn_budget, shard_size }))
}

/// `treu trace <DIR|FILE> [--check] [--top N]` — inspects stored traces.
/// A directory argument selects every `trace-*.jsonl` under it (sidecars
/// excluded), in name order. `--check` re-verifies each file against its
/// content address and exits 1 on any mismatch; the default mode renders
/// the per-run timeline plus, when the timing sidecar is present, the
/// per-worker utilization table and the top-N slowest attempt spans
/// (default 5).
fn run_trace(args: &[String]) {
    fn usage_err(msg: String) -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let mut check = false;
    let mut top = 5usize;
    let mut target: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut flag_value = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Some(v.to_string());
            }
            if arg == flag {
                if i + 1 >= args.len() {
                    usage_err(format!("{flag} requires a value"));
                }
                i += 1;
                return Some(args[i].clone());
            }
            None
        };
        if let Some(v) = flag_value("--top") {
            top = v.parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                usage_err(format!("invalid --top value '{v}' (want a positive integer)"))
            });
        } else if arg == "--check" {
            check = true;
        } else if arg.starts_with('-') {
            usage_err(format!("unknown trace flag '{arg}'"));
        } else if target.is_none() {
            target = Some(arg.clone());
        } else {
            usage_err(format!("unexpected argument '{arg}'"));
        }
        i += 1;
    }
    let target = target
        .unwrap_or_else(|| usage_err("usage: treu trace <DIR|FILE> [--check] [--top N]".into()));
    let path = Path::new(&target);
    let files: Vec<PathBuf> = if path.is_dir() {
        let mut files: Vec<PathBuf> = match std::fs::read_dir(path) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with(".jsonl") && !n.ends_with(".times.jsonl"))
                })
                .collect(),
            Err(e) => {
                eprintln!("trace: cannot read '{target}': {e}");
                std::process::exit(2);
            }
        };
        files.sort();
        if files.is_empty() {
            eprintln!("trace: no trace files under '{target}'");
            std::process::exit(2);
        }
        files
    } else {
        vec![path.to_path_buf()]
    };
    if check {
        let mut failed = false;
        for f in &files {
            match check_trace_file(f) {
                Ok(hash) => println!("{}: ok ({hash:#018x})", f.display()),
                Err(e) => {
                    eprintln!("{e}");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    for (n, f) in files.iter().enumerate() {
        if n > 0 {
            println!();
        }
        let text = std::fs::read_to_string(f).unwrap_or_else(|e| {
            eprintln!("trace: cannot read '{}': {e}", f.display());
            std::process::exit(2);
        });
        let tf = parse_trace(&text).unwrap_or_else(|e| {
            eprintln!("trace: {}: {e}", f.display());
            std::process::exit(2);
        });
        let times = std::fs::read_to_string(f.with_extension("times.jsonl"))
            .ok()
            .and_then(|t| parse_times(&t).ok());
        print!("{}", render_timeline(&tf, times.as_ref()));
        if let Some(times) = &times {
            print!("{}", render_worker_table(times));
            print!("{}", render_slowest(&tf, times, top));
        }
    }
}

/// Writes `trace` (event stream + timing sidecar) under `dir` and prints
/// its content address.
fn write_trace(trace: &BatchTrace, dir: &Path) {
    match trace.write(dir) {
        Ok(path) => {
            let c = trace.counters();
            println!(
                "trace: {} ({} event(s) over {} run(s), hash {:#018x})",
                path.display(),
                c.events,
                c.runs,
                trace.content_hash()
            );
        }
        Err(e) => {
            eprintln!("trace: write failed under '{}': {e}", dir.display());
            std::process::exit(2);
        }
    }
}

/// Seed for the deterministically derived default attestation key, used
/// when `--attest-dir` is given but no key file exists yet. Derivation
/// is deterministic so the whole pipeline (including the topology
/// conformance drill) stays reproducible; provision a real key file for
/// anything beyond tamper-evidence.
const ATTEST_DEFAULT_KEY_SEED: u64 = 2023;

/// Attestation settings pulled from `--attest-dir DIR` and
/// `--attest-key FILE`. The key file defaults to `DIR/attest.key`.
struct AttestOpts {
    dir: PathBuf,
    key: Option<PathBuf>,
}

impl AttestOpts {
    fn store(&self) -> AttestStore {
        AttestStore::open(&self.dir)
    }

    /// The key file path in effect: `--attest-key`, else `DIR/attest.key`.
    fn key_path(&self) -> PathBuf {
        self.key.clone().unwrap_or_else(|| self.store().key_path())
    }

    /// Loads the key, failing the process when it is absent or invalid.
    fn require_key(&self) -> AttestKey {
        let path = self.key_path();
        AttestKey::load(&path).unwrap_or_else(|e| {
            eprintln!(
                "attest: cannot load key '{}': {e} (run `treu attest init` or pass --attest-key)",
                path.display()
            );
            std::process::exit(2);
        })
    }

    /// Loads the key, deriving and writing the deterministic default on
    /// first use so a bare `--attest-dir` works out of the box. An
    /// explicit `--attest-key` is never auto-created — a typo there must
    /// not silently mint a new identity.
    fn load_or_init_key(&self, seed: u64) -> AttestKey {
        if self.key.is_some() || self.key_path().is_file() {
            return self.require_key();
        }
        let key = AttestKey::derive(seed);
        match self.store().write_key(&key) {
            Ok(p) => {
                println!(
                    "attest: wrote key {} (fingerprint {:#018x})",
                    p.display(),
                    key.fingerprint()
                );
                key
            }
            Err(e) => {
                eprintln!("attest: cannot write key '{}': {e}", self.key_path().display());
                std::process::exit(2);
            }
        }
    }

    /// Writes the default run→verify→badge layout when the store has none.
    fn ensure_layout(&self, key: &AttestKey) {
        let store = self.store();
        if store.initialized() {
            return;
        }
        match store.write_layout(&Layout::default_pipeline(key)) {
            Ok(p) => println!("attest: wrote default layout {}", p.display()),
            Err(e) => {
                eprintln!("attest: cannot write layout: {e}");
                std::process::exit(2);
            }
        }
    }
}

/// Removes `--attest-dir DIR` and `--attest-key FILE` (or the `=`-joined
/// forms) from `args`. `--attest-key` alone is a usage error — the key
/// names no chain without a directory.
fn extract_attest(args: &mut Vec<String>) -> Result<Option<AttestOpts>, String> {
    let mut dir: Option<PathBuf> = None;
    let mut key: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        if arg == "--attest-dir" {
            if i + 1 >= args.len() {
                return Err("--attest-dir requires a value".to_string());
            }
            dir = Some(PathBuf::from(args.remove(i + 1)));
            args.remove(i);
        } else if let Some(v) = arg.strip_prefix("--attest-dir=") {
            dir = Some(PathBuf::from(v));
            args.remove(i);
        } else if arg == "--attest-key" {
            if i + 1 >= args.len() {
                return Err("--attest-key requires a value".to_string());
            }
            key = Some(PathBuf::from(args.remove(i + 1)));
            args.remove(i);
        } else if let Some(v) = arg.strip_prefix("--attest-key=") {
            key = Some(PathBuf::from(v));
            args.remove(i);
        } else {
            i += 1;
        }
    }
    match (dir, key) {
        (Some(dir), key) => Ok(Some(AttestOpts { dir, key })),
        (None, Some(_)) => Err("--attest-key requires --attest-dir".to_string()),
        (None, None) => Ok(None),
    }
}

/// Seals one pipeline step's link onto the chain: the draft's run
/// products plus root materials (registry index, environment), the
/// cache entry behind every attested run, and the trace stream when one
/// was written. Called on the coordinator after the batch has merged, so
/// the link bytes are identical at every `(workers, jobs)` topology.
fn attest_emit(
    at: &AttestOpts,
    reg: &ExperimentRegistry,
    mut draft: LinkDraft,
    cache: Option<&RunCache>,
    params_of: &dyn Fn(&str, Params) -> Params,
    trace: Option<&BatchTrace>,
) {
    let key = at.load_or_init_key(ATTEST_DEFAULT_KEY_SEED);
    at.ensure_layout(&key);
    draft.material("registry:index", hash_bytes(reg.render_index().as_bytes()));
    draft.material("env:fingerprint", Environment::capture().fingerprint());
    if let Some(c) = cache {
        let ids: Vec<String> = draft
            .products
            .keys()
            .filter_map(|n| n.strip_prefix("run:"))
            .map(str::to_string)
            .collect();
        for id in ids {
            if let Some(entry) = reg.get(&id) {
                let file = run_entry_file(&id, draft.seed, &params_of(&id, entry.defaults.clone()));
                draft.absorb_cache_entry(c, &id, &file);
            }
        }
    }
    if let Some(tr) = trace {
        draft.product(
            format!("trace:{}", tr.file_name()),
            hash_bytes(tr.render_events().as_bytes()),
        );
    }
    match at.store().append(&key, draft) {
        Ok((path, link)) => println!(
            "attest: {} link {} ({} material(s), {} product(s), mac {:#018x})",
            link.step,
            path.display(),
            link.materials.len(),
            link.products.len(),
            link.mac
        ),
        Err(e) => {
            eprintln!("attest: {e}");
            std::process::exit(2);
        }
    }
}

/// `treu attest <init|show|verify|badge> --attest-dir DIR [--attest-key
/// FILE] [--cache-dir DIR] [--trace-out DIR] [--enforce]` — attestation
/// chain operations. `init` provisions the key and layout, `show` prints
/// the chain, `verify` walks it (exit 1 names the first broken step),
/// and `badge` turns a verified chain into an ACM-style badge
/// evaluation, appending the result as the final link.
fn run_attest_cmd(
    args: &[String],
    reg: &ExperimentRegistry,
    attest: Option<&AttestOpts>,
    cache: Option<&RunCache>,
    trace_out: Option<&Path>,
    sup: &Supervision,
) {
    fn usage() -> ! {
        eprintln!(
            "usage: treu attest <init|show|verify|badge> --attest-dir DIR \
             [--attest-key FILE] [--cache-dir DIR] [--trace-out DIR] [--enforce] [seed]"
        );
        std::process::exit(2);
    }
    let Some(at) = attest else {
        eprintln!("attest: --attest-dir DIR is required");
        usage();
    };
    let store = at.store();
    let exit_on = |e: std::io::Error| -> ! {
        eprintln!("attest: {e}");
        std::process::exit(2);
    };
    // The re-hash context: current registry/environment values always,
    // artifact directories when the caller names them.
    let ctx = VerifyContext {
        cache_dir: cache.map(|c| c.dir()),
        trace_dir: trace_out,
        registry_index_hash: Some(hash_bytes(reg.render_index().as_bytes())),
        env_fingerprint: Some(Environment::capture().fingerprint()),
    };
    match args.first().map(String::as_str) {
        Some("init") => {
            let seed = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(ATTEST_DEFAULT_KEY_SEED);
            let key = at.load_or_init_key(seed);
            at.ensure_layout(&key);
            let layout = store.load_layout().unwrap_or_else(|e| exit_on(e));
            if !layout.mac_ok(&key) {
                eprintln!(
                    "attest: existing layout is sealed under key {:#018x}, not {:#018x}",
                    layout.key_fingerprint,
                    key.fingerprint()
                );
                std::process::exit(1);
            }
            println!(
                "attest: {} initialized (key fingerprint {:#018x}, layout mac {:#018x}, {} step(s))",
                store.dir().display(),
                key.fingerprint(),
                layout.mac,
                layout.steps.len()
            );
        }
        Some("show") => {
            let layout = store.load_layout().unwrap_or_else(|e| exit_on(e));
            print!("{}", layout.render());
            let files = store.link_files().unwrap_or_else(|e| exit_on(e));
            for (file, text) in &files {
                match Link::parse(text) {
                    Some(l) => println!(
                        "{file}: step {} seed {} prev {:#018x} mac {:#018x} \
                         ({} material(s), {} product(s))",
                        l.step,
                        l.seed,
                        l.prev,
                        l.mac,
                        l.materials.len(),
                        l.products.len()
                    ),
                    None => println!("{file}: UNPARSEABLE"),
                }
            }
            println!("{} link(s)", files.len());
        }
        Some("verify") => {
            let key = at.require_key();
            let report = verify_chain(&store, &key, &ctx);
            print!("{}", report.render());
            if !report.ok() {
                std::process::exit(1);
            }
            if sup.enforce && report.links() == 0 {
                eprintln!("attest: --enforce requires a non-empty chain (nothing was attested)");
                std::process::exit(1);
            }
        }
        Some("badge") => {
            let key = at.require_key();
            let chain = verify_chain(&store, &key, &ctx);
            if !chain.ok() {
                print!("{}", chain.render());
                eprintln!("attest: chain is broken; refusing to badge tampered evidence");
                std::process::exit(1);
            }
            // The latest verify link carries the rerun evidence the
            // badge ladder needs.
            let files = store.link_files().unwrap_or_else(|e| exit_on(e));
            let verify_link = files
                .iter()
                .rev()
                .find_map(|(_, text)| Link::parse(text).filter(|l| l.step == "verify"));
            let Some(vl) = verify_link else {
                eprintln!(
                    "attest: no verify link in the chain; \
                     run `treu verify --attest-dir ...` first"
                );
                std::process::exit(1);
            };
            let reproduced = vl.products.keys().filter(|n| n.starts_with("run:")).count();
            let measured = reproduced as f64 / reg.len() as f64;
            let artifact = Artifact::new("treu", env!("CARGO_PKG_VERSION"))
                .with_code("harness", "rust", true, true)
                .with_doc("DESIGN.md", &["R1"])
                .with_claim("R1", "every registry experiment reproduces bitwise", 0.0);
            let checks = vec![ClaimCheck { claim_id: "R1".into(), claimed: 1.0, measured }];
            let eval = evaluate(&artifact, true, &checks);
            let mut rendered = String::new();
            for b in &eval.awarded {
                rendered.push_str(&format!("awarded {b:?}\n"));
            }
            for w in &eval.withheld {
                rendered.push_str(&format!("withheld {w}\n"));
            }
            print!("{rendered}");
            let mut d = LinkDraft::new("badge", vl.seed);
            for (name, addr) in vl.products.iter().filter(|(n, _)| n.starts_with("run:")) {
                d.material(name.clone(), *addr);
            }
            d.product("badge:evaluation", hash_bytes(rendered.as_bytes()));
            match store.append(&key, d) {
                Ok((path, link)) => println!(
                    "attest: badge link {} ({} material(s), mac {:#018x})",
                    path.display(),
                    link.materials.len(),
                    link.mac
                ),
                Err(e) => exit_on(e),
            }
            if sup.enforce && !eval.has(Badge::ResultsReproduced) {
                eprintln!("attest: --enforce requires the ResultsReproduced badge");
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}

/// Removes `--trace-out DIR` (or `--trace-out=DIR`) from `args`; when
/// present, run/verify/chaos write their span stream under DIR.
fn extract_trace_out(args: &mut Vec<String>) -> Result<Option<PathBuf>, String> {
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        if arg == "--trace-out" {
            if i + 1 >= args.len() {
                return Err("--trace-out requires a value".to_string());
            }
            dir = Some(PathBuf::from(args.remove(i + 1)));
            args.remove(i);
        } else if let Some(v) = arg.strip_prefix("--trace-out=") {
            dir = Some(PathBuf::from(v));
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(dir)
}

/// Removes `--cache-dir DIR` (or `--cache-dir=DIR`) and `--no-cache` from
/// `args` and returns the opened run cache. The cache is opt-in: with no
/// `--cache-dir` there is nothing to read or write, and `--no-cache`
/// disables a `--cache-dir` that is also present (useful for forcing a
/// recomputation without editing scripts).
fn extract_cache(args: &mut Vec<String>) -> Result<Option<RunCache>, String> {
    let mut dir: Option<String> = None;
    let mut disabled = false;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        if arg == "--no-cache" {
            disabled = true;
            args.remove(i);
        } else if arg == "--cache-dir" {
            if i + 1 >= args.len() {
                return Err("--cache-dir requires a value".to_string());
            }
            dir = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(v) = arg.strip_prefix("--cache-dir=") {
            dir = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    if disabled {
        return Ok(None);
    }
    match dir {
        None => Ok(None),
        Some(d) => RunCache::open(std::path::Path::new(&d))
            .map(Some)
            .map_err(|e| format!("cannot open cache dir '{d}': {e}")),
    }
}

/// Removes `--jobs N` / `-j N` (or `--jobs=N`) from `args` and returns the
/// worker count, defaulting to the hardware thread count.
fn extract_jobs(args: &mut Vec<String>) -> Result<usize, String> {
    let mut jobs = treu::math::parallel::default_threads();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let value = if arg == "--jobs" || arg == "-j" {
            if i + 1 >= args.len() {
                return Err(format!("{arg} requires a value"));
            }
            let v = args.remove(i + 1);
            args.remove(i);
            v
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            args.remove(i);
            v.to_string()
        } else {
            i += 1;
            continue;
        };
        jobs =
            value.parse::<usize>().ok().filter(|&j| j >= 1).ok_or_else(|| {
                format!("invalid --jobs value '{value}' (want a positive integer)")
            })?;
    }
    Ok(jobs)
}

/// `treu tune [seed] [--quick|--full] [--shapes MxKxN,...] [--repeats N]`
/// — closes the autotune loop for the math kernels. For each requested
/// shape the genetic tuner searches real blocked-matmul schedules, every
/// winner is re-verified bitwise against the naive kernel before it is
/// admitted, the parallel spawn-overhead crossover is measured at the
/// current `--jobs`, and the resulting schedule book is persisted
/// through the content-addressed run cache when `--cache-dir` is given.
fn run_tune_cmd(args: &[String], cache: Option<&RunCache>, jobs: usize, sup: &Supervision) {
    use treu::autotune::tuner::GaParams;
    use treu::autotune::ScheduleBook;

    fn usage_err(msg: String) -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    fn parse_shape(text: &str) -> Option<(usize, usize, usize)> {
        let mut dims = text.split('x').map(|p| p.parse::<usize>().ok().filter(|&d| d >= 1));
        let (m, k, n) = (dims.next()??, dims.next()??, dims.next()??);
        if dims.next().is_some() {
            return None;
        }
        Some((m, k, n))
    }
    let mut shapes: Option<Vec<(usize, usize, usize)>> = None;
    let mut repeats: Option<usize> = None;
    let mut seed_pos: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut flag_value = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Some(v.to_string());
            }
            if arg == flag {
                if i + 1 >= args.len() {
                    usage_err(format!("{flag} requires a value"));
                }
                i += 1;
                return Some(args[i].clone());
            }
            None
        };
        if let Some(v) = flag_value("--shapes") {
            let parsed: Option<Vec<_>> = v.split(',').map(parse_shape).collect();
            shapes = Some(parsed.unwrap_or_else(|| {
                usage_err(format!("invalid --shapes '{v}' (want MxKxN[,MxKxN...])"))
            }));
        } else if let Some(v) = flag_value("--repeats") {
            repeats = Some(v.parse::<usize>().ok().filter(|&r| r >= 1).unwrap_or_else(|| {
                usage_err(format!("invalid --repeats value '{v}' (want a positive integer)"))
            }));
        } else if arg == "--quick" {
            // The default shape; accepted so scripts can say what they mean.
        } else if arg.starts_with('-') {
            usage_err(format!("unknown tune flag '{arg}'"));
        } else if seed_pos.is_none() && arg.parse::<u64>().is_ok() {
            seed_pos = Some(arg.parse().expect("checked above"));
        } else {
            usage_err(format!("unexpected argument '{arg}'"));
        }
        i += 1;
    }
    let seed = seed_pos.unwrap_or(2023);
    // Quick keeps CI latency low; --full runs the registry-default GA.
    let ga = if sup.full {
        GaParams::default()
    } else {
        GaParams { population: 8, generations: 5, ..GaParams::default() }
    };
    let repeats = repeats.unwrap_or(if sup.full { 3 } else { 2 });
    let shapes = shapes.unwrap_or_else(|| {
        if sup.full {
            vec![(64, 64, 64), (128, 512, 128), (512, 64, 512), (320, 320, 320)]
        } else {
            vec![(64, 64, 64), (256, 256, 256)]
        }
    });

    let mut book = match cache {
        Some(c) => ScheduleBook::load(c),
        None => ScheduleBook::new(),
    };
    for &shape in &shapes {
        let e = book.tune_matmul(shape, ga, seed, repeats);
        let (m, k, n) = e.shape;
        println!(
            "tuned {m}x{k}x{n} (class {}): {:.2} -> {:.2} GFLOP/s",
            e.class.key(),
            e.naive_gflops,
            e.tuned_gflops
        );
    }
    if jobs > 1 {
        match book.measure_crossover(jobs, seed, repeats) {
            Some(c) => println!("parallel crossover at jobs {jobs}: {c} output elements"),
            None => println!("parallel crossover at jobs {jobs}: never profitable on probe sizes"),
        }
    }
    book.install();
    print!("{}", book.render());
    match cache {
        Some(c) => {
            if let Err(e) = book.persist(c) {
                eprintln!("tune: cannot persist schedule book: {e}");
                std::process::exit(1);
            }
            println!("schedule book persisted ({} entries)", book.len());
        }
        None => println!("note: book not persisted; pass --cache-dir DIR to keep schedules"),
    }
}
