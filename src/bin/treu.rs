//! `treu` — command-line front end to the experiment registry.
//!
//! ```text
//! treu list                  # print the experiment index
//! treu run <id> [seed]       # run one experiment, print its provenance
//! treu tables [seed]         # regenerate the paper's three tables
//! treu verify <id> [seed]    # run twice, check bitwise reproduction
//! treu env                   # print the captured environment
//! ```

use treu::core::environment::Environment;
use treu::surveys::{analysis, Cohort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = treu::full_registry();
    let seed_arg = |i: usize| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(2023)
    };
    match args.first().map(String::as_str) {
        Some("list") => print!("{}", reg.render_index()),
        Some("run") => {
            let Some(id) = args.get(1) else {
                eprintln!("usage: treu run <id> [seed]");
                std::process::exit(2);
            };
            match reg.run(id, seed_arg(2)) {
                Some(rec) => {
                    println!(
                        "{} (seed {}, {:.3}s, fingerprint {:#018x})",
                        rec.name,
                        rec.seed,
                        rec.wall_seconds,
                        rec.fingerprint()
                    );
                    print!("{}", rec.trail.render());
                }
                None => {
                    eprintln!("unknown experiment id '{id}'; try `treu list`");
                    std::process::exit(1);
                }
            }
        }
        Some("tables") => {
            let cohort = Cohort::simulate(seed_arg(1));
            println!("{}", analysis::render_table1(&analysis::table1(&cohort)));
            println!("{}", analysis::render_table2(&analysis::table2(&cohort)));
            println!("{}", analysis::render_table3(&analysis::table3(&cohort)));
        }
        Some("verify") => {
            let Some(id) = args.get(1) else {
                eprintln!("usage: treu verify <id> [seed]");
                std::process::exit(2);
            };
            let seed = seed_arg(2);
            let (Some(a), Some(b)) = (reg.run(id, seed), reg.run(id, seed)) else {
                eprintln!("unknown experiment id '{id}'");
                std::process::exit(1);
            };
            if a.trail == b.trail {
                println!("{id}: REPRODUCED (fingerprint {:#018x})", a.fingerprint());
            } else {
                println!("{id}: MISMATCH — run is not deterministic");
                std::process::exit(1);
            }
        }
        Some("env") => print!("{}", Environment::capture().render()),
        _ => {
            eprintln!("usage: treu <list|run|tables|verify|env> [...]");
            std::process::exit(2);
        }
    }
}
