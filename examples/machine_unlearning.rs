//! Machine-unlearning demo (§2.3): forget one class three ways and compare
//! quality against cost.
//!
//! Run with: `cargo run --release --example machine_unlearning`

use treu::unlearn::experiment::compare_methods;
use treu::unlearn::retrain::TrainConfig;

fn main() {
    let forget_class = 2;
    println!("Forgetting class {forget_class} from a 4-class model (3 trials)\n");
    println!("{:<22} {:>12} {:>12} {:>14}", "method", "forget acc", "retain acc", "relative cost");

    let trials = 3;
    let mut rows = [[0.0f64; 3]; 3];
    let mut orig = 0.0;
    for t in 0..trials {
        let (original, ascent, sisa, retrain) =
            compare_methods(1000 + t, TrainConfig::default(), forget_class);
        let retained: Vec<f64> = original
            .iter()
            .enumerate()
            .filter(|(c, _)| *c != forget_class)
            .map(|(_, &a)| a)
            .collect();
        orig += treu_math::stats::mean(&retained) / trials as f64;
        for (i, rep) in [ascent, sisa, retrain].iter().enumerate() {
            rows[i][0] += rep.forget_accuracy / trials as f64;
            rows[i][1] += rep.retain_accuracy / trials as f64;
            rows[i][2] += rep.relative_cost(retrain.cost_steps) / trials as f64;
        }
    }
    println!("{:<22} {:>12} {:>12.3} {:>14}", "original (no unlearn)", "-", orig, "-");
    for (name, row) in [
        ("ascent + repair", rows[0]),
        ("SISA shard retrain", rows[1]),
        ("full retrain (oracle)", rows[2]),
    ] {
        println!("{:<22} {:>12.3} {:>12.3} {:>13.2}x", name, row[0], row[1], row[2]);
    }
    println!("\nForget accuracy near zero with retain accuracy near the original model,");
    println!("at a fraction of retraining cost — the §2.3 claim.");
}
