//! Concert event-location demo (§2.2): track a drifting performance with
//! the schedule-aware particle filter, comparing weighting kernels and the
//! typical-filter baseline.
//!
//! Run with: `cargo run --release --example concert_tracking`

use std::time::Instant;
use treu::pf::experiment::{run_baseline, run_tracking, Workload};
use treu::pf::WeightFn;

fn main() {
    let workload = Workload::default();
    println!(
        "Concert: {} events, spacing {}s, performance runs {:.0}% fast\n",
        workload.k_events,
        workload.spacing,
        (workload.rate0 - 1.0) * 100.0
    );

    println!("== Weighting kernels (schedule-aware filter, 256 particles) ==");
    println!(
        "{:<12} {:>8} {:>10} {:>14} {:>12}",
        "kernel", "rmse", "final err", "kernel evals", "wall (ms)"
    );
    for kernel in WeightFn::all() {
        let mut rmse = 0.0;
        let mut final_err = 0.0;
        let mut evals = 0;
        // treu-lint: allow(wall-clock, reason = "table prints advisory per-kernel wall time")
        let start = Instant::now();
        let trials = 10;
        for seed in 0..trials {
            let r = run_tracking(workload, kernel, 256, seed);
            rmse += r.rmse / trials as f64;
            final_err += r.final_error / trials as f64;
            evals = r.kernel_evals;
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / trials as f64;
        println!(
            "{:<12} {:>8.3} {:>10.3} {:>14} {:>12.2}",
            kernel.name(),
            rmse,
            final_err,
            evals,
            ms
        );
    }

    println!("\n== Schedule-aware vs typical filter ==");
    println!("{:<10} {:>14} {:>14}", "tempo", "ours (rmse)", "typical (rmse)");
    for (label, rate0) in [("on-tempo", 1.0), ("+8% fast", 1.08), ("+15% fast", 1.15)] {
        let w = Workload { rate0, ..workload };
        let trials = 10;
        let (mut ours, mut base) = (0.0, 0.0);
        for seed in 0..trials {
            ours += run_tracking(w, WeightFn::Gaussian, 256, seed).rmse / trials as f64;
            base += run_baseline(w, 256, seed).rmse / trials as f64;
        }
        println!("{label:<10} {ours:>14.3} {base:>14.3}");
    }
    println!("\nThe fast (triangular) kernel needs no transcendental math per particle");
    println!("and is almost as accurate as the Gaussian — the §2.2 result.");
}
