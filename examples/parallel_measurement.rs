//! The HPC lesson module (§4, footnote 1): "how to conduct performance
//! measurement of parallel computations" — measure a real parallel
//! matmul's speedup curve, fit Amdahl's law to it, then run a multi-seed
//! experiment batch through the deterministic executor and read the same
//! accounting off its report.
//!
//! Run with: `cargo run --release --example parallel_measurement`

use treu::core::exec::Executor;
use treu::core::experiment::{Experiment, Params, RunContext};
use treu_math::rng::SplitMix64;
use treu_math::scaling::{amdahl_speedup, fit_amdahl, measure_speedup};
use treu_math::Matrix;

/// One seeded unit of the batch workload: a Gaussian matmul whose trace is
/// recorded as the (deterministic) result metric.
struct MatmulTrial;

impl Experiment for MatmulTrial {
    fn name(&self) -> &str {
        "hpc/matmul-trial"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("n", 160) as usize;
        let mut rng = ctx.rng("entries");
        let a = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());
        let b = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());
        let c = a.matmul(&b);
        ctx.record("frobenius", c.frobenius_norm());
    }
}

fn main() {
    let mut rng = SplitMix64::new(1);
    let n = 384;
    let a = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());
    let b = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());

    // Sweep past the hardware parallelism on purpose: seeing the curve go
    // flat (or negative) at oversubscription is part of the lesson.
    let hw = treu_math::parallel::default_threads();
    let counts: Vec<usize> = vec![1, 2, 4, 8];
    println!(
        "Measuring {n}x{n} matmul over {counts:?} threads (best of 3; {hw} hardware thread(s))\n"
    );
    let points = measure_speedup(&counts, 3, |t| {
        let c = a.matmul_parallel(&b, t);
        assert!(c.is_finite());
    });

    println!("{:>8} {:>12} {:>9}", "threads", "seconds", "speedup");
    for p in &points {
        println!("{:>8} {:>12.5} {:>8.2}x", p.threads, p.seconds, p.speedup);
    }

    let (f, rmse) = fit_amdahl(&points);
    println!("\nAmdahl fit: serial fraction f = {f:.3} (rmse {rmse:.3})");
    println!(
        "Projected speedup at 64 threads under this fit: {:.1}x (perfect would be 64x)",
        amdahl_speedup(f, 64)
    );
    // The same lesson at the harness level: a batch of seeded experiment
    // runs through the deterministic executor, sequential vs parallel.
    let seeds: Vec<u64> = (0..8).collect();
    let params = Params::new().with_int("n", 160);
    let (seq_records, seq_report) =
        Executor::sequential().run_seeds_report(&MatmulTrial, &seeds, &params);
    let (par_records, par_report) =
        Executor::new(hw).run_seeds_report(&MatmulTrial, &seeds, &params);
    let identical = seq_records.iter().zip(&par_records).all(|(a, b)| a.trail == b.trail);
    println!("\nExecutor batch: {} seeded matmul trials", seeds.len());
    println!(
        "  sequential wall {:.3}s, {} job(s) wall {:.3}s, measured speedup {:.2}x",
        seq_report.wall_seconds,
        hw,
        par_report.wall_seconds,
        par_report.speedup()
    );
    println!(
        "  implied Amdahl serial fraction: {:.3}; results bitwise-identical: {identical}",
        par_report.serial_fraction()
    );
    assert!(identical, "job count must never change results");

    println!("\nLesson: report the measurement protocol (reps, minimum-of), the");
    println!("baseline, and the fitted scaling model — not just one wall-clock number.");
}
