//! The HPC lesson module (§4, footnote 1): "how to conduct performance
//! measurement of parallel computations" — measure a real parallel
//! matmul's speedup curve and fit Amdahl's law to it.
//!
//! Run with: `cargo run --release --example parallel_measurement`

use treu_math::rng::SplitMix64;
use treu_math::scaling::{amdahl_speedup, fit_amdahl, measure_speedup};
use treu_math::Matrix;

fn main() {
    let mut rng = SplitMix64::new(1);
    let n = 384;
    let a = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());
    let b = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());

    // Sweep past the hardware parallelism on purpose: seeing the curve go
    // flat (or negative) at oversubscription is part of the lesson.
    let hw = treu_math::parallel::default_threads();
    let counts: Vec<usize> = vec![1, 2, 4, 8];
    println!(
        "Measuring {n}x{n} matmul over {counts:?} threads (best of 3; {hw} hardware thread(s))\n"
    );
    let points = measure_speedup(&counts, 3, |t| {
        let c = a.matmul_parallel(&b, t);
        assert!(c.is_finite());
    });

    println!("{:>8} {:>12} {:>9}", "threads", "seconds", "speedup");
    for p in &points {
        println!("{:>8} {:>12.5} {:>8.2}x", p.threads, p.seconds, p.speedup);
    }

    let (f, rmse) = fit_amdahl(&points);
    println!("\nAmdahl fit: serial fraction f = {f:.3} (rmse {rmse:.3})");
    println!(
        "Projected speedup at 64 threads under this fit: {:.1}x (perfect would be 64x)",
        amdahl_speedup(f, 64)
    );
    println!("\nLesson: report the measurement protocol (reps, minimum-of), the");
    println!("baseline, and the fitted scaling model — not just one wall-clock number.");
}
