//! The §2.1 artifact-evaluation study, end to end: pilot the study
//! materials, revise them from feedback, then put an artifact through the
//! badge ladder with rerun evidence — the full sociotechnical loop the REU
//! students worked inside.
//!
//! Run with: `cargo run --release --example artifact_review`

use treu::core::artifact::Artifact;
use treu::core::badge::{evaluate, Badge, ClaimCheck};
use treu::core::study::{
    default_diary_study, default_interview_protocol, revise, validity_score, ItemFeedback,
    PilotSession,
};

fn main() {
    // --- Phase 1: pilot the study materials (the paper ran four sessions).
    let v1 = default_diary_study();
    println!("== Diary study v{} ==", v1.version);
    for item in &v1.items {
        println!("  [{}] {}", item.id, item.prompt);
    }

    let pilots: Vec<PilotSession> = (0..4)
        .map(|i| PilotSession {
            participant: format!("pilot-{i}"),
            instrument_version: 1,
            feedback: vec![
                ItemFeedback { item_id: "d2".into(), clarity: 2, comprehensiveness: 3,
                    suggestion: Some("Which specific claim were you trying to reproduce today?".into()) },
                ItemFeedback { item_id: "d3".into(), clarity: 2, comprehensiveness: 4,
                    suggestion: Some("List every blocker (missing docs, broken dependency, hardware) and how long each cost you.".into()) },
                ItemFeedback { item_id: "d5".into(), clarity: 4, comprehensiveness: 4, suggestion: None },
            ],
        })
        .collect();
    let before = validity_score(&pilots).expect("feedback present");

    let v2 = revise(&v1, &pilots, 3.0);
    println!("\n== After piloting (validity {before:.2}/5) ==");
    for line in &v2.changelog {
        println!("  {line}");
    }
    println!("  revised d2: {}", v2.item("d2").expect("exists").prompt);

    let interviews = default_interview_protocol();
    println!(
        "\nInterview protocol has {} questions (conducted over Zoom in the paper).",
        interviews.items.len()
    );

    // --- Phase 2: review an artifact the way the study's subjects do.
    println!("\n== Reviewing the TREU artifact itself ==");
    let artifact = Artifact::new("treu", env!("CARGO_PKG_VERSION"))
        .with_code("workspace crates", "rust", true, true)
        .with_code("criterion benches", "rust", true, true)
        .with_doc("README.md", &["T1"])
        .with_doc("EXPERIMENTS.md", &["T1", "E2.10"])
        .with_claim("T1", "Table 1 reproduces exactly", 0.0)
        .with_claim("E2.10", "spectral filter beats coordinate median at d=256", 0.0);

    let assessment = artifact.assess();
    println!(
        "code complete: {} (pinned {:.0}%, checked {:.0}%); docs complete: {}",
        assessment.code_complete(),
        assessment.code_pinned_fraction * 100.0,
        assessment.code_checked_fraction * 100.0,
        assessment.docs_complete()
    );

    // Rerun evidence straight from the registry.
    let reg = treu::full_registry();
    let t1 = reg.run("T1", 2023).expect("registered");
    let e210 = reg.run("E2.10", 2023).expect("registered");
    let beats = (e210.metric("d256_filter").unwrap() < e210.metric("d256_median").unwrap()) as i64;
    let checks = vec![
        ClaimCheck {
            claim_id: "T1".into(),
            claimed: 0.0,
            measured: t1.metric("max_abs_dev").unwrap(),
        },
        ClaimCheck { claim_id: "E2.10".into(), claimed: 1.0, measured: beats as f64 },
    ];
    let eval = evaluate(&artifact, true, &checks);
    println!("\nBadges:");
    for b in [Badge::ArtifactsAvailable, Badge::ArtifactsFunctional, Badge::ResultsReproduced] {
        println!("  {b:?}: {}", if eval.has(b) { "AWARDED" } else { "withheld" });
    }
    for w in &eval.withheld {
        println!("  withheld because: {w}");
    }
    assert!(eval.has(Badge::ResultsReproduced));
    println!("\nartifact_review: OK");
}
