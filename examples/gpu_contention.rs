//! GPU contention demo (§3): the cohort's end-of-program rush vs the
//! paper's recommended staged batches, under FIFO and backfill scheduling.
//!
//! Run with: `cargo run --release --example gpu_contention`

use treu::cluster::sim::Scheduler;
use treu::cluster::trace::{cohort_trace, SubmissionPolicy};
use treu::cluster::Cluster;
use treu_math::rng::SplitMix64;
use treu_math::stats::Welford;

fn main() {
    let cluster = Cluster::default();
    println!(
        "Cluster: {} GPUs; a student is 'stuck' after waiting {:.0}h\n",
        cluster.gpus, cluster.stuck_threshold
    );
    println!(
        "{:<11} {:<9} {:>10} {:>9} {:>8} {:>12} {:>12}",
        "policy", "sched", "mean wait", "p95 wait", "stuck", "makespan", "utilization"
    );
    let policies = [
        SubmissionPolicy::Clustered,
        SubmissionPolicy::Staged { batches: 4, window: 8.0 },
        SubmissionPolicy::Uniform { span: 32.0 },
    ];
    for policy in policies {
        for scheduler in [Scheduler::Fifo, Scheduler::Backfill] {
            let mut wait = Welford::new();
            let mut p95 = Welford::new();
            let mut stuck = Welford::new();
            let mut makespan = Welford::new();
            let mut util = Welford::new();
            for trial in 0..10u64 {
                let mut rng = SplitMix64::new(9000 + trial);
                let jobs = cohort_trace(40, policy, &mut rng);
                let m = cluster.simulate(&jobs, scheduler);
                wait.add(m.mean_wait);
                p95.add(m.p95_wait);
                stuck.add(m.stuck_fraction);
                makespan.add(m.makespan);
                util.add(m.utilization);
            }
            println!(
                "{:<11} {:<9} {:>9.2}h {:>8.2}h {:>7.0}% {:>11.1}h {:>11.0}%",
                policy.name(),
                scheduler.name(),
                wait.mean(),
                p95.mean(),
                stuck.mean() * 100.0,
                makespan.mean(),
                util.mean() * 100.0
            );
        }
    }
    println!("\nStaging the cohort's runs across non-overlapping batches removes the");
    println!("stuck-student tail that the clustered deadline rush produces — §3's advice.");
}
