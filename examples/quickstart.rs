//! Quickstart: the reproducibility harness end to end.
//!
//! Builds the full experiment registry, lists it, reruns the paper's three
//! tables under two identical seeds to demonstrate bitwise determinism, and
//! walks an artifact through the ACM-style badge ladder using the rerun as
//! evidence.
//!
//! Run with: `cargo run --release --example quickstart`

use treu::core::artifact::Artifact;
use treu::core::badge::{evaluate, Badge, ClaimCheck};
use treu::core::environment::Environment;

fn main() {
    let reg = treu::full_registry();

    println!("== TREU experiment index ==");
    print!("{}", reg.render_index());

    println!("\n== Environment ==");
    print!("{}", Environment::capture().render());

    // Determinism: rerunning any experiment with the same seed must yield
    // the same provenance fingerprint.
    println!("\n== Determinism check on the published tables ==");
    let seed = 2023;
    for id in treu::TABLE_IDS {
        let a = reg.run(id, seed).expect("registered");
        let b = reg.run(id, seed).expect("registered");
        assert_eq!(a.fingerprint(), b.fingerprint(), "{id} must be deterministic");
        println!(
            "{id}: fingerprint {:#018x} reproduced ({} metrics, {:.3}s)",
            a.fingerprint(),
            a.trail.metrics().len(),
            a.wall_seconds
        );
    }

    // Badge evaluation: the artifact claims Table 1 reproduces exactly and
    // Tables 2/3 within Likert rounding; the reruns are the evidence.
    println!("\n== Badge evaluation ==");
    let artifact = Artifact::new("treu-reproduction", env!("CARGO_PKG_VERSION"))
        .with_code("treu workspace", "rust", true, true)
        .with_doc("EXPERIMENTS.md", &["T1", "T2", "T3"])
        .with_claim("T1", "goal counts reproduce exactly", 0.0)
        .with_claim("T2", "confidence means within rounding", 0.05)
        .with_claim("T3", "knowledge means within rounding", 0.05);
    let t1 = reg.run("T1", seed).expect("registered");
    let t2 = reg.run("T2", seed).expect("registered");
    let t3 = reg.run("T3", seed).expect("registered");
    let checks = vec![
        ClaimCheck {
            claim_id: "T1".into(),
            claimed: 0.0,
            measured: t1.metric("max_abs_dev").unwrap(),
        },
        ClaimCheck {
            claim_id: "T2".into(),
            claimed: 0.0,
            measured: t2.metric("max_abs_dev_mean").unwrap(),
        },
        ClaimCheck {
            claim_id: "T3".into(),
            claimed: 0.0,
            measured: t3.metric("max_abs_dev_mean").unwrap(),
        },
    ];
    let eval = evaluate(&artifact, true, &checks);
    for b in [Badge::ArtifactsAvailable, Badge::ArtifactsFunctional, Badge::ResultsReproduced] {
        println!("{b:?}: {}", if eval.has(b) { "AWARDED" } else { "withheld" });
    }
    for w in &eval.withheld {
        println!("  reason: {w}");
    }
    assert!(eval.has(Badge::ResultsReproduced), "the reproduction must earn its badge");
    println!("\nquickstart: OK");
}
