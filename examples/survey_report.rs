//! Regenerates the paper's entire evaluation: Tables 1, 2 and 3 plus the
//! Section 3 narrative statistics, with paper-vs-measured deltas.
//!
//! Run with: `cargo run --release --example survey_report`

use treu::core::report::comparison_line;
use treu::surveys::{analysis, cohort::Cohort, paper};

fn main() {
    let cohort = Cohort::simulate(2023);

    let t1 = analysis::table1(&cohort);
    println!("{}", analysis::render_table1(&t1));
    let t2 = analysis::table2(&cohort);
    println!("{}", analysis::render_table2(&t2));
    let t3 = analysis::table3(&cohort);
    println!("{}", analysis::render_table3(&t3));

    println!("== Paper vs measured ==");
    let exact =
        t1.iter().zip(paper::GOALS.iter()).all(|(row, (_, want))| row.accomplished == *want);
    println!("Table 1: all 19 goal counts exact: {exact}");
    let worst2 = t2
        .iter()
        .zip(paper::SKILLS.iter())
        .map(|(row, (_, m, _))| (row.apriori_mean - m).abs())
        .fold(0.0f64, f64::max);
    println!("Table 2: worst a-priori-mean deviation: {worst2:.3} (Likert rounding bound 0.034)");
    let worst3 = t3
        .iter()
        .zip(paper::KNOWLEDGE.iter())
        .map(|(row, (_, _, b))| (row.increase - b).abs())
        .fold(0.0f64, f64::max);
    println!("Table 3: worst increase deviation:     {worst3:.3}");

    println!("\n== Section 3 narrative ==");
    let n = analysis::narrative(&cohort);
    println!(
        "{}",
        comparison_line("PhD intent (a priori mean)", paper::PHD_INTENT.0, n.phd_apriori_mean)
    );
    println!(
        "{}",
        comparison_line("PhD intent (post hoc mean)", paper::PHD_INTENT.2, n.phd_posthoc_mean)
    );
    println!(
        "PhD intent modes: paper {} -> {}, measured {} -> {}",
        paper::PHD_INTENT.1,
        paper::PHD_INTENT.3,
        n.phd_apriori_mode,
        n.phd_posthoc_mode
    );
    println!(
        "Recommenders (mode, min, max): REU {:?}, home {:?}, outside {:?}",
        n.rec_reu, n.rec_home, n.rec_outside
    );
    println!("Goals accomplished by all nine respondents: {} (paper: 5)", n.goals_by_all);

    let (pool, offers) = treu::surveys::cohort::simulate_admissions(2023);
    let nonresearch = offers.iter().filter(|&&i| !pool[i].research_institution).count();
    println!(
        "\nAdmissions: {} applicants, {} offers, {} to non-research institutions (slant by policy)",
        pool.len(),
        offers.len(),
        nonresearch
    );

    // Multi-seed stability, fanned out over the deterministic executor:
    // how sensitive are the Table 2 calibration deviations to the cohort
    // seed? (Bitwise-identical for any job count.)
    let seeds: Vec<u64> = (2020..2030).collect();
    let jobs = treu::math::parallel::default_threads();
    let stability = treu::surveys::experiments::seed_stability(
        &treu::surveys::experiments::Table2Experiment,
        &seeds,
        jobs,
    );
    let dev = &stability["max_abs_dev_mean"];
    println!(
        "\nTable 2 a-priori-mean deviation across {} seeds ({} jobs): mean {:.3}, worst {:.3}",
        seeds.len(),
        jobs,
        dev.stats.mean(),
        dev.max
    );
}
