//! Compiler-scheduling demo (§2.5): GA-autotune the five ML kernels,
//! replicate the winning schedules on the second backend, print the
//! roofline report, and validate the cost model's ranking against real
//! executor timings.
//!
//! Run with: `cargo run --release --example autotune_kernels`

use treu::autotune::executor::{execute, verify, Backend};
use treu::autotune::experiment::tune_kernel;
use treu::autotune::roofline::{report, Machine};
use treu::autotune::{GaParams, Kernel, Schedule};
use treu_math::rng::SplitMix64;

fn time_real(kernel: &Kernel, schedule: Schedule, backend: Backend, reps: usize) -> f64 {
    let mut rng = SplitMix64::new(42);
    let mut w = kernel.workload(&mut rng);
    // Warm-up, then the median of reps.
    execute(kernel, schedule, backend, &mut w);
    let mut times: Vec<f64> =
        (0..reps).map(|_| execute(kernel, schedule, backend, &mut w)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[reps / 2]
}

fn main() {
    println!("== Roofline (laptop model: 50 GFLOP/s peak, 20 GB/s) ==");
    println!("{:<10} {:>12} {:>16} {:>8}", "kernel", "AI (F/B)", "ceiling GF/s", "bound");
    for row in report(Machine::laptop(), &Kernel::suite()) {
        println!(
            "{:<10} {:>12.2} {:>16.1} {:>8}",
            row.kernel,
            row.intensity,
            row.attainable_gflops,
            if row.memory_bound { "memory" } else { "compute" }
        );
    }

    println!("\n== GA autotuning (cost model) + cross-backend replication ==");
    println!("{:<10} {:>9} {:>11} {:<46}", "kernel", "speedup", "replicate", "best schedule");
    for kernel in Kernel::suite() {
        let r = tune_kernel(kernel, GaParams::default(), 7);
        println!(
            "{:<10} {:>8.2}x {:>10.2}x {:<46}",
            r.kernel,
            r.speedup(),
            r.replication_ratio(),
            r.best.render()
        );
        // Every tuned schedule must still be correct on both backends.
        for backend in Backend::all() {
            assert!(verify(&kernel, r.best, backend, 3) < 1e-9);
        }
    }
    println!("(replicate <= 1.00x means the second framework matched the first — matvec's case)");

    println!("\n== Real executor timing: naive vs reference vs tuned (axpy backend) ==");
    println!("{:<10} {:>12} {:>12} {:>12}", "kernel", "naive (us)", "ref (us)", "tuned (us)");
    for kernel in Kernel::suite() {
        let tuned = tune_kernel(kernel, GaParams::default(), 7).best;
        let us = |s| time_real(&kernel, s, Backend::AxpyLowering, 5) * 1e6;
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1}",
            kernel.name(),
            us(Schedule::naive()),
            us(Schedule::reference()),
            us(tuned)
        );
    }
}
