//! Robust high-dimensional statistics demo (§2.10): the ε-sweep and
//! dimension-sweep for robust mean estimation.
//!
//! Run with: `cargo run --release --example robust_mean`

use treu::robust::experiment::sweep_point;
use treu::robust::Contamination;

fn main() {
    let threads = treu_math::parallel::default_threads();
    let strategy = Contamination::SubtleShift;
    println!("Adversary: {} (the spectral-vs-coordinate separating case)\n", strategy.name());

    println!("== L2 error vs contamination fraction (n=800, d=64, 4 trials) ==");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>10} {:>8} {:>9} {:>9}",
        "eps", "mean", "median", "trimmed", "geomedian", "mom", "filter", "oracle"
    );
    for eps_pct in [0, 2, 5, 10, 15, 20] {
        let p = sweep_point(800, 64, eps_pct as f64 / 100.0, strategy, 4, threads, 11 + eps_pct);
        println!(
            "{:>4}% {:>9.3} {:>9.3} {:>9.3} {:>10.3} {:>8.3} {:>9.3} {:>9.3}",
            eps_pct, p.mean, p.median, p.trimmed, p.geomedian, p.mom, p.filter, p.oracle
        );
    }

    println!("\n== L2 error vs dimension (n=800, eps=0.1, 4 trials) ==");
    println!(
        "{:>5} {:>9} {:>9} {:>10} {:>9} {:>9}",
        "d", "mean", "median", "geomedian", "filter", "oracle"
    );
    for d in [16usize, 32, 64, 128, 256] {
        let p = sweep_point(800, d, 0.1, strategy, 4, threads, 100 + d as u64);
        println!(
            "{:>5} {:>9.3} {:>9.3} {:>10.3} {:>9.3} {:>9.3}",
            d, p.mean, p.median, p.geomedian, p.filter, p.oracle
        );
    }
    println!("\nCoordinate-wise estimators degrade like eps*sqrt(d); the spectral filter stays");
    println!("near the oracle — the dimension-independence the recent theory promises.");
}
