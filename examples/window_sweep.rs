//! Figure-equivalent for §2.9: transformer accuracy as a function of its
//! truncation window, produced with the harness's parameter-sweep API.
//! As the window approaches the sequence length the transformer closes the
//! gap to the CNN — quantifying why "not close to the entire sequence
//! length" lost.
//!
//! Run with: `cargo run --release --example window_sweep`

use treu::core::experiment::Params;
use treu::core::sweep::{render_sweep, sweep, Axis};
use treu::malware::experiment::MalwareExperiment;

fn main() {
    // seq_len 32 keeps the mini-transformer inside its capacity so the
    // sweep isolates *coverage* (at longer windows the mean-pooled
    // single-head model is also capacity-limited, which muddies the curve).
    let base = Params::new()
        .with_int("seq_len", 32)
        .with_int("n_train_per_class", 25)
        .with_int("n_test_per_class", 15)
        .with_int("epochs", 12);
    let axes = [Axis::ints("window", &[8, 12, 16, 24, 32])];
    let points = sweep(&MalwareExperiment, &base, &axes, 2023);
    let table = render_sweep(
        "E2.9 sweep: truncation window vs accuracy (seq_len = 32)",
        &points,
        &["window_coverage", "transformer_accuracy", "cnn_accuracy"],
    );
    println!("{}", table.render());
    println!("The CNN column is flat (it always sees the whole sequence); the");
    println!("transformer column tracks its window coverage — §2.9's mechanism.");
}
