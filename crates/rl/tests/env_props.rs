//! Property tests for the environment suite: the contracts the DQN agent
//! relies on, under arbitrary action sequences.

use proptest::prelude::*;
use treu_math::rng::SplitMix64;
use treu_rl::env::{EnvKind, N_ACTIONS, OBS_LEN};

fn any_env() -> impl Strategy<Value = EnvKind> {
    prop_oneof![Just(EnvKind::Frogger), Just(EnvKind::Collect), Just(EnvKind::Catch)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn observations_and_rewards_are_always_well_formed(
        kind in any_env(),
        seed in any::<u64>(),
        actions in proptest::collection::vec(0usize..N_ACTIONS, 1..60),
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut env = kind.build();
        let obs = env.reset(&mut rng);
        prop_assert_eq!(obs.len(), OBS_LEN);
        for &a in &actions {
            let r = env.step(a, &mut rng);
            prop_assert_eq!(r.obs.len(), OBS_LEN);
            prop_assert!(r.obs.iter().all(|v| (-1.0..=1.0).contains(v)));
            prop_assert!((-5.0..=10.0).contains(&r.reward), "reward {}", r.reward);
            if r.done {
                break;
            }
        }
    }

    #[test]
    fn episodes_terminate_within_horizon_or_run_forever_gracefully(
        kind in any_env(),
        seed in any::<u64>(),
    ) {
        // Play a fixed policy for twice the horizon: either the episode
        // ends (done), or every step stays well-formed — no panics, no
        // state corruption.
        let mut rng = SplitMix64::new(seed);
        let mut env = kind.build();
        env.reset(&mut rng);
        let horizon = env.horizon();
        prop_assert!(horizon > 0);
        for step in 0..2 * horizon {
            let r = env.step(step % N_ACTIONS, &mut rng);
            if r.done {
                return Ok(());
            }
        }
    }

    #[test]
    fn reset_always_restores_a_playable_state(kind in any_env(), seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let mut env = kind.build();
        // Run to completion, then reset and confirm a fresh episode works.
        env.reset(&mut rng);
        for _ in 0..env.horizon() {
            if env.step(0, &mut rng).done {
                break;
            }
        }
        let obs = env.reset(&mut rng);
        prop_assert_eq!(obs.iter().filter(|&&v| v == 1.0).count(), 1, "one agent after reset");
        let r = env.step(4, &mut rng);
        prop_assert_eq!(r.obs.len(), OBS_LEN);
    }
}
