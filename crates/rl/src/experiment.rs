//! Harnessed experiment E2.8: environments × estimator families × seeds.
//!
//! Seeds within one configuration run in parallel through the
//! deterministic [`treu_core::exec::Executor`] — this is the "array of ML
//! projects finishing at the same time" workload shape, here used
//! productively, with results merged in seed order so the thread count
//! never changes them.

use crate::dqn::{DqnAgent, DqnConfig};
use crate::env::EnvKind;
use crate::estimators::EstimatorKind;
use crate::reliability::reliability;
use treu_core::exec::Executor;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::derive_seed;

/// Trains one agent per seed and returns the per-seed greedy rewards.
pub fn seed_rewards(
    env_kind: EnvKind,
    estimator: EstimatorKind,
    cfg: DqnConfig,
    seeds: usize,
    threads: usize,
    master_seed: u64,
) -> Vec<f64> {
    Executor::new(threads).map_indexed(seeds, |s| {
        let seed =
            derive_seed(master_seed, &format!("{}.{}.{s}", env_kind.name(), estimator.name()));
        let mut env = env_kind.build();
        let mut agent = DqnAgent::new(estimator, cfg, seed);
        agent.train(env.as_mut());
        agent.evaluate(env.as_mut(), 20)
    })
}

/// E2.8: the reliability comparison grid.
pub struct RlReliabilityExperiment;

impl Experiment for RlReliabilityExperiment {
    fn name(&self) -> &str {
        "rl/reliability"
    }

    fn run(&self, ctx: &mut RunContext) {
        let episodes = ctx.int("episodes", 400) as usize;
        let seeds = ctx.int("seeds", 5) as usize;
        let threads = ctx.int("threads", 4) as usize;
        let threshold = ctx.float("acceptable_reward", 2.0);
        let cfg = DqnConfig { episodes, ..DqnConfig::default() };

        let mut env_sums: Vec<(EnvKind, f64)> = Vec::new();
        for env_kind in EnvKind::all() {
            let mut env_sum = 0.0;
            for estimator in EstimatorKind::all() {
                let rewards = seed_rewards(env_kind, estimator, cfg, seeds, threads, ctx.seed());
                let rel = reliability(&rewards, threshold);
                let tag = format!("{}_{}", env_kind.name(), estimator.name());
                ctx.record(&format!("{tag}_mean"), rel.mean);
                ctx.record(&format!("{tag}_std"), rel.std_dev);
                ctx.record(&format!("{tag}_cvar25"), rel.cvar25);
                ctx.record(&format!("{tag}_p_acceptable"), rel.p_acceptable);
                env_sum += rel.mean;
            }
            ctx.record(&format!("{}_reward_sum", env_kind.name()), env_sum);
            env_sums.push((env_kind, env_sum));
        }
        // The §2.8 observation: which environment produced the best sum of
        // average rewards.
        let best = env_sums
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN sum"))
            .expect("non-empty suite");
        ctx.note(format!("best environment by reward sum: {}", best.0.name()));
        ctx.record("best_env_is_frogger", if best.0 == EnvKind::Frogger { 1.0 } else { 0.0 });
    }
}

/// Replay-capacity ablation (DESIGN.md): reliability of the conv estimator
/// on Catch as a function of buffer size.
pub struct ReplayAblation;

impl Experiment for ReplayAblation {
    fn name(&self) -> &str {
        "rl/replay-ablation"
    }

    fn run(&self, ctx: &mut RunContext) {
        let episodes = ctx.int("episodes", 180) as usize;
        let seeds = ctx.int("seeds", 4) as usize;
        let threads = ctx.int("threads", 4) as usize;
        for capacity in [16usize, 128, 2000] {
            let cfg = DqnConfig { episodes, replay_capacity: capacity, ..DqnConfig::default() };
            let rewards = seed_rewards(
                EnvKind::Catch,
                EstimatorKind::Conv,
                cfg,
                seeds,
                threads,
                derive_seed(ctx.seed(), &format!("cap{capacity}")),
            );
            let rel = reliability(&rewards, 2.0);
            ctx.record(&format!("cap{capacity:04}_mean"), rel.mean);
            ctx.record(&format!("cap{capacity:04}_cvar25"), rel.cvar25);
        }
    }
}

/// Registers E2.8 and its ablation.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.8",
        "Section 2.8",
        "DQN reliability: conv vs attention Q-estimators across envs",
        Params::new().with_int("episodes", 400).with_int("seeds", 5),
        Box::new(RlReliabilityExperiment),
    );
    reg.register(
        "E2.8-abl",
        "Section 2.8",
        "replay-capacity ablation on Catch",
        Params::new().with_int("episodes", 180).with_int("seeds", 4),
        Box::new(ReplayAblation),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::run_once;

    #[test]
    fn seed_rewards_are_thread_invariant() {
        let cfg = DqnConfig { episodes: 25, ..DqnConfig::default() };
        let a = seed_rewards(EnvKind::Catch, EstimatorKind::Conv, cfg, 3, 1, 7);
        let b = seed_rewards(EnvKind::Catch, EstimatorKind::Conv, cfg, 3, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn experiment_records_full_grid() {
        let p = Params::new().with_int("episodes", 40).with_int("seeds", 2);
        let rec = run_once(&RlReliabilityExperiment, 3, p);
        for env in EnvKind::all() {
            for est in EstimatorKind::all() {
                let tag = format!("{}_{}", env.name(), est.name());
                assert!(rec.metric(&format!("{tag}_mean")).is_some(), "{tag}");
                assert!(rec.metric(&format!("{tag}_cvar25")).is_some());
            }
            assert!(rec.metric(&format!("{}_reward_sum", env.name())).is_some());
        }
        assert!(rec.metric("best_env_is_frogger").is_some());
    }

    #[test]
    fn trained_agents_beat_random_on_catch() {
        let cfg = DqnConfig { episodes: 400, ..DqnConfig::default() };
        let rewards = seed_rewards(EnvKind::Catch, EstimatorKind::Conv, cfg, 3, 3, 11);
        let mut env = EnvKind::Catch.build();
        let random = crate::dqn::random_policy_reward(env.as_mut(), 40, 12);
        let mean = treu_math::stats::mean(&rewards);
        assert!(mean > random + 3.0, "trained {mean} vs random {random}");
    }

    #[test]
    fn replay_ablation_records_all_capacities() {
        let p = Params::new().with_int("episodes", 30).with_int("seeds", 2);
        let rec = run_once(&ReplayAblation, 5, p);
        for cap in ["cap0016", "cap0128", "cap2000"] {
            assert!(rec.metric(&format!("{cap}_mean")).is_some(), "{cap}");
        }
    }

    #[test]
    fn registry_ids() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E2.8").is_some());
        assert!(reg.get("E2.8-abl").is_some());
    }
}
