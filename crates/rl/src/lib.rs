//! `treu-rl` — reinforcement-learning reliability studies (paper §2.8).
//!
//! The project: "RL agents can exhibit superhuman performance in certain
//! tasks such as Atari games, but often do so unreliably, i.e. they may not
//! exhibit acceptable performance with high probability. The goal of the
//! project was to compare the reliability of using CNNs vs. vision
//! transformers for estimating Q values in deep Q networks."
//!
//! Substitution (DESIGN.md §2): Gymnasium's Atari suite becomes a
//! deterministic gridworld suite ([`mod@env`]) — including a Frogger-like
//! lane-crossing game, a pellet-collection game and a catching game — and
//! the two estimator families become a convolutional Q-network and an
//! attention (transformer-style) Q-network over the same grid observation
//! ([`estimators`]). The agent is a standard DQN with experience replay
//! and a target network ([`dqn`]). Reliability is measured the way the
//! literature the project builds on measures it: across independently
//! seeded training runs, report mean reward, dispersion, CVaR of the worst
//! quartile, and the probability of acceptable performance
//! ([`reliability`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dqn;
pub mod env;
pub mod estimators;
pub mod experiment;
pub mod reliability;

pub use dqn::{DqnAgent, DqnConfig};
pub use env::{Env, EnvKind};
pub use estimators::{EstimatorKind, QNetwork};
