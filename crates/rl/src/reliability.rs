//! Reliability metrics over independently seeded training runs.
//!
//! §2.8's framing: agents "may not exhibit acceptable performance with
//! high probability." Reliability is therefore a distributional property of
//! the *training procedure*, not of one run: train many seeds, look at the
//! spread of final performance.

use treu_math::stats;

/// Reliability summary of a set of per-seed final rewards.
#[derive(Debug, Clone, PartialEq)]
pub struct Reliability {
    /// Mean final reward across seeds.
    pub mean: f64,
    /// Standard deviation across seeds (dispersion).
    pub std_dev: f64,
    /// Conditional value at risk: mean of the worst 25% of seeds.
    pub cvar25: f64,
    /// Fraction of seeds at or above the acceptability threshold.
    pub p_acceptable: f64,
    /// The threshold used.
    pub threshold: f64,
}

/// Computes reliability metrics from per-seed rewards.
///
/// # Panics
///
/// Panics if `rewards` is empty.
pub fn reliability(rewards: &[f64], threshold: f64) -> Reliability {
    assert!(!rewards.is_empty(), "no seeds to summarize");
    let mut sorted = rewards.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN reward"));
    let k = (sorted.len() as f64 * 0.25).ceil().max(1.0) as usize;
    let cvar25 = stats::mean(&sorted[..k]);
    Reliability {
        mean: stats::mean(rewards),
        std_dev: stats::std_dev(rewards),
        cvar25,
        p_acceptable: rewards.iter().filter(|&&r| r >= threshold).count() as f64
            / rewards.len() as f64,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_on_known_distribution() {
        let rewards = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
        let r = reliability(&rewards, 6.0);
        assert_eq!(r.mean, 7.0);
        assert_eq!(r.cvar25, 1.0); // worst 2 of 8: {0, 2}
        assert_eq!(r.p_acceptable, 0.625); // 5 of 8 >= 6
    }

    #[test]
    fn cvar_is_lower_than_mean_for_spread_data() {
        let r = reliability(&[1.0, 5.0, 9.0, 13.0], 0.0);
        assert!(r.cvar25 < r.mean);
        assert_eq!(r.p_acceptable, 1.0);
    }

    #[test]
    fn degenerate_single_seed() {
        let r = reliability(&[3.0], 2.0);
        assert_eq!(r.mean, 3.0);
        assert_eq!(r.cvar25, 3.0);
        assert_eq!(r.std_dev, 0.0);
        assert_eq!(r.p_acceptable, 1.0);
    }

    #[test]
    #[should_panic(expected = "no seeds")]
    fn empty_panics() {
        reliability(&[], 0.0);
    }

    #[test]
    fn unreliable_beats_reliable_on_mean_but_not_cvar() {
        // The canonical §2.8 phenomenon: a higher-mean but erratic
        // procedure can be worse in the tail.
        let reliable = reliability(&[5.0, 5.2, 4.8, 5.1], 4.0);
        let erratic = reliability(&[9.0, 9.5, -2.0, 9.2], 4.0);
        assert!(erratic.mean > reliable.mean);
        assert!(erratic.cvar25 < reliable.cvar25);
        assert!(erratic.p_acceptable < reliable.p_acceptable);
    }
}
