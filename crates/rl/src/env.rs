//! The gridworld environment suite.
//!
//! All environments share one observation format — a `GRID x GRID` occupancy
//! image flattened row-major, agent plane encoded as `1.0`, hazards/objects
//! as `-1.0`/`0.5` — so the two Q-estimator families consume identical
//! inputs and the comparison is purely about the estimator.

use treu_math::rng::SplitMix64;

/// Grid side length shared by the suite.
pub const GRID: usize = 6;
/// Observation length (`GRID * GRID`).
pub const OBS_LEN: usize = GRID * GRID;
/// Action space: 0 = up, 1 = down, 2 = left, 3 = right, 4 = stay.
pub const N_ACTIONS: usize = 5;

/// One interaction step's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Next observation.
    pub obs: Vec<f64>,
    /// Reward received.
    pub reward: f64,
    /// Whether the episode ended.
    pub done: bool,
}

/// A reinforcement-learning environment.
pub trait Env {
    /// Resets to an initial state and returns the first observation.
    fn reset(&mut self, rng: &mut SplitMix64) -> Vec<f64>;
    /// Applies an action.
    fn step(&mut self, action: usize, rng: &mut SplitMix64) -> StepResult;
    /// Maximum episode length.
    fn horizon(&self) -> usize {
        40
    }
}

/// The suite's environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvKind {
    /// Cross the road: start at the bottom, reach the top; cars sweep
    /// horizontally through the middle lanes. The suite's Frogger.
    Frogger,
    /// Collect the pellet while a ghost pursues.
    Collect,
    /// Catch the falling ball with a paddle on the bottom row.
    Catch,
}

impl EnvKind {
    /// All environments.
    pub fn all() -> [EnvKind; 3] {
        [EnvKind::Frogger, EnvKind::Collect, EnvKind::Catch]
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            EnvKind::Frogger => "frogger",
            EnvKind::Collect => "collect",
            EnvKind::Catch => "catch",
        }
    }

    /// Instantiates the environment.
    pub fn build(self) -> Box<dyn Env> {
        match self {
            EnvKind::Frogger => Box::new(FroggerEnv::default()),
            EnvKind::Collect => Box::new(CollectEnv::default()),
            EnvKind::Catch => Box::new(CatchEnv::default()),
        }
    }
}

fn clamp_move(pos: (usize, usize), action: usize) -> (usize, usize) {
    let (r, c) = pos;
    match action {
        0 => (r.saturating_sub(1), c),
        1 => ((r + 1).min(GRID - 1), c),
        2 => (r, c.saturating_sub(1)),
        3 => (r, (c + 1).min(GRID - 1)),
        _ => (r, c),
    }
}

/// Frogger: rows 1..GRID-1 are lanes with one car each, moving one cell per
/// tick (alternating directions). Reaching row 0 pays +10; collision pays
/// -5 and ends the episode; each tick costs -0.1.
#[derive(Debug, Default)]
pub struct FroggerEnv {
    agent: (usize, usize),
    cars: Vec<(usize, usize, bool)>, // (row, col, moves_right)
}

impl FroggerEnv {
    fn observation(&self) -> Vec<f64> {
        let mut obs = vec![0.0; OBS_LEN];
        for &(r, c, _) in &self.cars {
            obs[r * GRID + c] = -1.0;
        }
        obs[self.agent.0 * GRID + self.agent.1] = 1.0;
        obs
    }
}

impl Env for FroggerEnv {
    fn reset(&mut self, rng: &mut SplitMix64) -> Vec<f64> {
        self.agent = (GRID - 1, rng.next_bounded(GRID as u64) as usize);
        self.cars = (1..GRID - 1)
            .map(|r| (r, rng.next_bounded(GRID as u64) as usize, r % 2 == 0))
            .collect();
        self.observation()
    }

    fn step(&mut self, action: usize, _rng: &mut SplitMix64) -> StepResult {
        self.agent = clamp_move(self.agent, action);
        // Cars advance deterministically.
        for (_, c, right) in self.cars.iter_mut() {
            *c = if *right { (*c + 1) % GRID } else { (*c + GRID - 1) % GRID };
        }
        let collided = self.cars.iter().any(|&(r, c, _)| (r, c) == self.agent);
        let reached = self.agent.0 == 0;
        let reward = if collided {
            -5.0
        } else if reached {
            10.0
        } else {
            -0.1
        };
        StepResult { obs: self.observation(), reward, done: collided || reached }
    }
}

/// Collect: a pellet (+10, episode ends) and a pursuing ghost (-5,
/// episode ends). The ghost takes a greedy step toward the agent every
/// other tick.
#[derive(Debug, Default)]
pub struct CollectEnv {
    agent: (usize, usize),
    pellet: (usize, usize),
    ghost: (usize, usize),
    tick: usize,
}

impl CollectEnv {
    fn observation(&self) -> Vec<f64> {
        let mut obs = vec![0.0; OBS_LEN];
        obs[self.ghost.0 * GRID + self.ghost.1] = -1.0;
        obs[self.pellet.0 * GRID + self.pellet.1] = 0.5;
        obs[self.agent.0 * GRID + self.agent.1] = 1.0;
        obs
    }
}

impl Env for CollectEnv {
    fn reset(&mut self, rng: &mut SplitMix64) -> Vec<f64> {
        self.agent = (GRID - 1, 0);
        self.pellet = (rng.next_bounded(2) as usize, rng.next_bounded(GRID as u64) as usize);
        self.ghost = (0, GRID - 1);
        self.tick = 0;
        self.observation()
    }

    fn step(&mut self, action: usize, _rng: &mut SplitMix64) -> StepResult {
        self.agent = clamp_move(self.agent, action);
        self.tick += 1;
        if self.tick.is_multiple_of(2) {
            // Greedy pursuit: close the larger coordinate gap.
            let dr = self.agent.0 as isize - self.ghost.0 as isize;
            let dc = self.agent.1 as isize - self.ghost.1 as isize;
            if dr.abs() >= dc.abs() {
                self.ghost.0 = (self.ghost.0 as isize + dr.signum()) as usize;
            } else {
                self.ghost.1 = (self.ghost.1 as isize + dc.signum()) as usize;
            }
        }
        let caught = self.ghost == self.agent;
        let got = self.agent == self.pellet;
        let reward = if caught {
            -5.0
        } else if got {
            10.0
        } else {
            -0.1
        };
        StepResult { obs: self.observation(), reward, done: caught || got }
    }
}

/// Catch: a ball falls one row per tick from a random column; the agent is
/// a paddle on the bottom row moving left/right. Catching pays +10,
/// missing -5.
#[derive(Debug, Default)]
pub struct CatchEnv {
    paddle: usize,
    ball: (usize, usize),
}

impl CatchEnv {
    fn observation(&self) -> Vec<f64> {
        let mut obs = vec![0.0; OBS_LEN];
        obs[self.ball.0 * GRID + self.ball.1] = 0.5;
        obs[(GRID - 1) * GRID + self.paddle] = 1.0;
        obs
    }
}

impl Env for CatchEnv {
    fn reset(&mut self, rng: &mut SplitMix64) -> Vec<f64> {
        self.paddle = GRID / 2;
        self.ball = (0, rng.next_bounded(GRID as u64) as usize);
        self.observation()
    }

    fn step(&mut self, action: usize, _rng: &mut SplitMix64) -> StepResult {
        match action {
            2 => self.paddle = self.paddle.saturating_sub(1),
            3 => self.paddle = (self.paddle + 1).min(GRID - 1),
            _ => {}
        }
        self.ball.0 += 1;
        if self.ball.0 == GRID - 1 {
            let caught = self.ball.1 == self.paddle;
            return StepResult {
                obs: self.observation(),
                reward: if caught { 10.0 } else { -5.0 },
                done: true,
            };
        }
        StepResult { obs: self.observation(), reward: 0.0, done: false }
    }

    fn horizon(&self) -> usize {
        GRID + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_are_grid_sized_and_bounded() {
        let mut rng = SplitMix64::new(1);
        for kind in EnvKind::all() {
            let mut env = kind.build();
            let obs = env.reset(&mut rng);
            assert_eq!(obs.len(), OBS_LEN, "{}", kind.name());
            assert!(obs.iter().all(|v| (-1.0..=1.0).contains(v)));
            assert_eq!(obs.iter().filter(|&&v| v == 1.0).count(), 1, "one agent plane");
        }
    }

    #[test]
    fn frogger_reaching_top_pays_out() {
        let mut rng = SplitMix64::new(2);
        let mut env = FroggerEnv::default();
        env.reset(&mut rng);
        // Drive straight up; either we win (+10) or get hit (-5), both end.
        let mut last = StepResult { obs: vec![], reward: 0.0, done: false };
        for _ in 0..GRID {
            last = env.step(0, &mut rng);
            if last.done {
                break;
            }
        }
        assert!(last.done);
        assert!(last.reward == 10.0 || last.reward == -5.0);
    }

    #[test]
    fn catch_perfect_play_always_wins() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..20 {
            let mut env = CatchEnv::default();
            env.reset(&mut rng);
            let mut result = StepResult { obs: vec![], reward: 0.0, done: false };
            for _ in 0..GRID {
                // Track the ball column.
                let action = if env.ball.1 < env.paddle {
                    2
                } else if env.ball.1 > env.paddle {
                    3
                } else {
                    4
                };
                result = env.step(action, &mut rng);
                if result.done {
                    break;
                }
            }
            assert_eq!(result.reward, 10.0, "tracking the ball must catch it");
        }
    }

    #[test]
    fn collect_ghost_pursues() {
        let mut rng = SplitMix64::new(4);
        let mut env = CollectEnv::default();
        env.reset(&mut rng);
        let d0 = env.ghost.0.abs_diff(env.agent.0) + env.ghost.1.abs_diff(env.agent.1);
        for _ in 0..6 {
            env.step(4, &mut rng); // stand still
        }
        let d1 = env.ghost.0.abs_diff(env.agent.0) + env.ghost.1.abs_diff(env.agent.1);
        assert!(d1 < d0, "ghost should close distance: {d0} -> {d1}");
    }

    #[test]
    fn step_is_deterministic_given_rng() {
        for kind in EnvKind::all() {
            let run = || {
                let mut rng = SplitMix64::new(9);
                let mut env = kind.build();
                env.reset(&mut rng);
                let mut rewards = Vec::new();
                for a in [0, 3, 0, 2, 1, 0, 0, 3] {
                    let r = env.step(a, &mut rng);
                    rewards.push(r.reward.to_bits());
                    if r.done {
                        break;
                    }
                }
                rewards
            };
            assert_eq!(run(), run(), "{}", kind.name());
        }
    }

    #[test]
    fn names_distinct_and_horizons_positive() {
        let names: std::collections::BTreeSet<&str> =
            EnvKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 3);
        for kind in EnvKind::all() {
            assert!(kind.build().horizon() > 0);
        }
    }
}
