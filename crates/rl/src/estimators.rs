//! The two Q-estimator families: convolutional and attention-based.
//!
//! Both consume the same flattened `GRID x GRID` observation and emit
//! [`crate::env::N_ACTIONS`] Q-values; the DQN agent is generic over
//! [`QNetwork`], so the reliability comparison isolates the estimator
//! family exactly as §2.8 isolates "CNNs vs. vision transformers for
//! estimating Q values".

use crate::env::{GRID, N_ACTIONS, OBS_LEN};
use treu_math::rng::derive_seed;
use treu_math::Matrix;
use treu_nn::attention::SelfAttention;
use treu_nn::conv::Conv1d;
use treu_nn::dense::Dense;
use treu_nn::layer::{Layer, Relu};
use treu_nn::optimizer::{Adam, Optimizer};

/// A trainable state-action value estimator.
pub trait QNetwork {
    /// Q-values for all actions in a state.
    fn q_values(&mut self, obs: &[f64]) -> Vec<f64>;
    /// One TD update: move `Q(obs, action)` toward `target`.
    fn update(&mut self, obs: &[f64], action: usize, target: f64);
    /// Copies all parameters from `other` (the target-network sync).
    fn load_params_from(&mut self, params: &[Vec<f64>]);
    /// Extracts all parameters (for target-network sync).
    fn export_params(&mut self) -> Vec<Vec<f64>>;
}

/// Estimator family selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Convolutional (the CNN family: EfficientNet's role).
    Conv,
    /// Attention (the vision-transformer family: SwinNet's role).
    Attention,
}

impl EstimatorKind {
    /// Both families.
    pub fn all() -> [EstimatorKind; 2] {
        [EstimatorKind::Conv, EstimatorKind::Attention]
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Conv => "conv",
            EstimatorKind::Attention => "attention",
        }
    }

    /// Builds an estimator with the given learning rate.
    pub fn build(self, lr: f64, seed: u64) -> Box<dyn QNetwork> {
        match self {
            EstimatorKind::Conv => Box::new(ConvQNet::new(lr, seed)),
            EstimatorKind::Attention => Box::new(AttnQNet::new(lr, seed)),
        }
    }
}

/// Shared helpers for the two nets.
fn td_backward(
    layers: &mut dyn Layer,
    opt: &mut Adam,
    logits: &Matrix,
    action: usize,
    target: f64,
) {
    // Squared TD error on the chosen action only.
    let mut grad = Matrix::zeros(1, N_ACTIONS);
    grad[(0, action)] = 2.0 * (logits[(0, action)] - target);
    layers.backward(&grad);
    treu_nn::optimizer::clip_grad_norm(layers, 5.0);
    opt.step(layers);
    layers.zero_grads();
}

fn export_params_of(layer: &mut dyn Layer) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    layer.for_each_param(&mut |p, _| out.push(p.to_vec()));
    out
}

fn load_params_into(layer: &mut dyn Layer, params: &[Vec<f64>]) {
    let mut i = 0;
    layer.for_each_param(&mut |p, _| {
        assert!(i < params.len(), "parameter bundle too short");
        assert_eq!(p.len(), params[i].len(), "parameter shape mismatch");
        p.copy_from_slice(&params[i]);
        i += 1;
    });
    assert_eq!(i, params.len(), "parameter bundle too long");
}

/// Convolutional Q-network: grid rows as channels, Conv1d along columns,
/// ReLU, dense head.
pub struct ConvQNet {
    net: treu_nn::model::Sequential,
    opt: Adam,
}

impl ConvQNet {
    /// Builds the network.
    pub fn new(lr: f64, seed: u64) -> Self {
        let conv = Conv1d::new(GRID, 8, 3, GRID, derive_seed(seed, "conv"));
        let width = conv.out_width();
        let net = treu_nn::model::Sequential::new(vec![
            Box::new(conv),
            Box::new(Relu::new()),
            Box::new(Dense::new(width, 32, derive_seed(seed, "fc1"))),
            Box::new(Relu::new()),
            Box::new(Dense::new(32, N_ACTIONS, derive_seed(seed, "fc2"))),
        ]);
        Self { net, opt: Adam::new(lr) }
    }
}

impl QNetwork for ConvQNet {
    fn q_values(&mut self, obs: &[f64]) -> Vec<f64> {
        assert_eq!(obs.len(), OBS_LEN, "observation length mismatch");
        let x = Matrix::from_vec(1, OBS_LEN, obs.to_vec());
        self.net.forward(&x, false).row(0).to_vec()
    }

    fn update(&mut self, obs: &[f64], action: usize, target: f64) {
        let x = Matrix::from_vec(1, OBS_LEN, obs.to_vec());
        let logits = self.net.forward(&x, true);
        td_backward(&mut self.net, &mut self.opt, &logits, action, target);
    }

    fn load_params_from(&mut self, params: &[Vec<f64>]) {
        load_params_into(&mut self.net, params);
    }

    fn export_params(&mut self) -> Vec<Vec<f64>> {
        export_params_of(&mut self.net)
    }
}

/// Attention Q-network: grid rows as tokens (dim = GRID), one
/// self-attention block, mean pool, dense head.
pub struct AttnQNet {
    attn: SelfAttention,
    head1: Dense,
    relu: Relu,
    head2: Dense,
    opt: Adam,
}

impl AttnQNet {
    /// Builds the network.
    pub fn new(lr: f64, seed: u64) -> Self {
        Self {
            attn: SelfAttention::new(GRID, derive_seed(seed, "attn")),
            head1: Dense::new(GRID, 32, derive_seed(seed, "fc1")),
            relu: Relu::new(),
            head2: Dense::new(32, N_ACTIONS, derive_seed(seed, "fc2")),
            opt: Adam::new(lr),
        }
    }

    fn forward(&mut self, obs: &[f64], train: bool) -> Matrix {
        // Rows as tokens: GRID x GRID sequence.
        let x = Matrix::from_vec(GRID, GRID, obs.to_vec());
        let y = self.attn.forward(&x, train); // GRID x GRID
                                              // Mean-pool tokens -> 1 x GRID.
        let mut pooled = Matrix::zeros(1, GRID);
        for t in 0..GRID {
            for c in 0..GRID {
                pooled[(0, c)] += y[(t, c)] / GRID as f64;
            }
        }
        let h = self.head1.forward(&pooled, train);
        let h = self.relu.forward(&h, train);
        self.head2.forward(&h, train)
    }
}

impl Layer for AttnQNet {
    fn forward(&mut self, _input: &Matrix, _train: bool) -> Matrix {
        panic!("AttnQNet: use QNetwork methods");
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let g = self.head2.backward(grad);
        let g = self.relu.backward(&g);
        let g = self.head1.backward(&g); // 1 x GRID
        let mut gy = Matrix::zeros(GRID, GRID);
        for t in 0..GRID {
            for c in 0..GRID {
                gy[(t, c)] = g[(0, c)] / GRID as f64;
            }
        }
        self.attn.backward(&gy)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.attn.for_each_param(f);
        self.head1.for_each_param(f);
        self.head2.for_each_param(f);
    }

    fn zero_grads(&mut self) {
        self.attn.zero_grads();
        self.head1.zero_grads();
        self.head2.zero_grads();
    }
}

impl QNetwork for AttnQNet {
    fn q_values(&mut self, obs: &[f64]) -> Vec<f64> {
        assert_eq!(obs.len(), OBS_LEN, "observation length mismatch");
        self.forward(obs, false).row(0).to_vec()
    }

    fn update(&mut self, obs: &[f64], action: usize, target: f64) {
        let logits = self.forward(obs, true);
        let mut grad = Matrix::zeros(1, N_ACTIONS);
        grad[(0, action)] = 2.0 * (logits[(0, action)] - target);
        Layer::backward(self, &grad);
        treu_nn::optimizer::clip_grad_norm(self, 5.0);
        // Adam is a field; borrow dance via std::mem swap.
        let mut opt = std::mem::replace(&mut self.opt, Adam::new(0.0));
        opt.step(self);
        self.opt = opt;
        self.zero_grads();
    }

    fn load_params_from(&mut self, params: &[Vec<f64>]) {
        load_params_into(self, params);
    }

    fn export_params(&mut self) -> Vec<Vec<f64>> {
        export_params_of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_obs() -> Vec<f64> {
        vec![0.0; OBS_LEN]
    }

    #[test]
    fn q_values_have_action_arity() {
        for kind in EstimatorKind::all() {
            let mut q = kind.build(0.01, 1);
            let v = q.q_values(&zero_obs());
            assert_eq!(v.len(), N_ACTIONS, "{}", kind.name());
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn update_moves_q_toward_target() {
        for kind in EstimatorKind::all() {
            let mut q = kind.build(0.02, 2);
            let mut obs = zero_obs();
            obs[7] = 1.0;
            let before = q.q_values(&obs)[3];
            for _ in 0..200 {
                q.update(&obs, 3, 5.0);
            }
            let after = q.q_values(&obs)[3];
            assert!(
                (after - 5.0).abs() < (before - 5.0).abs(),
                "{}: {before} -> {after}",
                kind.name()
            );
            assert!((after - 5.0).abs() < 1.0, "{}: after {after}", kind.name());
        }
    }

    #[test]
    fn target_sync_roundtrip() {
        for kind in EstimatorKind::all() {
            let mut a = kind.build(0.02, 3);
            let mut b = kind.build(0.02, 4);
            let obs = {
                let mut o = zero_obs();
                o[10] = 1.0;
                o[20] = -1.0;
                o
            };
            assert_ne!(a.q_values(&obs), b.q_values(&obs), "different seeds differ");
            let params = a.export_params();
            b.load_params_from(&params);
            assert_eq!(a.q_values(&obs), b.q_values(&obs), "{}", kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "observation length mismatch")]
    fn wrong_obs_len_panics() {
        EstimatorKind::Conv.build(0.01, 0).q_values(&[0.0; 4]);
    }

    #[test]
    fn updates_are_deterministic() {
        for kind in EstimatorKind::all() {
            let run = || {
                let mut q = kind.build(0.02, 7);
                let mut obs = zero_obs();
                obs[0] = 1.0;
                for i in 0..50 {
                    q.update(&obs, i % N_ACTIONS, 1.0);
                }
                q.q_values(&obs)
            };
            assert_eq!(run(), run(), "{}", kind.name());
        }
    }
}
