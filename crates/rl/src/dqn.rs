//! Deep Q-learning with experience replay and a target network
//! (Mnih et al. 2015, the paper's reference \[15\]).

use crate::env::{Env, StepResult, N_ACTIONS};
use crate::estimators::{EstimatorKind, QNetwork};
use treu_math::rng::{derive_seed, SplitMix64};

/// One replay transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State observation.
    pub obs: Vec<f64>,
    /// Action taken.
    pub action: usize,
    /// Reward received.
    pub reward: f64,
    /// Next observation.
    pub next_obs: Vec<f64>,
    /// Whether the episode ended at `next_obs`.
    pub done: bool,
}

/// A bounded ring-buffer replay memory with uniform sampling.
#[derive(Debug, Default)]
pub struct ReplayBuffer {
    buf: Vec<Transition>,
    capacity: usize,
    head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self { buf: Vec::with_capacity(capacity), capacity, head: 0 }
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.capacity {
            self.buf.push(t);
        } else {
            self.buf[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Uniform random sample (with replacement).
    pub fn sample<'a>(&'a self, n: usize, rng: &mut SplitMix64) -> Vec<&'a Transition> {
        (0..n).map(|_| &self.buf[rng.next_bounded(self.buf.len() as u64) as usize]).collect()
    }
}

/// DQN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DqnConfig {
    /// Training episodes.
    pub episodes: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Replay minibatch size (transitions per learning step).
    pub batch: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Initial exploration rate.
    pub eps_start: f64,
    /// Final exploration rate.
    pub eps_end: f64,
    /// Target-network sync interval (environment steps).
    pub target_sync: usize,
    /// Estimator learning rate.
    pub lr: f64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            episodes: 400,
            replay_capacity: 2000,
            batch: 8,
            gamma: 0.95,
            eps_start: 1.0,
            eps_end: 0.05,
            target_sync: 50,
            lr: 0.005,
        }
    }
}

/// A DQN agent bound to an estimator family.
pub struct DqnAgent {
    online: Box<dyn QNetwork>,
    target: Box<dyn QNetwork>,
    replay: ReplayBuffer,
    config: DqnConfig,
    rng: SplitMix64,
    steps: usize,
    /// Total reward of each training episode (the learning curve).
    pub episode_rewards: Vec<f64>,
}

impl DqnAgent {
    /// Creates an agent with freshly initialized online/target networks.
    pub fn new(kind: EstimatorKind, config: DqnConfig, seed: u64) -> Self {
        let mut online = kind.build(config.lr, derive_seed(seed, "online"));
        let mut target = kind.build(config.lr, derive_seed(seed, "target"));
        let params = online.export_params();
        target.load_params_from(&params);
        Self {
            online,
            target,
            replay: ReplayBuffer::new(config.replay_capacity),
            config,
            rng: SplitMix64::new(derive_seed(seed, "agent")),
            steps: 0,
            episode_rewards: Vec::new(),
        }
    }

    fn epsilon(&self, episode: usize, total: usize) -> f64 {
        let t = episode as f64 / total.max(1) as f64;
        self.config.eps_start + (self.config.eps_end - self.config.eps_start) * t.min(1.0)
    }

    fn act(&mut self, obs: &[f64], eps: f64) -> usize {
        if self.rng.next_f64() < eps {
            self.rng.next_bounded(N_ACTIONS as u64) as usize
        } else {
            treu_math::vector::argmax(&self.online.q_values(obs)).unwrap_or(0)
        }
    }

    fn learn(&mut self) {
        if self.replay.len() < self.config.batch {
            return;
        }
        // Sample indices first (immutable borrow), then update.
        let picks: Vec<Transition> =
            self.replay.sample(self.config.batch, &mut self.rng).into_iter().cloned().collect();
        for t in picks {
            let target = if t.done {
                t.reward
            } else {
                let next_q = self.target.q_values(&t.next_obs);
                t.reward
                    + self.config.gamma * next_q.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            };
            self.online.update(&t.obs, t.action, target);
        }
    }

    /// Trains against the environment; returns the mean reward of the last
    /// 20% of episodes (the converged estimate).
    pub fn train(&mut self, env: &mut dyn Env) -> f64 {
        let total = self.config.episodes;
        for ep in 0..total {
            let eps = self.epsilon(ep, total);
            let mut obs = env.reset(&mut self.rng);
            let mut ep_reward = 0.0;
            for _ in 0..env.horizon() {
                let action = self.act(&obs, eps);
                let StepResult { obs: next, reward, done } = env.step(action, &mut self.rng);
                ep_reward += reward;
                self.replay.push(Transition {
                    obs: obs.clone(),
                    action,
                    reward,
                    next_obs: next.clone(),
                    done,
                });
                self.learn();
                self.steps += 1;
                if self.steps.is_multiple_of(self.config.target_sync) {
                    let params = self.online.export_params();
                    self.target.load_params_from(&params);
                }
                obs = next;
                if done {
                    break;
                }
            }
            self.episode_rewards.push(ep_reward);
        }
        let tail = (total / 5).max(1);
        let last: Vec<f64> = self.episode_rewards[total - tail..].to_vec();
        treu_math::stats::mean(&last)
    }

    /// Greedy evaluation over `episodes`, returning the mean total reward.
    pub fn evaluate(&mut self, env: &mut dyn Env, episodes: usize) -> f64 {
        let mut total = 0.0;
        for _ in 0..episodes {
            let mut obs = env.reset(&mut self.rng);
            for _ in 0..env.horizon() {
                let action = self.act(&obs, 0.0);
                let r = env.step(action, &mut self.rng);
                total += r.reward;
                obs = r.obs;
                if r.done {
                    break;
                }
            }
        }
        total / episodes.max(1) as f64
    }
}

/// A uniformly random policy's mean reward — the floor any trained agent
/// must clear.
pub fn random_policy_reward(env: &mut dyn Env, episodes: usize, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let mut total = 0.0;
    for _ in 0..episodes {
        let mut _obs = env.reset(&mut rng);
        for _ in 0..env.horizon() {
            let r = env.step(rng.next_bounded(N_ACTIONS as u64) as usize, &mut rng);
            total += r.reward;
            if r.done {
                break;
            }
        }
    }
    total / episodes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvKind;

    #[test]
    fn replay_buffer_evicts_oldest() {
        let mut rb = ReplayBuffer::new(2);
        let t = |r: f64| Transition {
            obs: vec![],
            action: 0,
            reward: r,
            next_obs: vec![],
            done: false,
        };
        rb.push(t(1.0));
        rb.push(t(2.0));
        rb.push(t(3.0));
        assert_eq!(rb.len(), 2);
        let rewards: Vec<f64> = rb.buf.iter().map(|x| x.reward).collect();
        assert!(rewards.contains(&3.0));
        assert!(!rewards.contains(&1.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        ReplayBuffer::new(0);
    }

    #[test]
    fn dqn_learns_catch() {
        // Catch is the easiest env: a trained agent must clearly beat random.
        let mut env = EnvKind::Catch.build();
        let cfg = DqnConfig { episodes: 400, ..DqnConfig::default() };
        let mut agent = DqnAgent::new(EstimatorKind::Conv, cfg, 1);
        agent.train(env.as_mut());
        let trained = agent.evaluate(env.as_mut(), 40);
        let random = random_policy_reward(env.as_mut(), 40, 2);
        assert!(trained > random + 3.0, "trained {trained} must beat random {random}");
    }

    #[test]
    fn epsilon_schedule_decays() {
        let agent = DqnAgent::new(EstimatorKind::Conv, DqnConfig::default(), 3);
        assert!(agent.epsilon(0, 100) > agent.epsilon(50, 100));
        assert!((agent.epsilon(100, 100) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut env = EnvKind::Catch.build();
            let cfg = DqnConfig { episodes: 30, ..DqnConfig::default() };
            let mut agent = DqnAgent::new(EstimatorKind::Conv, cfg, 5);
            agent.train(env.as_mut());
            agent.episode_rewards.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn learning_curve_has_episode_per_entry() {
        let mut env = EnvKind::Frogger.build();
        let cfg = DqnConfig { episodes: 12, ..DqnConfig::default() };
        let mut agent = DqnAgent::new(EstimatorKind::Attention, cfg, 6);
        agent.train(env.as_mut());
        assert_eq!(agent.episode_rewards.len(), 12);
    }
}
