//! Classical location estimators.
//!
//! These are the baselines the spectral filter is measured against: the
//! sample mean (zero robustness), coordinate-wise median and trimmed mean
//! (robust per coordinate but with `ℓ2` error growing like `ε√d`), and the
//! geometric median (rotation-equivariant, still `Θ(ε√d)` in the worst
//! case).

use treu_math::stats;
use treu_math::{vector, Matrix};

/// Sample mean of row-points.
pub fn sample_mean(data: &Matrix) -> Vec<f64> {
    stats::column_means(data)
}

/// Coordinate-wise median.
pub fn coordinate_median(data: &Matrix) -> Vec<f64> {
    let (_, d) = data.shape();
    (0..d).map(|j| stats::median(&data.col(j))).collect()
}

/// Coordinate-wise `alpha`-trimmed mean: drop the `alpha` fraction from
/// each tail of every coordinate before averaging.
///
/// # Panics
///
/// Panics if `alpha` is not in `[0, 0.5)`.
pub fn trimmed_mean(data: &Matrix, alpha: f64) -> Vec<f64> {
    assert!((0.0..0.5).contains(&alpha), "trim fraction must be in [0, 0.5)");
    let (n, d) = data.shape();
    let k = ((n as f64) * alpha).floor() as usize;
    (0..d)
        .map(|j| {
            let mut col = data.col(j);
            col.sort_by(|a, b| a.partial_cmp(b).expect("NaN in data"));
            let kept = &col[k..n - k];
            stats::mean(kept)
        })
        .collect()
}

/// Geometric median via Weiszfeld's algorithm.
///
/// Iterates `y ← Σ x_i / ||x_i - y|| / Σ 1 / ||x_i - y||` from the
/// coordinate-median start until the step is below `tol` or `max_iters`.
/// Points coincident with the current iterate are handled by the standard
/// ε-regularization.
pub fn geometric_median(data: &Matrix, tol: f64, max_iters: usize) -> Vec<f64> {
    let (n, d) = data.shape();
    let mut y = coordinate_median(data);
    if n == 1 {
        return data.row(0).to_vec();
    }
    for _ in 0..max_iters {
        let mut num = vec![0.0; d];
        let mut den = 0.0;
        for i in 0..n {
            let dist = vector::distance(data.row(i), &y).max(1e-12);
            let w = 1.0 / dist;
            vector::axpy(w, data.row(i), &mut num);
            den += w;
        }
        vector::scale(1.0 / den, &mut num);
        let step = vector::distance(&num, &y);
        y = num;
        if step < tol {
            break;
        }
    }
    y
}

/// Median-of-means: partition the points into `k` blocks, average each
/// block, and take the coordinate-wise median of the block means. The
/// classical heavy-tail workhorse: block means concentrate, and the median
/// over blocks tolerates up to `(k-1)/2` poisoned blocks — i.e. fewer than
/// `k/2` gross outliers in total. Against an ε-*fraction* adversary every
/// block is poisoned and MoM inherits the bias; that failure is exactly
/// what motivates the spectral [`crate::filter`].
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn median_of_means(data: &Matrix, k: usize) -> Vec<f64> {
    let (n, d) = data.shape();
    assert!(k > 0 && k <= n, "median_of_means: bad block count");
    let mut block_means = Matrix::zeros(k, d);
    let mut counts = vec![0.0f64; k];
    for i in 0..n {
        let b = i % k;
        counts[b] += 1.0;
        let row = data.row(i).to_vec();
        vector::axpy(1.0, &row, block_means.row_mut(b));
    }
    for b in 0..k {
        vector::scale(1.0 / counts[b], block_means.row_mut(b));
    }
    coordinate_median(&block_means)
}

/// Oracle estimator: the mean of the true inliers. Not available to any
/// real algorithm; used only as the error floor in experiment plots.
pub fn oracle_mean(data: &Matrix, is_inlier: &[bool]) -> Vec<f64> {
    let (n, d) = data.shape();
    assert_eq!(is_inlier.len(), n, "oracle: flag length mismatch");
    let mut mean = vec![0.0; d];
    let mut count = 0.0;
    for i in 0..n {
        if is_inlier[i] {
            vector::axpy(1.0, data.row(i), &mut mean);
            count += 1.0;
        }
    }
    if count > 0.0 {
        vector::scale(1.0 / count, &mut mean);
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contamination::{ContaminatedSample, Contamination};
    use treu_math::rng::SplitMix64;

    fn sample(strategy: Contamination, eps: f64, d: usize, seed: u64) -> ContaminatedSample {
        let mut rng = SplitMix64::new(seed);
        ContaminatedSample::generate(1000, d, eps, strategy, &mut rng)
    }

    #[test]
    fn mean_breaks_under_far_cluster() {
        let s = sample(Contamination::FarCluster, 0.1, 10, 1);
        let err = s.error(&sample_mean(&s.data));
        assert!(err > 5.0, "far cluster must wreck the mean; err {err}");
    }

    #[test]
    fn median_survives_far_cluster() {
        let s = sample(Contamination::FarCluster, 0.1, 10, 2);
        let err = s.error(&coordinate_median(&s.data));
        assert!(err < 1.0, "median err {err}");
    }

    #[test]
    fn trimmed_mean_survives_far_cluster() {
        let s = sample(Contamination::FarCluster, 0.1, 10, 3);
        let err = s.error(&trimmed_mean(&s.data, 0.15));
        assert!(err < 1.0, "trimmed err {err}");
    }

    #[test]
    fn trimmed_mean_with_zero_alpha_is_mean() {
        let s = sample(Contamination::HeavyNoise, 0.05, 4, 4);
        let a = trimmed_mean(&s.data, 0.0);
        let b = sample_mean(&s.data);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn trimmed_mean_rejects_half() {
        trimmed_mean(&Matrix::zeros(4, 2), 0.5);
    }

    #[test]
    fn geometric_median_on_clean_data_is_accurate() {
        let s = sample(Contamination::FarCluster, 0.0, 8, 5);
        let err = s.error(&geometric_median(&s.data, 1e-9, 200));
        assert!(err < 0.2, "geomedian err {err}");
    }

    #[test]
    fn geometric_median_resists_far_cluster() {
        let s = sample(Contamination::FarCluster, 0.15, 8, 6);
        let err = s.error(&geometric_median(&s.data, 1e-9, 200));
        assert!(err < 1.2, "geomedian err {err}");
    }

    #[test]
    fn geometric_median_of_single_point() {
        let m = Matrix::from_rows(&[&[3.0, -1.0]]);
        assert_eq!(geometric_median(&m, 1e-9, 10), vec![3.0, -1.0]);
    }

    #[test]
    fn geometric_median_minimizes_distance_sum_locally() {
        let s = sample(Contamination::HeavyNoise, 0.1, 5, 7);
        let gm = geometric_median(&s.data, 1e-10, 500);
        let cost = |y: &[f64]| -> f64 {
            (0..s.n()).map(|i| treu_math::vector::distance(s.data.row(i), y)).sum()
        };
        let base = cost(&gm);
        for j in 0..5 {
            for delta in [-0.01, 0.01] {
                let mut y = gm.clone();
                y[j] += delta;
                assert!(cost(&y) >= base - 1e-6, "perturbation improved Weiszfeld optimum");
            }
        }
    }

    #[test]
    fn median_of_means_survives_few_gross_outliers() {
        // MoM's guarantee is against *fewer than k/2 outliers in total*
        // (its classical heavy-tail regime), not against an ε-fraction
        // spread across every block: with n=1000 and ε=0.004 there are 4
        // outliers and k=9 blocks, so at most 4 blocks are poisoned and
        // the block median holds — while the plain mean is wrecked.
        let mut rng = SplitMix64::new(9);
        let s = ContaminatedSample::generate(1000, 10, 0.004, Contamination::FarCluster, &mut rng);
        let mom_err = s.error(&median_of_means(&s.data, 9));
        let mean_err = s.error(&sample_mean(&s.data));
        assert!(mom_err < 0.5, "median-of-means err {mom_err}");
        assert!(mean_err > mom_err, "mean {mean_err} vs mom {mom_err}");
    }

    #[test]
    fn median_of_means_fails_under_spread_contamination() {
        // The complementary fact (why the spectral filter exists): an
        // ε-fraction adversary poisons *every* block, and MoM inherits the
        // full bias — documented as a negative test.
        let s = sample(Contamination::FarCluster, 0.1, 10, 9);
        let err = s.error(&median_of_means(&s.data, 9));
        assert!(err > 2.0, "spread contamination should defeat MoM; err {err}");
    }

    #[test]
    fn median_of_means_with_one_block_is_the_mean() {
        let s = sample(Contamination::HeavyNoise, 0.05, 4, 10);
        let a = median_of_means(&s.data, 1);
        let b = sample_mean(&s.data);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "bad block count")]
    fn median_of_means_rejects_zero_blocks() {
        median_of_means(&Matrix::zeros(4, 2), 0);
    }

    #[test]
    fn oracle_is_best_on_subtle_shift() {
        let s = sample(Contamination::SubtleShift, 0.1, 32, 8);
        let oracle = s.error(&oracle_mean(&s.data, &s.is_inlier));
        let median = s.error(&coordinate_median(&s.data));
        assert!(oracle < median, "oracle {oracle} vs median {median}");
        assert!(oracle < 0.3);
    }
}
