//! Huber-contamination data model.
//!
//! A sample of `n` points in `R^d`: `(1-ε)n` drawn from `N(mu, I)` and `εn`
//! placed by an adversary. The four adversaries below span the regimes the
//! robust-statistics literature evaluates on: an obvious far cluster (easy
//! for naive outlier removal), a *subtle shift* cluster placed just a few
//! sigmas out along one direction (the case that separates spectral methods
//! from coordinate-wise ones), heavy-tailed noise, and a sign-coordinated
//! product attack.

use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// Adversarial contamination strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contamination {
    /// All outliers at `mu + R * u` for a fixed far radius `R = 100` along
    /// a random unit direction `u` — blatant, easily filtered.
    FarCluster,
    /// Outliers at `mu + c * u` with `c ≈ 3`: individually plausible
    /// points that collectively bias the mean along `u`. The hard case.
    SubtleShift,
    /// Outliers from `N(mu, 100 I)` — heavy, isotropic noise.
    HeavyNoise,
    /// Outliers with every coordinate `mu_j + 3 * s_j` for random signs
    /// `s_j` — large in `ℓ2` but coordinate-wise only 3σ.
    SignProduct,
}

impl Contamination {
    /// All strategies, for sweeps.
    pub fn all() -> [Contamination; 4] {
        [
            Contamination::FarCluster,
            Contamination::SubtleShift,
            Contamination::HeavyNoise,
            Contamination::SignProduct,
        ]
    }

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Contamination::FarCluster => "far_cluster",
            Contamination::SubtleShift => "subtle_shift",
            Contamination::HeavyNoise => "heavy_noise",
            Contamination::SignProduct => "sign_product",
        }
    }
}

/// A generated contaminated sample with ground truth attached.
#[derive(Debug, Clone)]
pub struct ContaminatedSample {
    /// The data, one point per row (`n x d`), clean and adversarial rows
    /// interleaved deterministically.
    pub data: Matrix,
    /// Ground-truth mean.
    pub true_mean: Vec<f64>,
    /// Whether each row is an inlier (for oracle diagnostics only; no
    /// estimator may read this).
    pub is_inlier: Vec<bool>,
    /// Contamination fraction actually used.
    pub epsilon: f64,
}

impl ContaminatedSample {
    /// Generates a contaminated sample.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 0.5)` or `n == 0` or `d == 0`.
    pub fn generate(
        n: usize,
        d: usize,
        epsilon: f64,
        strategy: Contamination,
        rng: &mut SplitMix64,
    ) -> Self {
        assert!(n > 0 && d > 0, "empty sample requested");
        assert!((0.0..0.5).contains(&epsilon), "epsilon must be in [0, 0.5)");
        // Ground-truth mean: deterministic draw so it is not at the origin
        // (estimators that silently return zero would otherwise look good).
        let true_mean: Vec<f64> = (0..d).map(|_| rng.next_gaussian() * 2.0).collect();
        let n_bad = ((n as f64) * epsilon).floor() as usize;

        // Attack direction (unit vector).
        let mut dir: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
        treu_math::vector::normalize(&mut dir);
        // Random signs for the sign-product attack.
        let signs: Vec<f64> =
            (0..d).map(|_| if rng.next_f64() < 0.5 { -1.0 } else { 1.0 }).collect();

        let mut data = Matrix::zeros(n, d);
        let mut is_inlier = vec![true; n];
        // Deterministic interleaving: outliers occupy every ⌊n/n_bad⌋-th slot.
        let stride = n.checked_div(n_bad).unwrap_or(n + 1);
        let mut placed_bad = 0usize;
        for i in 0..n {
            let make_bad = placed_bad < n_bad && i % stride == stride - 1;
            let row = data.row_mut(i);
            if make_bad {
                placed_bad += 1;
                is_inlier[i] = false;
                match strategy {
                    Contamination::FarCluster => {
                        for (j, v) in row.iter_mut().enumerate() {
                            *v = true_mean[j] + 100.0 * dir[j] + rng.next_gaussian() * 0.1;
                        }
                    }
                    Contamination::SubtleShift => {
                        for (j, v) in row.iter_mut().enumerate() {
                            *v = true_mean[j]
                                + 3.0 * dir[j] * (d as f64).sqrt()
                                + rng.next_gaussian() * 0.2;
                        }
                    }
                    Contamination::HeavyNoise => {
                        for (j, v) in row.iter_mut().enumerate() {
                            *v = true_mean[j] + rng.next_gaussian() * 10.0;
                        }
                    }
                    Contamination::SignProduct => {
                        for (j, v) in row.iter_mut().enumerate() {
                            *v = true_mean[j] + 3.0 * signs[j] + rng.next_gaussian() * 0.2;
                        }
                    }
                }
            } else {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = true_mean[j] + rng.next_gaussian();
                }
            }
        }
        Self { data, true_mean, is_inlier, epsilon: n_bad as f64 / n as f64 }
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.data.rows()
    }

    /// Dimension.
    pub fn d(&self) -> usize {
        self.data.cols()
    }

    /// `ℓ2` distance of an estimate from the ground-truth mean.
    pub fn error(&self, estimate: &[f64]) -> f64 {
        treu_math::vector::distance(estimate, &self.true_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_fraction_is_close_to_epsilon() {
        let mut rng = SplitMix64::new(1);
        let s = ContaminatedSample::generate(500, 10, 0.1, Contamination::FarCluster, &mut rng);
        let bad = s.is_inlier.iter().filter(|&&b| !b).count();
        assert_eq!(bad, 50);
        assert!((s.epsilon - 0.1).abs() < 1e-12);
    }

    #[test]
    fn epsilon_zero_is_all_inliers() {
        let mut rng = SplitMix64::new(2);
        let s = ContaminatedSample::generate(100, 5, 0.0, Contamination::HeavyNoise, &mut rng);
        assert!(s.is_inlier.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn epsilon_half_rejected() {
        let mut rng = SplitMix64::new(3);
        ContaminatedSample::generate(10, 2, 0.5, Contamination::FarCluster, &mut rng);
    }

    #[test]
    fn inlier_mean_is_near_truth() {
        let mut rng = SplitMix64::new(4);
        let s = ContaminatedSample::generate(2000, 8, 0.1, Contamination::SubtleShift, &mut rng);
        let mut mean = vec![0.0; 8];
        let mut n_in = 0.0;
        for i in 0..s.n() {
            if s.is_inlier[i] {
                treu_math::vector::axpy(1.0, s.data.row(i), &mut mean);
                n_in += 1.0;
            }
        }
        treu_math::vector::scale(1.0 / n_in, &mut mean);
        assert!(s.error(&mean) < 0.15, "inlier mean error {}", s.error(&mean));
    }

    #[test]
    fn far_cluster_outliers_are_far() {
        let mut rng = SplitMix64::new(5);
        let s = ContaminatedSample::generate(200, 6, 0.1, Contamination::FarCluster, &mut rng);
        for i in 0..s.n() {
            let dist = s.error(s.data.row(i));
            if s.is_inlier[i] {
                assert!(dist < 15.0);
            } else {
                assert!(dist > 50.0, "outlier {i} at distance {dist}");
            }
        }
    }

    #[test]
    fn subtle_outliers_bias_the_raw_mean() {
        let mut rng = SplitMix64::new(6);
        let s = ContaminatedSample::generate(2000, 32, 0.1, Contamination::SubtleShift, &mut rng);
        let raw = treu_math::stats::column_means(&s.data);
        // Bias should be roughly ε * 3 * sqrt(d) ≈ 1.7.
        let err = s.error(&raw);
        assert!(err > 0.8, "subtle shift should bias the mean; err {err}");
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = SplitMix64::new(seed);
            ContaminatedSample::generate(50, 4, 0.2, Contamination::SignProduct, &mut rng).data
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn strategy_names_distinct() {
        let names: std::collections::BTreeSet<&str> =
            Contamination::all().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
