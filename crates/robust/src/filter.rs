//! The iterative spectral filter for robust mean estimation.
//!
//! The algorithm (Diakonikolas, Kane, et al. lineage) exploits a structural
//! fact: if an ε-fraction of points shifts the empirical mean by `δ`, the
//! empirical covariance must have an eigenvalue of at least
//! `1 + δ²(1-ε)/ε` — contamination large enough to matter is *spectrally
//! visible*. The filter therefore loops:
//!
//! 1. compute the empirical mean and covariance of the surviving points;
//! 2. find the top eigenpair (power iteration — this is the "main
//!    computational bottleneck ... in linear algebra" the paper mentions;
//!    the full Jacobi SVD in `treu-math` is available but O(d³) per sweep);
//! 3. if the top eigenvalue is below `1 + threshold`, stop and return the
//!    mean;
//! 4. otherwise project all points on the top eigenvector and remove the
//!    most extreme tail, then repeat.
//!
//! Removal is deterministic (largest projection scores first), which keeps
//! the whole estimator reproducible under the TREU harness.

use treu_math::decomp::power_iteration;
use treu_math::stats;
use treu_math::{vector, Matrix};

/// Tuning parameters for the spectral filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterParams {
    /// Contamination budget the filter should assume (its ε).
    pub epsilon: f64,
    /// Stop when the top covariance eigenvalue is below
    /// `1 + threshold_multiplier * epsilon * ln(1/epsilon)`.
    pub threshold_multiplier: f64,
    /// Fraction of surviving points removed per filtering round (of the
    /// extreme tail along the top eigenvector).
    pub removal_fraction: f64,
    /// Hard cap on filtering rounds.
    pub max_rounds: usize,
    /// Power-iteration seed.
    pub seed: u64,
}

impl Default for FilterParams {
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            threshold_multiplier: 6.0,
            removal_fraction: 0.02,
            max_rounds: 60,
            seed: 0x5EED,
        }
    }
}

/// Result of a spectral-filter run.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterOutcome {
    /// The robust mean estimate.
    pub mean: Vec<f64>,
    /// Filtering rounds executed.
    pub rounds: usize,
    /// Points remaining when the filter stopped.
    pub survivors: usize,
    /// Top covariance eigenvalue at termination.
    pub final_eigenvalue: f64,
}

/// Runs the iterative spectral filter on row-point data.
///
/// # Panics
///
/// Panics if the data is empty or `epsilon` is not in `(0, 0.5)`.
pub fn spectral_filter(data: &Matrix, params: FilterParams) -> FilterOutcome {
    let (n, d) = data.shape();
    assert!(n > 0 && d > 0, "spectral_filter: empty data");
    assert!(
        params.epsilon > 0.0 && params.epsilon < 0.5,
        "spectral_filter: epsilon must be in (0, 0.5)"
    );
    let threshold =
        1.0 + params.threshold_multiplier * params.epsilon * (1.0 / params.epsilon).ln();
    // Never remove more than ~2ε of the data in total: the adversary only
    // controls ε, and unlimited removal would eventually bite into inliers.
    let min_survivors = ((1.0 - 2.0 * params.epsilon) * n as f64).ceil() as usize;

    let mut alive: Vec<usize> = (0..n).collect();
    let mut rounds = 0;
    let mut final_eigenvalue;

    loop {
        // Mean and covariance of the survivors.
        let mut sub = Matrix::zeros(alive.len(), d);
        for (r, &i) in alive.iter().enumerate() {
            sub.row_mut(r).copy_from_slice(data.row(i));
        }
        let mu = stats::column_means(&sub);
        let cov = stats::covariance_matrix(&sub);
        let (lambda, v) = power_iteration(&cov, params.seed ^ rounds as u64, 1e-10, 2000);
        final_eigenvalue = lambda;

        if lambda <= threshold || rounds >= params.max_rounds || alive.len() <= min_survivors {
            return FilterOutcome { mean: mu, rounds, survivors: alive.len(), final_eigenvalue };
        }

        // Score by squared projection of the centered point on v; drop the
        // largest tail.
        let mut scored: Vec<(f64, usize)> = alive
            .iter()
            .map(|&i| {
                let x = data.row(i);
                let mut proj = 0.0;
                for j in 0..d {
                    proj += (x[j] - mu[j]) * v[j];
                }
                (proj * proj, i)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN score"));
        let drop = ((alive.len() as f64) * params.removal_fraction).ceil() as usize;
        let drop = drop.max(1).min(alive.len() - min_survivors.min(alive.len() - 1));
        let removed: std::collections::BTreeSet<usize> =
            scored.iter().take(drop).map(|&(_, i)| i).collect();
        alive.retain(|i| !removed.contains(i));
        rounds += 1;

        if alive.is_empty() {
            // Pathological parameters; return what we have.
            return FilterOutcome {
                mean: vector::sub(&mu, &vec![0.0; d]),
                rounds,
                survivors: 0,
                final_eigenvalue,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contamination::{ContaminatedSample, Contamination};
    use crate::estimators;
    use treu_math::rng::SplitMix64;

    fn sample(
        strategy: Contamination,
        eps: f64,
        n: usize,
        d: usize,
        seed: u64,
    ) -> ContaminatedSample {
        let mut rng = SplitMix64::new(seed);
        ContaminatedSample::generate(n, d, eps, strategy, &mut rng)
    }

    fn params(eps: f64) -> FilterParams {
        FilterParams { epsilon: eps, ..FilterParams::default() }
    }

    #[test]
    fn clean_data_terminates_quickly_with_accurate_mean() {
        let s = sample(Contamination::FarCluster, 0.0, 800, 16, 1);
        let out = spectral_filter(&s.data, params(0.1));
        assert!(s.error(&out.mean) < 0.3, "err {}", s.error(&out.mean));
        assert!(out.rounds <= 3, "clean data should not need filtering; {} rounds", out.rounds);
        assert!(out.survivors > 0 && out.survivors <= 800); // survivors recorded
    }

    #[test]
    fn filter_removes_far_cluster() {
        let s = sample(Contamination::FarCluster, 0.1, 800, 16, 2);
        let out = spectral_filter(&s.data, params(0.1));
        let err = s.error(&out.mean);
        assert!(err < 0.5, "filter err {err}");
        assert!(out.rounds > 0, "contaminated data must trigger filtering");
        assert!(out.survivors < 800);
    }

    #[test]
    fn filter_beats_coordinate_median_on_subtle_shift_high_d() {
        // The headline separation: at d=128 the coordinate median error
        // grows with sqrt(d) while the spectral filter stays flat.
        let s = sample(Contamination::SubtleShift, 0.1, 1200, 128, 3);
        let filter_err = s.error(&spectral_filter(&s.data, params(0.1)).mean);
        let median_err = s.error(&estimators::coordinate_median(&s.data));
        assert!(
            filter_err < median_err,
            "filter {filter_err} must beat median {median_err} in high dimension"
        );
    }

    #[test]
    fn filter_is_near_oracle_on_far_cluster() {
        let s = sample(Contamination::FarCluster, 0.15, 1000, 32, 4);
        let filter_err = s.error(&spectral_filter(&s.data, params(0.15)).mean);
        let oracle_err = s.error(&estimators::oracle_mean(&s.data, &s.is_inlier));
        assert!(filter_err < oracle_err + 0.5, "filter {filter_err} vs oracle {oracle_err}");
    }

    #[test]
    fn filter_is_deterministic() {
        let s = sample(Contamination::SignProduct, 0.1, 400, 24, 5);
        let a = spectral_filter(&s.data, params(0.1));
        let b = spectral_filter(&s.data, params(0.1));
        assert_eq!(a, b);
    }

    #[test]
    fn removal_is_bounded() {
        let s = sample(Contamination::HeavyNoise, 0.1, 500, 16, 6);
        let out = spectral_filter(&s.data, params(0.1));
        // Never removes more than ~2 epsilon of the data.
        assert!(out.survivors >= ((1.0 - 2.0 * 0.1) * 500.0) as usize);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn zero_epsilon_params_rejected() {
        let s = sample(Contamination::FarCluster, 0.0, 50, 4, 7);
        spectral_filter(&s.data, params(0.0));
    }

    #[test]
    fn final_eigenvalue_is_reported_below_threshold_on_success() {
        let s = sample(Contamination::FarCluster, 0.1, 600, 8, 8);
        let p = params(0.1);
        let out = spectral_filter(&s.data, p);
        if out.rounds < p.max_rounds {
            let threshold = 1.0 + p.threshold_multiplier * 0.1 * (1.0f64 / 0.1).ln();
            assert!(out.final_eigenvalue <= threshold + 1e-9);
        }
    }
}
