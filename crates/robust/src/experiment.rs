//! Harnessed experiment E2.10: the ε-sweep and dimension-sweep that the
//! robust-statistics literature (and the student project reproducing it)
//! reports.
//!
//! Per configuration the experiment records the `ℓ2` estimation error of:
//! sample mean, coordinate median, trimmed mean, geometric median, the
//! spectral filter, and the inlier oracle. Parallelism: the trials of a
//! sweep point run across workers via the deterministic
//! [`treu_core::exec::Executor`] — the "repetition of randomized
//! algorithms" bottleneck the paper names, with trial order (and therefore
//! every averaged error) independent of the thread count.

use crate::contamination::{ContaminatedSample, Contamination};
use crate::estimators;
use crate::filter::{spectral_filter, FilterParams};
use treu_core::exec::Executor;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::{derive_seed, SplitMix64};

/// Mean error of each estimator over `trials` independent samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepPoint {
    /// Sample-mean error.
    pub mean: f64,
    /// Coordinate-median error.
    pub median: f64,
    /// Trimmed-mean error.
    pub trimmed: f64,
    /// Geometric-median error.
    pub geomedian: f64,
    /// Median-of-means error (9 blocks).
    pub mom: f64,
    /// Spectral-filter error.
    pub filter: f64,
    /// Inlier-oracle error (the floor).
    pub oracle: f64,
}

/// Runs all estimators on `trials` independent samples and averages errors.
pub fn sweep_point(
    n: usize,
    d: usize,
    epsilon: f64,
    strategy: Contamination,
    trials: usize,
    threads: usize,
    seed: u64,
) -> SweepPoint {
    let errs: Vec<SweepPoint> = Executor::new(threads).map_indexed(trials, |t| {
        let mut rng = SplitMix64::new(derive_seed(seed, &format!("trial{t}")));
        let s = ContaminatedSample::generate(n, d, epsilon, strategy, &mut rng);
        let filt = if epsilon > 0.0 {
            spectral_filter(&s.data, FilterParams { epsilon, ..FilterParams::default() }).mean
        } else {
            estimators::sample_mean(&s.data)
        };
        SweepPoint {
            mean: s.error(&estimators::sample_mean(&s.data)),
            median: s.error(&estimators::coordinate_median(&s.data)),
            trimmed: s.error(&estimators::trimmed_mean(&s.data, (epsilon * 1.5).min(0.49))),
            geomedian: s.error(&estimators::geometric_median(&s.data, 1e-8, 200)),
            mom: s.error(&estimators::median_of_means(&s.data, 9)),
            filter: s.error(&filt),
            oracle: s.error(&estimators::oracle_mean(&s.data, &s.is_inlier)),
        }
    });
    let k = errs.len().max(1) as f64;
    let mut acc = SweepPoint::default();
    for e in errs {
        acc.mean += e.mean / k;
        acc.median += e.median / k;
        acc.trimmed += e.trimmed / k;
        acc.geomedian += e.geomedian / k;
        acc.mom += e.mom / k;
        acc.filter += e.filter / k;
        acc.oracle += e.oracle / k;
    }
    acc
}

/// E2.10: error vs ε at fixed dimension, and error vs dimension at fixed ε,
/// on the subtle-shift adversary (the separating case).
pub struct RobustStatsExperiment;

impl Experiment for RobustStatsExperiment {
    fn name(&self) -> &str {
        "robust/mean-estimation"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("n", 800) as usize;
        let trials = ctx.int("trials", 4) as usize;
        let threads = ctx.int("threads", 4) as usize;
        let strategy = Contamination::SubtleShift;

        // ε sweep at d = 64.
        for eps_pct in [2i64, 5, 10, 15, 20] {
            let eps = eps_pct as f64 / 100.0;
            let p = sweep_point(
                n,
                64,
                eps,
                strategy,
                trials,
                threads,
                derive_seed(ctx.seed(), &format!("eps{eps_pct}")),
            );
            ctx.record(&format!("eps{eps_pct:02}_mean"), p.mean);
            ctx.record(&format!("eps{eps_pct:02}_median"), p.median);
            ctx.record(&format!("eps{eps_pct:02}_filter"), p.filter);
            ctx.record(&format!("eps{eps_pct:02}_oracle"), p.oracle);
        }

        // Dimension sweep at ε = 0.1.
        for d in [16usize, 64, 256] {
            let p = sweep_point(
                n,
                d,
                0.1,
                strategy,
                trials,
                threads,
                derive_seed(ctx.seed(), &format!("d{d}")),
            );
            ctx.record(&format!("d{d:03}_median"), p.median);
            ctx.record(&format!("d{d:03}_geomedian"), p.geomedian);
            ctx.record(&format!("d{d:03}_filter"), p.filter);
            ctx.record(&format!("d{d:03}_oracle"), p.oracle);
        }
    }
}

/// Ablation over the filter's stopping-threshold multiplier (a DESIGN.md
/// ablation target): too low never stops filtering inliers, too high stops
/// before the contamination is gone.
pub struct ThresholdAblation;

impl Experiment for ThresholdAblation {
    fn name(&self) -> &str {
        "robust/threshold-ablation"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("n", 800) as usize;
        let d = ctx.int("d", 64) as usize;
        let trials = ctx.int("trials", 3) as usize;
        for (tag, mult) in [("m01", 1.0), ("m03", 3.0), ("m06", 6.0), ("m12", 12.0), ("m24", 24.0)]
        {
            let mut err = 0.0;
            for t in 0..trials {
                let mut rng = SplitMix64::new(derive_seed(ctx.seed(), &format!("{tag}.{t}")));
                let s =
                    ContaminatedSample::generate(n, d, 0.1, Contamination::SubtleShift, &mut rng);
                let out = spectral_filter(
                    &s.data,
                    FilterParams {
                        epsilon: 0.1,
                        threshold_multiplier: mult,
                        ..FilterParams::default()
                    },
                );
                err += s.error(&out.mean);
            }
            ctx.record(&format!("{tag}_filter_err"), err / trials as f64);
        }
    }
}

/// Registers E2.10 and its ablation.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.10",
        "Section 2.10",
        "robust mean estimation: epsilon and dimension sweeps",
        Params::new().with_int("n", 800).with_int("trials", 4),
        Box::new(RobustStatsExperiment),
    );
    reg.register(
        "E2.10-abl",
        "Section 2.10",
        "spectral filter stopping-threshold ablation",
        Params::new().with_int("n", 800).with_int("d", 64).with_int("trials", 3),
        Box::new(ThresholdAblation),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::run_once;

    #[test]
    fn sweep_point_orders_estimators_sensibly() {
        let p = sweep_point(800, 64, 0.1, Contamination::SubtleShift, 3, 4, 11);
        // The oracle is a floor in expectation (per-trial the filter can
        // edge it out by luck), so compare against it with a margin.
        assert!(p.filter < p.oracle + 0.4, "filter {} near oracle {}", p.filter, p.oracle);
        assert!(p.filter < p.median, "filter beats median on subtle shift at d=64");
        assert!(p.oracle < 0.4);
    }

    #[test]
    fn experiment_shows_dimension_separation() {
        let rec = run_once(
            &RobustStatsExperiment,
            3,
            Params::new().with_int("n", 600).with_int("trials", 2),
        );
        // Median error grows with d; filter stays roughly flat.
        let m16 = rec.metric("d016_median").unwrap();
        let m256 = rec.metric("d256_median").unwrap();
        assert!(m256 > m16, "median error must grow with dimension: {m16} -> {m256}");
        let f16 = rec.metric("d016_filter").unwrap();
        let f256 = rec.metric("d256_filter").unwrap();
        assert!(f256 < m256, "filter ({f256}) must beat median ({m256}) at d=256 (f16={f16})");
    }

    #[test]
    fn threshold_ablation_has_interior_optimum_or_monotone_tail() {
        let rec = run_once(
            &ThresholdAblation,
            5,
            Params::new().with_int("n", 500).with_int("d", 48).with_int("trials", 2),
        );
        let e1 = rec.metric("m01_filter_err").unwrap();
        let e24 = rec.metric("m24_filter_err").unwrap();
        let e6 = rec.metric("m06_filter_err").unwrap();
        // The default (6) should not be worse than both extremes.
        assert!(
            e6 <= e1.max(e24) + 1e-9,
            "default multiplier should be competitive: {e1} {e6} {e24}"
        );
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let a = sweep_point(300, 16, 0.1, Contamination::FarCluster, 4, 1, 9);
        let b = sweep_point(300, 16, 0.1, Contamination::FarCluster, 4, 8, 9);
        assert_eq!(a, b, "parallelism must not change results");
    }
}
