//! `treu-robust` — robust high-dimensional statistics (paper §2.10).
//!
//! The project: "reproduce, extend, and make practical recent algorithmic
//! improvements for high-dimensional robust statistics. The recent
//! developments have been mostly theoretical with only simple
//! proof-of-concept code. ... The main computational bottlenecks were in
//! linear algebra (SVD), and repetition of randomized algorithms."
//!
//! This crate implements robust **mean estimation under Huber
//! contamination**: an adversary replaces an ε-fraction of `N(μ, I)`
//! samples with arbitrary points, and the task is to recover `μ`.
//!
//! * [`contamination`] — the data model: clean Gaussians plus four
//!   adversarial contamination strategies.
//! * [`estimators`] — classical estimators: sample mean (breaks), per-
//!   coordinate median and trimmed mean (error grows like `ε·√d`),
//!   geometric median (Weiszfeld's algorithm).
//! * [`filter`] — the modern **iterative spectral filter**: while the
//!   empirical covariance has an eigenvalue far above 1, project onto the
//!   top eigenvector and remove the most extreme points; its error is
//!   dimension-independent up to logs, which is exactly the crossover the
//!   E2.10 experiments display.
//! * [`experiment`] — the ε- and d-sweeps, harnessed.
//!
//! # Example
//!
//! ```
//! use treu_robust::{spectral_filter, ContaminatedSample, Contamination, FilterParams};
//! use treu_math::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(7);
//! let s = ContaminatedSample::generate(400, 16, 0.1, Contamination::FarCluster, &mut rng);
//! let naive_err = s.error(&treu_robust::estimators::sample_mean(&s.data));
//! let filt = spectral_filter(&s.data, FilterParams { epsilon: 0.1, ..FilterParams::default() });
//! assert!(s.error(&filt.mean) < naive_err / 5.0);
//! ```

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel arrays are the clearest idiom in
// this crate's numeric kernels; the zip-chain rewrite the lint suggests
// obscures them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod contamination;
pub mod estimators;
pub mod experiment;
pub mod filter;

pub use contamination::{ContaminatedSample, Contamination};
pub use filter::{spectral_filter, FilterOutcome, FilterParams};
