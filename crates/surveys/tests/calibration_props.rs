//! Property tests: the cohort calibration holds for *every* seed, not just
//! the documented one — reproducing the tables is a property of the
//! pipeline, not a lucky constant.

use proptest::prelude::*;
use treu_surveys::{analysis, paper, Cohort};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn table1_is_exact_for_every_seed(seed in any::<u64>()) {
        let cohort = Cohort::simulate(seed);
        for (row, (_, want)) in analysis::table1(&cohort).iter().zip(paper::GOALS.iter()) {
            prop_assert_eq!(row.accomplished, *want);
        }
    }

    #[test]
    fn likert_tables_within_rounding_for_every_seed(seed in any::<u64>()) {
        let cohort = Cohort::simulate(seed);
        for (row, (_, m, b)) in analysis::table2(&cohort).iter().zip(paper::SKILLS.iter()) {
            prop_assert!((row.apriori_mean - m).abs() <= 0.5 / 15.0 + 1e-12);
            prop_assert!((row.boost - b).abs() <= 0.5 / 15.0 + 0.5 / 10.0 + 1e-12);
        }
        for (row, (_, m, b)) in analysis::table3(&cohort).iter().zip(paper::KNOWLEDGE.iter()) {
            prop_assert!((row.apriori_mean - m).abs() <= 0.5 / 15.0 + 1e-12);
            prop_assert!((row.increase - b).abs() <= 0.5 / 15.0 + 0.5 / 10.0 + 1e-12);
        }
    }

    #[test]
    fn narrative_modes_hold_for_every_seed(seed in any::<u64>()) {
        let n = analysis::narrative(&Cohort::simulate(seed));
        prop_assert_eq!(n.phd_apriori_mode, paper::PHD_INTENT.1);
        prop_assert_eq!(n.phd_posthoc_mode, paper::PHD_INTENT.3);
        prop_assert_eq!(n.rec_reu, paper::RECOMMENDERS_REU);
        prop_assert_eq!(n.rec_home, paper::RECOMMENDERS_HOME);
        prop_assert_eq!(n.rec_outside, paper::RECOMMENDERS_OUTSIDE);
        prop_assert_eq!(n.goals_by_all, 5);
    }

    #[test]
    fn all_responses_stay_on_scale(seed in any::<u64>()) {
        let cohort = Cohort::simulate(seed);
        for r in cohort.apriori.iter().chain(&cohort.posthoc) {
            prop_assert!(r.confidence.iter().all(|&v| (1..=5).contains(&v)));
            prop_assert!(r.knowledge.iter().all(|&v| (1..=5).contains(&v)));
            prop_assert!((1..=5).contains(&r.phd_intent));
        }
    }

    #[test]
    fn admissions_always_fills_every_position(seed in any::<u64>()) {
        let (pool, offers) = treu_surveys::cohort::simulate_admissions(seed);
        prop_assert_eq!(pool.len(), paper::N_APPLICANTS);
        prop_assert_eq!(offers.len(), paper::N_POSITIONS);
        // Offers are distinct applicants.
        let distinct: std::collections::BTreeSet<usize> = offers.iter().copied().collect();
        prop_assert_eq!(distinct.len(), paper::N_POSITIONS);
    }
}
