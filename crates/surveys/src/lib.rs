//! `treu-surveys` — the paper's evaluation, reproduced end-to-end.
//!
//! The TREU paper evaluates its REU site with pre/post surveys; the
//! published artifact is three tables plus narrative statistics:
//!
//! * **Table 1** — of nine post hoc respondents, how many accomplished each
//!   of 19 student-set goals;
//! * **Table 2** — a priori confidence (Likert 1–5) in 18 research skills,
//!   plus the confidence boost attained;
//! * **Table 3** — self-reported knowledge in five topic areas, plus the
//!   increase;
//! * narrative — PhD intent (mean 3.2 → 3.6, mode 3 → 4), letter-of-
//!   recommendation counts, 85 applicants for 10 positions.
//!
//! The raw responses are not public (survey responses were anonymous), so
//! this crate is a **calibrated cohort simulator plus the real analysis
//! pipeline**: [`cohort`] draws individual-level responses whose marginals
//! hit the published values, and [`analysis`] computes the tables exactly
//! the way the paper's instructors did (means, modes, boosts, goal counts).
//! EXPERIMENTS.md records the paper-vs-measured deltas; they are zero for
//! count statistics and within rounding (±0.05) for Likert means.
//!
//! The separation matters for the reproduction claim: the analysis code
//! never sees the calibration targets, only the simulated raw responses —
//! reproducing a table is therefore a genuine end-to-end computation, not
//! an echo of constants.
//!
//! # Example
//!
//! ```
//! use treu_surveys::{analysis, paper, Cohort};
//!
//! let cohort = Cohort::simulate(2023);
//! let rows = analysis::table1(&cohort);
//! assert!(rows.iter().zip(paper::GOALS.iter()).all(|(r, (_, k))| r.accomplished == *k));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bias;
pub mod cohort;
pub mod experiments;
pub mod likert;
pub mod paper;

pub use analysis::{table1, table2, table3, Narrative};
pub use cohort::{Cohort, Respondent};
