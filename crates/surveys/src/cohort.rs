//! Calibrated cohort simulation.
//!
//! Survey responses in the paper were anonymous and the raw data is not
//! published, so reproduction works from a simulated cohort whose marginal
//! statistics are calibrated to the published values (DESIGN.md §2 records
//! this substitution). What *is* real is the pipeline: the simulator emits
//! individual-level responses, and the analysis in [`crate::analysis`]
//! aggregates them exactly as the REU instructors did, never touching the
//! calibration targets.

use crate::likert;
use crate::paper;
use treu_math::rng::{derive_seed, SplitMix64};

/// One survey respondent's answers.
///
/// A priori and post hoc cohorts are disjoint (responses were anonymous and
/// unlinked in the paper), so a respondent belongs to exactly one wave.
#[derive(Debug, Clone, PartialEq)]
pub struct Respondent {
    /// Respondent index within its wave.
    pub id: usize,
    /// Confidence ratings, one per Table 2 skill, 1–5.
    pub confidence: Vec<i64>,
    /// Knowledge ratings, one per Table 3 area, 1–5.
    pub knowledge: Vec<i64>,
    /// Intent to complete a PhD, 1–5.
    pub phd_intent: i64,
    /// Goal accomplishment flags (post hoc wave only; `None` for the one
    /// post hoc participant who skipped these items and for the a priori
    /// wave, where goals were free-text).
    pub goals: Option<Vec<bool>>,
    /// Potential recommenders met through the REU (post hoc only).
    pub recommenders_reu: Option<i64>,
    /// Potential recommenders at the home institution.
    pub recommenders_home: Option<i64>,
    /// Potential recommenders outside both.
    pub recommenders_outside: Option<i64>,
}

/// The full simulated survey data: both waves.
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    /// A priori wave (15 respondents in the paper).
    pub apriori: Vec<Respondent>,
    /// Post hoc wave (10 respondents; 9 answered the goal items).
    pub posthoc: Vec<Respondent>,
}

/// Draws `n` responses with a target mean *and* a target mode.
///
/// Starts from the all-`mode` vector and spreads the residual total across
/// a minimal number of entries, so the mode survives; positions are then
/// shuffled. Callers should keep `|mean - mode| * n` well below `n` for the
/// mode to be preservable (all paper targets satisfy this comfortably).
fn sample_with_mean_mode(rng: &mut SplitMix64, n: usize, mean: f64, mode: i64) -> Vec<i64> {
    let want =
        ((mean * n as f64).round() as i64).clamp(n as i64 * likert::MIN, n as i64 * likert::MAX);
    let mut xs = vec![mode; n];
    let mut delta = want - mode * n as i64;
    let dir = delta.signum();
    let mut i = 0usize;
    while delta != 0 && i < n {
        let room = if dir > 0 { likert::MAX - xs[i] } else { xs[i] - likert::MIN };
        // Cap per-entry movement at 2 so adjusted values spread over
        // several entries rather than piling on the scale endpoint.
        let step = room.min(delta.abs()).min(2);
        xs[i] += dir * step;
        delta -= dir * step;
        i += 1;
    }
    let perm = treu_math::rng::permutation(rng, n);
    perm.into_iter().map(|p| xs[p]).collect()
}

/// Draws `n` counts with a target mode and exact range `[lo, hi]`.
///
/// Used for the recommender narrative ("mode of 2 ... range 2–4").
///
/// # Panics
///
/// Panics if the constraints are unsatisfiable (`n < 3` with distinct
/// endpoints, mode outside the range, or `lo > hi`).
fn sample_with_mode_range(rng: &mut SplitMix64, n: usize, mode: i64, lo: i64, hi: i64) -> Vec<i64> {
    assert!(lo <= hi && (lo..=hi).contains(&mode), "inconsistent mode/range");
    let mut xs = Vec::with_capacity(n);
    if lo != mode {
        xs.push(lo);
    }
    if hi != mode {
        xs.push(hi);
    }
    assert!(xs.len() + 2 <= n, "n too small to realize mode and range");
    // One mid value (when available) for spread, distinct from the mode.
    if hi - lo >= 2 {
        let mid = if (lo + hi) / 2 == mode { mode + 1 } else { (lo + hi) / 2 };
        if (lo..=hi).contains(&mid) && mid != mode {
            xs.push(mid);
        }
    }
    while xs.len() < n {
        xs.push(mode);
    }
    let perm = treu_math::rng::permutation(rng, n);
    perm.into_iter().map(|p| xs[p]).collect()
}

/// Transposes per-item calibrated columns into per-respondent rows.
fn columns_to_rows(columns: &[Vec<i64>], n: usize) -> Vec<Vec<i64>> {
    (0..n).map(|r| columns.iter().map(|col| col[r]).collect()).collect()
}

impl Cohort {
    /// Simulates the full cohort from a master seed. Every wave, item and
    /// statistic derives its own RNG stream, so adding an item never
    /// perturbs the others.
    pub fn simulate(seed: u64) -> Self {
        let na = paper::N_APRIORI;
        let np = paper::N_POSTHOC;
        let ng = paper::N_GOAL_RESPONDENTS;

        // A priori confidence & knowledge: target the Table 2/3 a priori means.
        let conf_a: Vec<Vec<i64>> = paper::SKILLS
            .iter()
            .map(|(name, m, _)| {
                let mut r = SplitMix64::new(derive_seed(seed, &format!("apriori.conf.{name}")));
                likert::sample_with_mean(&mut r, na, *m)
            })
            .collect();
        let know_a: Vec<Vec<i64>> = paper::KNOWLEDGE
            .iter()
            .map(|(name, m, _)| {
                let mut r = SplitMix64::new(derive_seed(seed, &format!("apriori.know.{name}")));
                likert::sample_with_mean(&mut r, na, *m)
            })
            .collect();
        // Post hoc targets are a priori + boost.
        let conf_p: Vec<Vec<i64>> = paper::SKILLS
            .iter()
            .map(|(name, m, b)| {
                let mut r = SplitMix64::new(derive_seed(seed, &format!("posthoc.conf.{name}")));
                likert::sample_with_mean(&mut r, np, m + b)
            })
            .collect();
        let know_p: Vec<Vec<i64>> = paper::KNOWLEDGE
            .iter()
            .map(|(name, m, b)| {
                let mut r = SplitMix64::new(derive_seed(seed, &format!("posthoc.know.{name}")));
                likert::sample_with_mean(&mut r, np, m + b)
            })
            .collect();

        let (pa_mean, pa_mode, pp_mean, pp_mode) = paper::PHD_INTENT;
        let mut r_intent_a = SplitMix64::new(derive_seed(seed, "apriori.intent"));
        let intent_a = sample_with_mean_mode(&mut r_intent_a, na, pa_mean, pa_mode);
        let mut r_intent_p = SplitMix64::new(derive_seed(seed, "posthoc.intent"));
        let intent_p = sample_with_mean_mode(&mut r_intent_p, np, pp_mean, pp_mode);

        // Goal flags: exact column counts over the 9 goal respondents.
        let goal_cols: Vec<Vec<bool>> = paper::GOALS
            .iter()
            .map(|(name, k)| {
                let mut r = SplitMix64::new(derive_seed(seed, &format!("posthoc.goal.{name}")));
                likert::sample_with_count(&mut r, ng, *k)
            })
            .collect();

        let rec = |tag: &str, (mode, lo, hi): (i64, i64, i64)| {
            let mut r = SplitMix64::new(derive_seed(seed, tag));
            sample_with_mode_range(&mut r, np, mode, lo, hi)
        };
        let rec_reu = rec("posthoc.rec.reu", paper::RECOMMENDERS_REU);
        let rec_home = rec("posthoc.rec.home", paper::RECOMMENDERS_HOME);
        let rec_out = rec("posthoc.rec.outside", paper::RECOMMENDERS_OUTSIDE);

        let conf_a_rows = columns_to_rows(&conf_a, na);
        let know_a_rows = columns_to_rows(&know_a, na);
        let conf_p_rows = columns_to_rows(&conf_p, np);
        let know_p_rows = columns_to_rows(&know_p, np);

        let apriori = (0..na)
            .map(|id| Respondent {
                id,
                confidence: conf_a_rows[id].clone(),
                knowledge: know_a_rows[id].clone(),
                phd_intent: intent_a[id],
                goals: None,
                recommenders_reu: None,
                recommenders_home: None,
                recommenders_outside: None,
            })
            .collect();

        let posthoc = (0..np)
            .map(|id| Respondent {
                id,
                confidence: conf_p_rows[id].clone(),
                knowledge: know_p_rows[id].clone(),
                phd_intent: intent_p[id],
                // The first `ng` respondents answered the goal items; the
                // last one (the paper's incomplete participant) did not.
                goals: if id < ng {
                    Some(goal_cols.iter().map(|col| col[id]).collect())
                } else {
                    None
                },
                recommenders_reu: Some(rec_reu[id]),
                recommenders_home: Some(rec_home[id]),
                recommenders_outside: Some(rec_out[id]),
            })
            .collect();

        Self { apriori, posthoc }
    }

    /// Post hoc respondents who answered the goal items.
    pub fn goal_respondents(&self) -> Vec<&Respondent> {
        self.posthoc.iter().filter(|r| r.goals.is_some()).collect()
    }
}

/// A simulated applicant to the REU site (for the admissions narrative:
/// 85 applicants, 10 positions, offers "slanted toward institutions
/// without an established research program").
#[derive(Debug, Clone, PartialEq)]
pub struct Applicant {
    /// Applicant index.
    pub id: usize,
    /// Whether the home institution has an established research program.
    pub research_institution: bool,
    /// Academic year: 2 = sophomore, 3 = junior, 4 = senior.
    pub year: u8,
    /// Application strength in `[0, 1)`.
    pub strength: f64,
}

/// Simulates the applicant pool and applies the paper's offer policy:
/// rank by strength plus a bonus for non-research institutions, take the
/// top [`paper::N_POSITIONS`].
pub fn simulate_admissions(seed: u64) -> (Vec<Applicant>, Vec<usize>) {
    let mut rng = SplitMix64::new(derive_seed(seed, "admissions"));
    let pool: Vec<Applicant> = (0..paper::N_APPLICANTS)
        .map(|id| Applicant {
            id,
            research_institution: rng.next_f64() < 0.45,
            year: if rng.next_f64() < 0.45 {
                2
            } else if rng.next_f64() < 0.85 {
                3
            } else {
                4
            },
            strength: rng.next_f64(),
        })
        .collect();
    let mut ranked: Vec<usize> = (0..pool.len()).collect();
    let score = |a: &Applicant| a.strength + if a.research_institution { 0.0 } else { 0.35 };
    ranked.sort_by(|&i, &j| score(&pool[j]).partial_cmp(&score(&pool[i])).unwrap());
    let offers = ranked.into_iter().take(paper::N_POSITIONS).collect();
    (pool, offers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_has_paper_cardinalities() {
        let c = Cohort::simulate(1);
        assert_eq!(c.apriori.len(), paper::N_APRIORI);
        assert_eq!(c.posthoc.len(), paper::N_POSTHOC);
        assert_eq!(c.goal_respondents().len(), paper::N_GOAL_RESPONDENTS);
        assert!(c.apriori.iter().all(|r| r.goals.is_none()));
    }

    #[test]
    fn goal_columns_hit_published_counts_exactly() {
        let c = Cohort::simulate(2);
        let resp = c.goal_respondents();
        for (g, (_, want)) in paper::GOALS.iter().enumerate() {
            let got = resp.iter().filter(|r| r.goals.as_ref().unwrap()[g]).count();
            assert_eq!(got, *want, "goal {g}");
        }
    }

    #[test]
    fn simulation_is_deterministic_and_seed_sensitive() {
        assert_eq!(Cohort::simulate(5), Cohort::simulate(5));
        assert_ne!(Cohort::simulate(5), Cohort::simulate(6));
    }

    #[test]
    fn all_likert_values_on_scale() {
        let c = Cohort::simulate(3);
        for r in c.apriori.iter().chain(&c.posthoc) {
            assert!(r.confidence.iter().all(|&v| (1..=5).contains(&v)));
            assert!(r.knowledge.iter().all(|&v| (1..=5).contains(&v)));
            assert!((1..=5).contains(&r.phd_intent));
        }
    }

    #[test]
    fn mean_mode_sampler_hits_both_targets() {
        let mut rng = SplitMix64::new(7);
        let xs = sample_with_mean_mode(&mut rng, 15, 3.2, 3);
        assert!((likert::mean(&xs) - 3.2).abs() <= 0.5 / 15.0 + 1e-12);
        assert_eq!(likert::mode(&xs), Some(3));
        let ys = sample_with_mean_mode(&mut rng, 10, 3.6, 4);
        assert!((likert::mean(&ys) - 3.6).abs() <= 0.5 / 10.0 + 1e-12);
        assert_eq!(likert::mode(&ys), Some(4));
    }

    #[test]
    fn mode_range_sampler_hits_all_three_targets() {
        let mut rng = SplitMix64::new(8);
        for &(m, lo, hi) in &[(2i64, 2i64, 4i64), (2, 1, 5), (1, 0, 5)] {
            let xs = sample_with_mode_range(&mut rng, 10, m, lo, hi);
            assert_eq!(treu_math::stats::mode_int(&xs), Some(m));
            assert_eq!(*xs.iter().min().unwrap(), lo);
            assert_eq!(*xs.iter().max().unwrap(), hi);
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent mode/range")]
    fn mode_outside_range_panics() {
        sample_with_mode_range(&mut SplitMix64::new(0), 10, 9, 0, 5);
    }

    #[test]
    fn admissions_respects_positions_and_slant() {
        let (pool, offers) = simulate_admissions(4);
        assert_eq!(pool.len(), paper::N_APPLICANTS);
        assert_eq!(offers.len(), paper::N_POSITIONS);
        // The slant: offer rate for non-research institutions exceeds the
        // pool base rate.
        let offered_nonresearch = offers.iter().filter(|&&i| !pool[i].research_institution).count()
            as f64
            / offers.len() as f64;
        let pool_nonresearch =
            pool.iter().filter(|a| !a.research_institution).count() as f64 / pool.len() as f64;
        assert!(
            offered_nonresearch > pool_nonresearch,
            "offers must be slanted: {offered_nonresearch} vs pool {pool_nonresearch}"
        );
    }
}
