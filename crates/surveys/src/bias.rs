//! Nonresponse bias analysis — the §4 future-work item, made quantitative.
//!
//! The paper: "The other lesson is to incentivize the completion of exit
//! surveys. We had difficulty collecting responses to our post hoc surveys
//! after students left campus." Only 10 of ~15 participants responded post
//! hoc. If responding is correlated with how well the summer went, the
//! *measured* confidence boost differs from the cohort's *true* boost.
//!
//! This module simulates that mechanism: a full cohort with known true
//! boosts, a response model in which the probability of completing the
//! exit survey increases with a student's satisfaction, and the estimator
//! the instructors actually used (mean over responders). The experiment
//! X-bias quantifies the inflation as a function of the response rate —
//! the quantitative case for the paper's "collect responses prior to
//! departure" recommendation.

use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::stats;

/// One simulated participant with ground truth attached.
#[derive(Debug, Clone, PartialEq)]
pub struct Participant {
    /// Latent satisfaction in roughly `[-2, 2]`.
    pub satisfaction: f64,
    /// True confidence boost (correlated with satisfaction).
    pub true_boost: f64,
    /// Whether they completed the exit survey.
    pub responded: bool,
}

/// Response models for the exit survey.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResponseModel {
    /// Everyone responds before leaving campus (the recommendation).
    Census,
    /// Response probability rises with satisfaction:
    /// `sigmoid(base + slope * satisfaction)`.
    SatisfactionBiased {
        /// Logit intercept (controls the overall response rate).
        base: f64,
        /// Logit slope on satisfaction (controls the bias strength).
        slope: f64,
    },
    /// Uniform random response at the given rate (missing completely at
    /// random — lowers precision but not accuracy).
    Random {
        /// Response probability.
        rate: f64,
    },
}

/// Simulates a cohort of `n` participants under a response model.
pub fn simulate_cohort(n: usize, model: ResponseModel, rng: &mut SplitMix64) -> Vec<Participant> {
    (0..n)
        .map(|_| {
            let satisfaction = rng.next_gaussian();
            // True boost: base 0.7 plus satisfaction effect plus noise.
            let true_boost = 0.7 + 0.4 * satisfaction + rng.next_gaussian() * 0.2;
            let p_respond = match model {
                ResponseModel::Census => 1.0,
                ResponseModel::SatisfactionBiased { base, slope } => {
                    1.0 / (1.0 + (-(base + slope * satisfaction)).exp())
                }
                ResponseModel::Random { rate } => rate,
            };
            Participant { satisfaction, true_boost, responded: rng.next_f64() < p_respond }
        })
        .collect()
}

/// The estimator the instructors used: mean boost over responders.
/// Returns `None` when nobody responded.
pub fn measured_boost(cohort: &[Participant]) -> Option<f64> {
    let responders: Vec<f64> =
        cohort.iter().filter(|p| p.responded).map(|p| p.true_boost).collect();
    if responders.is_empty() {
        None
    } else {
        Some(stats::mean(&responders))
    }
}

/// The cohort's true mean boost.
pub fn true_boost(cohort: &[Participant]) -> f64 {
    let all: Vec<f64> = cohort.iter().map(|p| p.true_boost).collect();
    stats::mean(&all)
}

/// The response rate actually realized.
pub fn response_rate(cohort: &[Participant]) -> f64 {
    if cohort.is_empty() {
        return 0.0;
    }
    cohort.iter().filter(|p| p.responded).count() as f64 / cohort.len() as f64
}

/// X-bias: bias of the responders-only estimator under the three response
/// models, averaged over many simulated cohorts.
pub struct NonresponseBiasExperiment;

impl Experiment for NonresponseBiasExperiment {
    fn name(&self) -> &str {
        "surveys/nonresponse-bias"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("cohort", 15) as usize;
        let trials = ctx.int("trials", 400) as u64;
        let models = [
            ("census", ResponseModel::Census),
            // Calibrated to the paper's observed ~10/15 response rate.
            ("biased", ResponseModel::SatisfactionBiased { base: 0.8, slope: 1.2 }),
            ("random", ResponseModel::Random { rate: 2.0 / 3.0 }),
        ];
        for (tag, model) in models {
            let mut bias = 0.0;
            let mut rate = 0.0;
            let mut used = 0u64;
            for t in 0..trials {
                let mut rng = SplitMix64::new(derive_seed(ctx.seed(), &format!("{tag}.{t}")));
                let cohort = simulate_cohort(n, model, &mut rng);
                if let Some(m) = measured_boost(&cohort) {
                    bias += m - true_boost(&cohort);
                    rate += response_rate(&cohort);
                    used += 1;
                }
            }
            let used = used.max(1) as f64;
            ctx.record(&format!("{tag}_bias"), bias / used);
            ctx.record(&format!("{tag}_response_rate"), rate / used);
        }
    }
}

/// Registers X-bias.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "X-bias",
        "Section 4",
        "exit-survey nonresponse bias: census vs satisfaction-biased response",
        Params::new().with_int("cohort", 15).with_int("trials", 400),
        Box::new(NonresponseBiasExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    #[test]
    fn census_has_no_bias() {
        let mut rng = SplitMix64::new(1);
        let cohort = simulate_cohort(1000, ResponseModel::Census, &mut rng);
        assert_eq!(response_rate(&cohort), 1.0);
        let m = measured_boost(&cohort).unwrap();
        assert!((m - true_boost(&cohort)).abs() < 1e-12);
    }

    #[test]
    fn satisfaction_biased_response_inflates_the_boost() {
        let rec = run_once(&NonresponseBiasExperiment, 2023, Params::new());
        let census = rec.metric("census_bias").unwrap();
        let biased = rec.metric("biased_bias").unwrap();
        let random = rec.metric("random_bias").unwrap();
        assert!(census.abs() < 1e-9, "census bias {census}");
        assert!(biased > 0.05, "satisfaction-biased response must inflate: {biased}");
        assert!(random.abs() < 0.03, "MCAR is unbiased in expectation: {random}");
    }

    #[test]
    fn biased_model_matches_paper_response_rate() {
        let rec = run_once(&NonresponseBiasExperiment, 2023, Params::new());
        let rate = rec.metric("biased_response_rate").unwrap();
        // The paper saw 10 of ~15 respond.
        assert!((rate - 2.0 / 3.0).abs() < 0.12, "rate {rate}");
    }

    #[test]
    fn empty_response_handled() {
        let mut rng = SplitMix64::new(2);
        let cohort = simulate_cohort(5, ResponseModel::Random { rate: 0.0 }, &mut rng);
        assert_eq!(measured_boost(&cohort), None);
    }

    #[test]
    fn experiment_is_deterministic() {
        assert_deterministic(&NonresponseBiasExperiment, 7, &Params::new().with_int("trials", 20));
    }
}
