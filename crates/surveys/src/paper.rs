//! Published reference values, transcribed from the paper.
//!
//! These constants are the *calibration targets and ground truth* for the
//! reproduction. They are used in exactly two places: the cohort simulator
//! (as targets) and EXPERIMENTS.md tooling (as the paper side of
//! paper-vs-measured comparisons). The analysis pipeline never reads them.

/// Survey cohort sizes: 15 a priori responses, 10 post hoc, 9 of whom
/// answered the goal questions.
pub const N_APRIORI: usize = 15;
/// Post hoc respondents.
pub const N_POSTHOC: usize = 10;
/// Post hoc respondents who answered the goal questions (one participant
/// "did not respond to all items").
pub const N_GOAL_RESPONDENTS: usize = 9;

/// Applicants received for the external positions.
pub const N_APPLICANTS: usize = 85;
/// External positions available.
pub const N_POSITIONS: usize = 10;

/// Table 1: the 19 student-set goals with the number (out of nine) of post
/// hoc respondents who accomplished each.
pub const GOALS: [(&str, usize); 19] = [
    ("Collaborate with peers", 9),
    ("Create a research poster", 8),
    ("Create or work with ML models", 9),
    ("Develop professional relationships", 9),
    ("Work on paper-yielding research projects", 5),
    ("Identify engrossing research areas", 7),
    ("Improve (social) networking skills", 6),
    ("Improve ability to grasp research papers", 8),
    ("Improve time management skills", 4),
    ("Improve writing skills", 4),
    ("Increase awareness of CS research areas", 9),
    ("Increase knowledge of career options", 7),
    ("Increase knowledge of cybersecurity", 6),
    ("Increase knowledge of HPC", 8),
    ("Increase knowledge of ML and AI", 9),
    ("Learn a new programming language", 2),
    ("Make a decision about pursuing a PhD", 4),
    ("Meet researchers at different career stages", 8),
    ("Produce demonstrable research artifacts", 8),
];

/// Table 2: 18 research skills with `(a priori mean confidence, boost)`.
/// Survey items derive from Borrego et al.
pub const SKILLS: [(&str, f64, f64); 18] = [
    ("Designing own research", 2.5, 1.0),
    ("Writing a scientific report", 2.5, 1.2),
    ("Using tools in the lab", 2.7, 1.2),
    ("Preparing a scientific poster", 2.9, 1.6),
    ("Presenting results of my data", 3.1, 1.3),
    ("Using statistics to analyze data", 3.2, 0.5),
    ("Analyzing data", 3.3, 0.7),
    ("Collecting data", 3.3, 0.7),
    ("Managing my time", 3.5, 0.6),
    ("Problem solving in the lab", 3.6, 0.4),
    ("Understanding scientific articles", 3.7, 0.3),
    ("Observing research in the lab", 3.7, 0.4),
    ("Reading scholarly research", 3.7, 0.6),
    ("Understanding guest lectures", 3.8, 0.2),
    ("Research team experience", 3.8, 0.6),
    ("Speaking to/with professors", 3.9, 0.4),
    ("Research relevance recognition", 3.9, 0.7),
    ("Grasping summer research basics", 3.9, 0.7),
];

/// Table 3: 5 knowledge areas with `(a priori mean, increase)`.
pub const KNOWLEDGE: [(&str, f64, f64); 5] = [
    ("Trust in the context of computational research", 2.0, 1.6),
    ("Reproducibility of computational research", 2.3, 1.6),
    ("Research careers", 2.4, 0.8),
    ("Ethics in research", 2.7, 0.9),
    ("Engineering careers", 2.9, 0.5),
];

/// Narrative: PhD-intent statistics `(a priori mean, a priori mode,
/// post hoc mean, post hoc mode)`.
pub const PHD_INTENT: (f64, i64, f64, i64) = (3.2, 3, 3.6, 4);

/// Narrative: recommender counts as `(mode, range lo, range hi)` for
/// (REU program, home institution, outside both).
pub const RECOMMENDERS_REU: (i64, i64, i64) = (2, 2, 4);
/// Home-institution recommenders.
pub const RECOMMENDERS_HOME: (i64, i64, i64) = (2, 1, 5);
/// Recommenders outside home institution and REU.
pub const RECOMMENDERS_OUTSIDE: (i64, i64, i64) = (1, 0, 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_paper_cardinalities() {
        assert_eq!(GOALS.len(), 19, "paper: 19 unique goals");
        assert_eq!(SKILLS.len(), 18);
        assert_eq!(KNOWLEDGE.len(), 5);
    }

    #[test]
    fn goal_counts_within_respondent_bound() {
        assert!(GOALS.iter().all(|&(_, k)| k <= N_GOAL_RESPONDENTS));
    }

    #[test]
    fn five_goals_accomplished_by_all_nine() {
        // The paper: "Five of these goals were accomplished by all nine
        // respondents."
        let all_nine = GOALS.iter().filter(|&&(_, k)| k == 9).count();
        assert_eq!(all_nine, 5);
    }

    #[test]
    fn likert_targets_stay_on_scale() {
        for &(_, m, b) in &SKILLS {
            assert!((1.0..=5.0).contains(&m));
            assert!((1.0..=5.0).contains(&(m + b)), "post hoc must stay on scale");
        }
        for &(_, m, b) in &KNOWLEDGE {
            assert!((1.0..=5.0).contains(&(m + b)));
        }
    }

    #[test]
    fn top_boosts_match_paper_prose() {
        // The paper names the five largest confidence boosts; verify the
        // table data is consistent with the prose.
        let mut sorted: Vec<_> = SKILLS.to_vec();
        sorted.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        let top: Vec<&str> = sorted.iter().take(3).map(|s| s.0).collect();
        assert!(top.contains(&"Preparing a scientific poster"));
        assert!(top.contains(&"Presenting results of my data"));
    }

    #[test]
    fn knowledge_core_areas_boosted_most() {
        // "students gained knowledge in the two core areas ... average
        // increase of 1.6".
        assert_eq!(KNOWLEDGE[0].2, 1.6);
        assert_eq!(KNOWLEDGE[1].2, 1.6);
        assert!((KNOWLEDGE[0].1 + KNOWLEDGE[0].2 - 3.6).abs() < 1e-12);
        assert!((KNOWLEDGE[1].1 + KNOWLEDGE[1].2 - 3.9).abs() < 1e-12);
    }
}
