//! Likert-scale primitives and calibrated sampling.
//!
//! The surveys use 5-point Likert items ("1 (very unconfident) to 5 (very
//! confident)"). This module provides the scale type and the calibrated
//! sampler the cohort simulator is built on: draw `n` integer responses in
//! `1..=5` whose mean is as close to a target as integer-valued responses
//! allow.

use treu_math::rng::SplitMix64;
use treu_math::stats;

/// Bounds of the 5-point scale.
pub const MIN: i64 = 1;
/// Upper bound of the 5-point scale.
pub const MAX: i64 = 5;

/// Clamps a raw value onto the scale.
pub fn clamp(v: i64) -> i64 {
    v.clamp(MIN, MAX)
}

/// Mean of Likert responses as `f64`.
pub fn mean(xs: &[i64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<i64>() as f64 / xs.len() as f64
}

/// Modal response (ties to the smaller value; see
/// [`treu_math::stats::mode_int`]).
pub fn mode(xs: &[i64]) -> Option<i64> {
    stats::mode_int(xs)
}

/// Draws `n` responses in `1..=5` whose mean is the closest achievable to
/// `target`.
///
/// Sampling proceeds in two phases: scatter responses around the target
/// with unit Gaussian noise (so the sample has realistic spread), then
/// repair the total by ±1 adjustments at deterministic-random positions
/// until the sum equals `round(target * n)` (clamped to the achievable
/// range `[n, 5n]`). The achieved mean therefore differs from the target by
/// at most `0.5 / n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sample_with_mean(rng: &mut SplitMix64, n: usize, target: f64) -> Vec<i64> {
    assert!(n > 0, "sample_with_mean: empty sample requested");
    let want: i64 = ((target * n as f64).round() as i64).clamp(n as i64 * MIN, n as i64 * MAX);
    let mut xs: Vec<i64> =
        (0..n).map(|_| clamp((target + rng.next_gaussian()).round() as i64)).collect();
    let mut sum: i64 = xs.iter().sum();
    // Repair pass: random single-step adjustments toward the target total.
    // Each iteration moves |sum - want| down by one, so it terminates.
    while sum != want {
        let i = rng.next_bounded(n as u64) as usize;
        if sum < want && xs[i] < MAX {
            xs[i] += 1;
            sum += 1;
        } else if sum > want && xs[i] > MIN {
            xs[i] -= 1;
            sum -= 1;
        }
    }
    xs
}

/// Draws a boolean vector of length `n` with exactly `k` `true`s in random
/// positions — used for Table 1's "k of n respondents accomplished goal g".
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_with_count(rng: &mut SplitMix64, n: usize, k: usize) -> Vec<bool> {
    assert!(k <= n, "sample_with_count: k exceeds n");
    let mut v = vec![false; n];
    let perm = treu_math::rng::permutation(rng, n);
    for &i in perm.iter().take(k) {
        v[i] = true;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(0), 1);
        assert_eq!(clamp(6), 5);
        assert_eq!(clamp(3), 3);
    }

    #[test]
    fn sample_hits_achievable_mean_exactly() {
        let mut rng = SplitMix64::new(1);
        // 3.2 * 15 = 48 exactly.
        let xs = sample_with_mean(&mut rng, 15, 3.2);
        assert_eq!(xs.len(), 15);
        assert!((mean(&xs) - 3.2).abs() < 1e-12);
        assert!(xs.iter().all(|&x| (MIN..=MAX).contains(&x)));
    }

    #[test]
    fn sample_rounds_unachievable_mean() {
        let mut rng = SplitMix64::new(2);
        // 2.5 * 15 = 37.5 -> rounds to 38 -> mean 2.5333…
        let xs = sample_with_mean(&mut rng, 15, 2.5);
        assert!((mean(&xs) - 2.5).abs() <= 0.5 / 15.0 + 1e-12);
    }

    #[test]
    fn sample_extreme_targets() {
        let mut rng = SplitMix64::new(3);
        let lo = sample_with_mean(&mut rng, 10, 1.0);
        assert!(lo.iter().all(|&x| x == 1));
        let hi = sample_with_mean(&mut rng, 10, 5.0);
        assert!(hi.iter().all(|&x| x == 5));
        // Out-of-range target clamps to achievable.
        let over = sample_with_mean(&mut rng, 4, 9.0);
        assert!((mean(&over) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sample_has_spread_not_constant() {
        let mut rng = SplitMix64::new(4);
        let xs = sample_with_mean(&mut rng, 40, 3.0);
        let distinct: std::collections::BTreeSet<i64> = xs.iter().copied().collect();
        assert!(distinct.len() > 1, "sampler should produce realistic spread");
    }

    #[test]
    fn sample_is_deterministic() {
        let a = sample_with_mean(&mut SplitMix64::new(9), 12, 3.7);
        let b = sample_with_mean(&mut SplitMix64::new(9), 12, 3.7);
        assert_eq!(a, b);
    }

    #[test]
    fn count_sampler_exact() {
        let mut rng = SplitMix64::new(5);
        for k in 0..=9 {
            let v = sample_with_count(&mut rng, 9, k);
            assert_eq!(v.iter().filter(|&&b| b).count(), k);
        }
    }

    #[test]
    #[should_panic(expected = "k exceeds n")]
    fn count_sampler_rejects_k_gt_n() {
        sample_with_count(&mut SplitMix64::new(0), 3, 4);
    }

    #[test]
    fn mean_mode_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1, 2, 3]), 2.0);
        assert_eq!(mode(&[4, 4, 3]), Some(4));
    }
}
