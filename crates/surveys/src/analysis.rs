//! The survey analysis pipeline: raw responses → the paper's tables.
//!
//! Functions here see only a [`Cohort`]'s individual responses — never the
//! calibration targets in [`crate::paper`] — and aggregate them the way the
//! REU instructors describe: goal counts over the nine goal respondents,
//! per-skill mean confidence and boost, per-area knowledge increase, and
//! the narrative statistics (PhD intent, recommenders).

use crate::cohort::Cohort;
use crate::likert;
use crate::paper;
use treu_core::report::{Cell, Table};
use treu_math::stats;

/// One row of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct GoalRow {
    /// Goal text.
    pub goal: String,
    /// Number of goal respondents who accomplished it.
    pub accomplished: usize,
}

/// Reproduces Table 1 from raw responses.
pub fn table1(cohort: &Cohort) -> Vec<GoalRow> {
    let respondents = cohort.goal_respondents();
    paper::GOALS
        .iter()
        .enumerate()
        .map(|(g, (name, _))| GoalRow {
            goal: (*name).to_string(),
            accomplished: respondents
                .iter()
                .filter(|r| r.goals.as_ref().is_some_and(|gs| gs[g]))
                .count(),
        })
        .collect()
}

/// One row of the reproduced Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SkillRow {
    /// Skill text.
    pub skill: String,
    /// A priori mean confidence.
    pub apriori_mean: f64,
    /// Post hoc mean minus a priori mean.
    pub boost: f64,
}

/// Reproduces Table 2 from raw responses.
pub fn table2(cohort: &Cohort) -> Vec<SkillRow> {
    paper::SKILLS
        .iter()
        .enumerate()
        .map(|(i, (name, _, _))| {
            let a: Vec<i64> = cohort.apriori.iter().map(|r| r.confidence[i]).collect();
            let p: Vec<i64> = cohort.posthoc.iter().map(|r| r.confidence[i]).collect();
            let am = likert::mean(&a);
            SkillRow { skill: (*name).to_string(), apriori_mean: am, boost: likert::mean(&p) - am }
        })
        .collect()
}

/// One row of the reproduced Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct KnowledgeRow {
    /// Topic area text.
    pub area: String,
    /// A priori mean knowledge.
    pub apriori_mean: f64,
    /// Post hoc mean minus a priori mean.
    pub increase: f64,
}

/// Reproduces Table 3 from raw responses.
pub fn table3(cohort: &Cohort) -> Vec<KnowledgeRow> {
    paper::KNOWLEDGE
        .iter()
        .enumerate()
        .map(|(i, (name, _, _))| {
            let a: Vec<i64> = cohort.apriori.iter().map(|r| r.knowledge[i]).collect();
            let p: Vec<i64> = cohort.posthoc.iter().map(|r| r.knowledge[i]).collect();
            let am = likert::mean(&a);
            KnowledgeRow {
                area: (*name).to_string(),
                apriori_mean: am,
                increase: likert::mean(&p) - am,
            }
        })
        .collect()
}

/// The §3 narrative statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Narrative {
    /// A priori PhD-intent mean.
    pub phd_apriori_mean: f64,
    /// A priori PhD-intent mode.
    pub phd_apriori_mode: i64,
    /// Post hoc PhD-intent mean.
    pub phd_posthoc_mean: f64,
    /// Post hoc PhD-intent mode.
    pub phd_posthoc_mode: i64,
    /// REU recommenders: (mode, min, max).
    pub rec_reu: (i64, i64, i64),
    /// Home-institution recommenders: (mode, min, max).
    pub rec_home: (i64, i64, i64),
    /// Outside recommenders: (mode, min, max).
    pub rec_outside: (i64, i64, i64),
    /// Goals accomplished by every goal respondent.
    pub goals_by_all: usize,
}

/// Computes the narrative statistics from raw responses.
pub fn narrative(cohort: &Cohort) -> Narrative {
    let ia: Vec<i64> = cohort.apriori.iter().map(|r| r.phd_intent).collect();
    let ip: Vec<i64> = cohort.posthoc.iter().map(|r| r.phd_intent).collect();
    let summarize = |xs: Vec<i64>| {
        let mode = stats::mode_int(&xs).unwrap_or(0);
        let lo = xs.iter().copied().min().unwrap_or(0);
        let hi = xs.iter().copied().max().unwrap_or(0);
        (mode, lo, hi)
    };
    let collect = |f: fn(&crate::cohort::Respondent) -> Option<i64>| {
        cohort.posthoc.iter().filter_map(f).collect::<Vec<i64>>()
    };
    let n_goal = cohort.goal_respondents().len();
    Narrative {
        phd_apriori_mean: likert::mean(&ia),
        phd_apriori_mode: stats::mode_int(&ia).unwrap_or(0),
        phd_posthoc_mean: likert::mean(&ip),
        phd_posthoc_mode: stats::mode_int(&ip).unwrap_or(0),
        rec_reu: summarize(collect(|r| r.recommenders_reu)),
        rec_home: summarize(collect(|r| r.recommenders_home)),
        rec_outside: summarize(collect(|r| r.recommenders_outside)),
        goals_by_all: table1(cohort).iter().filter(|row| row.accomplished == n_goal).count(),
    }
}

/// Renders the reproduced Table 1 in the paper's layout.
pub fn render_table1(rows: &[GoalRow]) -> String {
    let mut t = Table::new(
        "Table 1: goals accomplished (out of nine post hoc respondents)",
        &["Student-set Goals", "# Students"],
    );
    for r in rows {
        t.push_row(vec![r.goal.as_str().into(), Cell::Int(r.accomplished as i64)]);
    }
    t.render()
}

/// Renders the reproduced Table 2 in the paper's layout.
pub fn render_table2(rows: &[SkillRow]) -> String {
    let mut t = Table::new(
        "Table 2: confidence in research skills (1-5) and attained boost",
        &["Research Skill", "A priori mean", "Conf. boost"],
    );
    for r in rows {
        t.push_row(vec![
            r.skill.as_str().into(),
            Cell::Float(r.apriori_mean, 1),
            Cell::Float(r.boost, 1),
        ]);
    }
    t.render()
}

/// Renders the reproduced Table 3 in the paper's layout.
pub fn render_table3(rows: &[KnowledgeRow]) -> String {
    let mut t = Table::new(
        "Table 3: self-reported knowledge of five topic areas (1-5)",
        &["Knowledge Area", "A priori mean", "Increase"],
    );
    for r in rows {
        t.push_row(vec![
            r.area.as_str().into(),
            Cell::Float(r.apriori_mean, 1),
            Cell::Float(r.increase, 1),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::Cohort;

    fn cohort() -> Cohort {
        Cohort::simulate(2023)
    }

    #[test]
    fn table1_matches_paper_exactly() {
        let rows = table1(&cohort());
        assert_eq!(rows.len(), 19);
        for (row, (name, want)) in rows.iter().zip(paper::GOALS.iter()) {
            assert_eq!(row.goal, *name);
            assert_eq!(row.accomplished, *want, "goal '{name}'");
        }
    }

    #[test]
    fn table2_within_rounding_of_paper() {
        let rows = table2(&cohort());
        assert_eq!(rows.len(), 18);
        for (row, (name, m, b)) in rows.iter().zip(paper::SKILLS.iter()) {
            // Achievable-mean error is at most 0.5/15 + 0.5/10 = 0.0833…
            assert!(
                (row.apriori_mean - m).abs() <= 0.04,
                "{name}: a priori {} vs {m}",
                row.apriori_mean
            );
            assert!((row.boost - b).abs() <= 0.09, "{name}: boost {} vs {b}", row.boost);
        }
    }

    #[test]
    fn table3_within_rounding_of_paper() {
        let rows = table3(&cohort());
        assert_eq!(rows.len(), 5);
        for (row, (name, m, b)) in rows.iter().zip(paper::KNOWLEDGE.iter()) {
            assert!((row.apriori_mean - m).abs() <= 0.04, "{name}");
            assert!((row.increase - b).abs() <= 0.09, "{name}");
        }
    }

    #[test]
    fn narrative_matches_paper() {
        let n = narrative(&cohort());
        assert!((n.phd_apriori_mean - 3.2).abs() <= 0.04);
        assert_eq!(n.phd_apriori_mode, 3);
        assert!((n.phd_posthoc_mean - 3.6).abs() <= 0.06);
        assert_eq!(n.phd_posthoc_mode, 4);
        assert_eq!(n.rec_reu, paper::RECOMMENDERS_REU);
        assert_eq!(n.rec_home, paper::RECOMMENDERS_HOME);
        assert_eq!(n.rec_outside, paper::RECOMMENDERS_OUTSIDE);
        assert_eq!(n.goals_by_all, 5, "five goals were accomplished by all nine");
    }

    #[test]
    fn renders_contain_paper_rows() {
        let c = cohort();
        let t1 = render_table1(&table1(&c));
        assert!(t1.contains("Collaborate with peers"));
        assert!(t1.contains("Learn a new programming language"));
        let t2 = render_table2(&table2(&c));
        assert!(t2.contains("Preparing a scientific poster"));
        let t3 = render_table3(&table3(&c));
        assert!(t3.contains("Reproducibility of computational research"));
    }

    #[test]
    fn analysis_is_pure() {
        // Same cohort in, same tables out — the pipeline has no hidden state.
        let c = cohort();
        assert_eq!(table1(&c), table1(&c));
        assert_eq!(table2(&c), table2(&c));
        assert_eq!(narrative(&c), narrative(&c));
    }
}
