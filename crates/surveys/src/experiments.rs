//! Harnessed experiments: T1, T2, T3 and the narrative block N1.
//!
//! Each experiment simulates a cohort under the run's seed, executes the
//! analysis pipeline, and records both the reproduced values and their
//! deviation from the published tables. The registration function wires
//! them into a [`treu_core::ExperimentRegistry`] under the ids DESIGN.md
//! assigns.

use crate::analysis;
use crate::cohort::Cohort;
use crate::paper;
use std::collections::BTreeMap;
use treu_core::aggregate::{summarize, MetricSummary};
use treu_core::exec::Executor;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;

/// Reproduces Table 1 and records `goal<i>` counts plus the maximum
/// absolute deviation from the published counts (`max_abs_dev`, expected 0).
pub struct Table1Experiment;

impl Experiment for Table1Experiment {
    fn name(&self) -> &str {
        "surveys/table1"
    }

    fn run(&self, ctx: &mut RunContext) {
        let cohort = Cohort::simulate(ctx.seed());
        let rows = analysis::table1(&cohort);
        let mut max_dev = 0.0f64;
        for (i, (row, (_, want))) in rows.iter().zip(paper::GOALS.iter()).enumerate() {
            ctx.record(&format!("goal{i:02}"), row.accomplished as f64);
            max_dev = max_dev.max((row.accomplished as f64 - *want as f64).abs());
        }
        ctx.record("goals_by_all", analysis::narrative(&cohort).goals_by_all as f64);
        ctx.record("max_abs_dev", max_dev);
    }
}

/// Reproduces Table 2 and records per-skill a priori means and boosts plus
/// maximum deviations from the published values.
pub struct Table2Experiment;

impl Experiment for Table2Experiment {
    fn name(&self) -> &str {
        "surveys/table2"
    }

    fn run(&self, ctx: &mut RunContext) {
        let cohort = Cohort::simulate(ctx.seed());
        let rows = analysis::table2(&cohort);
        let mut dev_mean = 0.0f64;
        let mut dev_boost = 0.0f64;
        for (i, (row, (_, m, b))) in rows.iter().zip(paper::SKILLS.iter()).enumerate() {
            ctx.record(&format!("skill{i:02}_apriori"), row.apriori_mean);
            ctx.record(&format!("skill{i:02}_boost"), row.boost);
            dev_mean = dev_mean.max((row.apriori_mean - m).abs());
            dev_boost = dev_boost.max((row.boost - b).abs());
        }
        ctx.record("max_abs_dev_mean", dev_mean);
        ctx.record("max_abs_dev_boost", dev_boost);
    }
}

/// Reproduces Table 3 analogously.
pub struct Table3Experiment;

impl Experiment for Table3Experiment {
    fn name(&self) -> &str {
        "surveys/table3"
    }

    fn run(&self, ctx: &mut RunContext) {
        let cohort = Cohort::simulate(ctx.seed());
        let rows = analysis::table3(&cohort);
        let mut dev_mean = 0.0f64;
        let mut dev_inc = 0.0f64;
        for (i, (row, (_, m, b))) in rows.iter().zip(paper::KNOWLEDGE.iter()).enumerate() {
            ctx.record(&format!("area{i}_apriori"), row.apriori_mean);
            ctx.record(&format!("area{i}_increase"), row.increase);
            dev_mean = dev_mean.max((row.apriori_mean - m).abs());
            dev_inc = dev_inc.max((row.increase - b).abs());
        }
        ctx.record("max_abs_dev_mean", dev_mean);
        ctx.record("max_abs_dev_increase", dev_inc);
    }
}

/// Reproduces the §3 narrative statistics (PhD intent, recommenders,
/// admissions slant).
pub struct NarrativeExperiment;

impl Experiment for NarrativeExperiment {
    fn name(&self) -> &str {
        "surveys/narrative"
    }

    fn run(&self, ctx: &mut RunContext) {
        let cohort = Cohort::simulate(ctx.seed());
        let n = analysis::narrative(&cohort);
        ctx.record("phd_apriori_mean", n.phd_apriori_mean);
        ctx.record("phd_apriori_mode", n.phd_apriori_mode as f64);
        ctx.record("phd_posthoc_mean", n.phd_posthoc_mean);
        ctx.record("phd_posthoc_mode", n.phd_posthoc_mode as f64);
        ctx.record("rec_reu_mode", n.rec_reu.0 as f64);
        ctx.record("rec_home_mode", n.rec_home.0 as f64);
        ctx.record("rec_outside_mode", n.rec_outside.0 as f64);
        ctx.record("goals_by_all", n.goals_by_all as f64);

        let (pool, offers) = crate::cohort::simulate_admissions(ctx.seed());
        ctx.record("applicants", pool.len() as f64);
        ctx.record("offers", offers.len() as f64);
        let nonresearch = offers.iter().filter(|&&i| !pool[i].research_institution).count() as f64;
        ctx.record("offers_nonresearch_frac", nonresearch / offers.len() as f64);
    }
}

/// Multi-seed stability of a table experiment: runs it once per seed
/// through the deterministic [`Executor`] and summarizes every recorded
/// metric across seeds. The summary is bitwise-identical for every `jobs`
/// value — the whole point of routing the fan-out through the executor.
pub fn seed_stability<E: Experiment + Sync>(
    exp: &E,
    seeds: &[u64],
    jobs: usize,
) -> BTreeMap<String, MetricSummary> {
    let records = Executor::new(jobs).run_seeds(exp, seeds, &Params::new());
    summarize(&records)
}

/// Registers T1, T2, T3 and N1 into a registry.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "T1",
        "Table 1",
        "goals accomplished by post hoc respondents",
        Params::new(),
        Box::new(Table1Experiment),
    );
    reg.register(
        "T2",
        "Table 2",
        "confidence in research skills and attained boost",
        Params::new(),
        Box::new(Table2Experiment),
    );
    reg.register(
        "T3",
        "Table 3",
        "self-reported knowledge of five topic areas",
        Params::new(),
        Box::new(Table3Experiment),
    );
    reg.register(
        "N1",
        "Section 3",
        "narrative statistics: PhD intent, recommenders, admissions",
        Params::new(),
        Box::new(NarrativeExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    #[test]
    fn t1_reproduces_exactly() {
        let rec = run_once(&Table1Experiment, 2023, Params::new());
        assert_eq!(rec.metric("max_abs_dev"), Some(0.0));
        assert_eq!(rec.metric("goals_by_all"), Some(5.0));
    }

    #[test]
    fn t2_t3_within_rounding() {
        let r2 = run_once(&Table2Experiment, 2023, Params::new());
        assert!(r2.metric("max_abs_dev_mean").unwrap() <= 0.04);
        assert!(r2.metric("max_abs_dev_boost").unwrap() <= 0.09);
        let r3 = run_once(&Table3Experiment, 2023, Params::new());
        assert!(r3.metric("max_abs_dev_mean").unwrap() <= 0.04);
        assert!(r3.metric("max_abs_dev_increase").unwrap() <= 0.09);
    }

    #[test]
    fn narrative_metrics_present() {
        let rec = run_once(&NarrativeExperiment, 2023, Params::new());
        assert_eq!(rec.metric("applicants"), Some(85.0));
        assert_eq!(rec.metric("offers"), Some(10.0));
        assert_eq!(rec.metric("phd_posthoc_mode"), Some(4.0));
    }

    #[test]
    fn all_survey_experiments_are_deterministic() {
        assert_deterministic(&Table1Experiment, 9, &Params::new());
        assert_deterministic(&Table2Experiment, 9, &Params::new());
        assert_deterministic(&Table3Experiment, 9, &Params::new());
        assert_deterministic(&NarrativeExperiment, 9, &Params::new());
    }

    #[test]
    fn seed_stability_is_job_count_invariant() {
        let seeds: Vec<u64> = (2020..2028).collect();
        let base = seed_stability(&Table2Experiment, &seeds, 1);
        for jobs in [2, 8] {
            let other = seed_stability(&Table2Experiment, &seeds, jobs);
            assert_eq!(base.len(), other.len(), "jobs={jobs}");
            for (name, s) in &base {
                let o = &other[name];
                assert_eq!(s.stats.count(), o.stats.count(), "{name} jobs={jobs}");
                assert_eq!(
                    s.stats.mean().to_bits(),
                    o.stats.mean().to_bits(),
                    "{name} jobs={jobs}"
                );
                assert_eq!(s.min.to_bits(), o.min.to_bits(), "{name} jobs={jobs}");
                assert_eq!(s.max.to_bits(), o.max.to_bits(), "{name} jobs={jobs}");
            }
        }
        // Calibration holds across the seed neighborhood, not just 2023.
        assert!(base["max_abs_dev_mean"].max <= 0.2, "{}", base["max_abs_dev_mean"].max);
    }

    #[test]
    fn registration_exposes_four_ids() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert_eq!(reg.len(), 4);
        for id in ["T1", "T2", "T3", "N1"] {
            assert!(reg.get(id).is_some(), "{id} missing");
            assert!(reg.run(id, 2023).is_some());
        }
    }
}
