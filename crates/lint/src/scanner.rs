//! Hand-rolled Rust source scanner.
//!
//! The analyzer does not parse Rust — it tokenizes just enough to tell
//! code apart from places where hazard tokens are inert: line comments,
//! (nested) block comments, string literals, raw strings and char
//! literals are all blanked out of the *cleaned* text the rules match
//! against, while comment text is kept aside for suppression-directive
//! parsing. The scanner also locates `spawn(...)` call regions so the
//! thread-merge rule can reason about code running on worker threads.
//!
//! Known limitations (documented in DESIGN.md): macro-generated code is
//! invisible, `include!`d files are not followed, and the char-vs-lifetime
//! heuristic assumes rustfmt-style spacing.

/// A comment captured during scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the first `/`.
    pub line: usize,
    /// 1-based char column of the first `/`.
    pub col: usize,
    /// Text after the `//` marker, verbatim (doc markers included).
    pub text: String,
}

/// The scan result for one file.
#[derive(Debug, Clone)]
pub struct Scanned {
    /// Source lines with comments and literal contents blanked to spaces.
    pub cleaned: Vec<String>,
    /// Every line comment, in order of appearance.
    pub comments: Vec<Comment>,
    /// 1-based inclusive line ranges covered by `spawn(...)` call
    /// arguments (closures running on worker threads).
    pub spawn_regions: Vec<(usize, usize)>,
    /// 1-based inclusive line ranges covered by any parallel-execution
    /// call (`spawn`, `par_map`, `par_map_dynamic`, `map_indexed`) — the
    /// regions the flow rules R9/R10 reason about. Superset of
    /// [`Scanned::spawn_regions`].
    pub par_regions: Vec<(usize, usize)>,
}

/// Call tokens whose argument closures run concurrently.
pub const PAR_TOKENS: [&str; 4] = ["spawn", "par_map", "par_map_dynamic", "map_indexed"];

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// True when `chars[i..]` starts a raw string literal (`r"`, `r#"`,
/// `br"`, ...). The caller guarantees `chars[i]` is `r` or `b`.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Scans `source` into cleaned text, comments and spawn regions.
pub fn scan(source: &str) -> Scanned {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut i = 0usize;

    // Pushes the chars in `i..j` as blanks, preserving newlines, and
    // advances the line/col bookkeeping past them.
    macro_rules! blank_to {
        ($j:expr) => {{
            let j = $j;
            while i < j && i < n {
                if chars[i] == '\n' {
                    out.push('\n');
                    line += 1;
                    col = 1;
                } else {
                    out.push(' ');
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            // Line comment: capture the text, blank it from the cleaned
            // view.
            let mut j = i + 2;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            comments.push(Comment { line, col, text: chars[i + 2..j].iter().collect() });
            blank_to!(j);
        } else if c == '/' && next == Some('*') {
            // Block comment; Rust block comments nest.
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank_to!(j);
        } else if c == '"' {
            // String literal (escapes honored, may span lines).
            let mut j = i + 1;
            while j < n {
                if chars[j] == '\\' {
                    j += 2;
                } else if chars[j] == '"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            blank_to!(j.min(n));
        } else if (c == 'r' || c == 'b')
            && (i == 0 || !is_ident(chars[i - 1]))
            && raw_string_hashes(&chars, i).is_some()
        {
            // Raw (byte) string: ends at `"` followed by the same number
            // of `#` marks.
            let hashes = raw_string_hashes(&chars, i).expect("checked above");
            let mut j = i;
            while chars.get(j) != Some(&'"') {
                j += 1;
            }
            j += 1;
            'body: while j < n {
                if chars[j] == '"' {
                    let mut k = 0;
                    while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                        k += 1;
                    }
                    if k == hashes {
                        j += 1 + hashes;
                        break 'body;
                    }
                }
                j += 1;
            }
            blank_to!(j.min(n));
        } else if c == '\'' {
            // Char literal vs lifetime. `'\...'` and `'x'` are literals;
            // anything else (`'a`, `'static`) is a lifetime or label and
            // stays in the cleaned text.
            if next == Some('\\') {
                let mut j = i + 2;
                let mut steps = 0;
                while j < n && chars[j] != '\'' && steps < 12 {
                    j += 1;
                    steps += 1;
                }
                blank_to!((j + 1).min(n));
            } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                blank_to!(i + 3);
            } else {
                out.push('\'');
                col += 1;
                i += 1;
            }
        } else {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            out.push(c);
            i += 1;
        }
    }

    let cleaned: Vec<String> = out.split('\n').map(str::to_string).collect();
    let spawn_regions = find_call_regions(&out, "spawn");
    let mut par_regions = Vec::new();
    for tok in PAR_TOKENS {
        par_regions.extend(find_call_regions(&out, tok));
    }
    par_regions.sort_unstable();
    par_regions.dedup();
    Scanned { cleaned, comments, spawn_regions, par_regions }
}

/// Finds `<token>(...)` call-argument regions in the cleaned text: the
/// token at an identifier boundary, immediately followed (after
/// whitespace) by `(`, up to the matching close paren. Returns 1-based
/// inclusive line ranges.
fn find_call_regions(cleaned: &str, token: &str) -> Vec<(usize, usize)> {
    let chars: Vec<char> = cleaned.chars().collect();
    let pat: Vec<char> = token.chars().collect();
    let n = chars.len();
    let mut regions = Vec::new();
    let mut line_of = Vec::with_capacity(n + 1);
    let mut l = 1usize;
    for &c in &chars {
        line_of.push(l);
        if c == '\n' {
            l += 1;
        }
    }
    line_of.push(l);
    let mut i = 0usize;
    while i + pat.len() <= n {
        if chars[i..i + pat.len()] != pat[..]
            || (i > 0 && is_ident(chars[i - 1]))
            || chars.get(i + pat.len()).copied().is_none_or(is_ident)
        {
            i += 1;
            continue;
        }
        let mut j = i + pat.len();
        while j < n && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) != Some(&'(') {
            i += 1;
            continue;
        }
        let open = j;
        let mut depth = 1i64;
        j += 1;
        while j < n && depth > 0 {
            match chars[j] {
                '(' => depth += 1,
                ')' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        regions.push((line_of[open], line_of[(j.saturating_sub(1)).min(n)]));
        i = j;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_captured() {
        let s = scan("let a = 1; // trailing words\n// full line\nlet b = 2;\n");
        assert_eq!(s.cleaned[0].trim_end(), "let a = 1;");
        assert_eq!(s.cleaned[1].trim_end(), "");
        assert_eq!(s.cleaned[2], "let b = 2;");
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[0].col, 12);
        assert_eq!(s.comments[0].text, " trailing words");
        assert_eq!(s.comments[1].line, 2);
        assert_eq!(s.comments[1].col, 1);
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let s = scan("a /* x /* y */ z */ b\n");
        assert_eq!(s.cleaned[0].trim_end(), "a                   b");
    }

    #[test]
    fn string_contents_are_blanked_including_hazard_tokens() {
        let s = scan("let m = \"HashMap inside a string\";\n");
        assert!(!s.cleaned[0].contains("HashMap"));
        assert!(s.cleaned[0].contains("let m ="));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings_early() {
        let s = scan("let m = \"a \\\" Instant::now b\"; let k = 3;\n");
        assert!(!s.cleaned[0].contains("Instant"));
        assert!(s.cleaned[0].contains("let k = 3;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan("let m = r#\"SystemTime \" still inside\"#; let k = 1;\n");
        assert!(!s.cleaned[0].contains("SystemTime"));
        assert!(s.cleaned[0].contains("let k = 1;"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let s = scan("fn f<'a>(x: &'a str) -> char { let c = 'y'; let nl = '\\n'; c }\n");
        assert!(s.cleaned[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!s.cleaned[0].contains("'y'"));
        assert!(!s.cleaned[0].contains("\\n"));
    }

    #[test]
    fn doc_comment_text_is_captured_with_marker() {
        let s = scan("/// doc words\nfn g() {}\n");
        assert_eq!(s.comments[0].text, "/ doc words");
    }

    #[test]
    fn spawn_region_spans_the_call_arguments() {
        let src = "scope(|s| {\n    s.spawn(move || {\n        work();\n    });\n});\n";
        let s = scan(src);
        assert_eq!(s.spawn_regions, vec![(2, 4)]);
    }

    #[test]
    fn spawn_inside_identifiers_is_not_a_region() {
        let s = scan("let spawn_count = 1; cost_spawn(2); respawn(3);\n");
        assert!(s.spawn_regions.is_empty());
    }

    #[test]
    fn par_regions_cover_all_parallel_call_tokens() {
        let src = "par_map_dynamic(8, |i| {\n    work(i)\n});\nlet x = 1;\n\
                   s.spawn(|| {\n    more();\n});\n";
        let s = scan(src);
        assert_eq!(s.par_regions, vec![(1, 3), (5, 7)]);
        assert_eq!(s.spawn_regions, vec![(5, 7)], "spawn_regions stays spawn-only");
    }

    #[test]
    fn multiline_strings_keep_line_structure() {
        let s = scan("let m = \"one\ntwo HashSet\nthree\"; let k = 9;\n");
        assert_eq!(s.cleaned.len(), 4); // 3 lines + trailing empty
        assert!(!s.cleaned[1].contains("HashSet"));
        assert!(s.cleaned[2].contains("let k = 9;"));
    }
}
