//! Token-level lexer over scanned (cleaned) source.
//!
//! The [`scanner`](crate::scanner) blanks comments and literal contents
//! out of the source, which leaves exactly the part of the file the flow
//! analysis cares about: identifiers and structural punctuation. This
//! lexer turns those cleaned lines into a token stream with 1-based
//! line/char-column spans, so the item extractor and call-graph builder
//! never re-derive positions from raw text. Numbers lex as idents (the
//! extractor treats both as words); lifetimes survive as a `'` punct
//! followed by an ident, which no downstream consumer confuses with a
//! path.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier, keyword, or numeric literal remnant.
    Ident(String),
    /// `::`
    PathSep,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// Any other single punctuation char.
    Punct(char),
}

/// A token with its 1-based source position (char columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based char column of the token's first char.
    pub col: usize,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punct `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes cleaned lines (see [`crate::scanner::Scanned::cleaned`]) into a
/// token stream. Whitespace separates tokens and is not represented.
pub fn lex(cleaned: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in cleaned.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let col = i + 1;
            if is_ident_start(c) {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                out.push(Token { tok: Tok::Ident(word), line: lineno, col });
                i = j;
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Token { tok: Tok::PathSep, line: lineno, col });
                i += 2;
            } else if c == '-' && chars.get(i + 1) == Some(&'>') {
                out.push(Token { tok: Tok::Arrow, line: lineno, col });
                i += 2;
            } else if c == '=' && chars.get(i + 1) == Some(&'>') {
                out.push(Token { tok: Tok::FatArrow, line: lineno, col });
                i += 2;
            } else {
                out.push(Token { tok: Tok::Punct(c), line: lineno, col });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_str(s: &str) -> Vec<Token> {
        lex(&s.split('\n').map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn idents_and_path_separators() {
        let toks = lex_str("std::env::var(name)");
        let words: Vec<String> =
            toks.iter().filter_map(|t| t.ident().map(str::to_string)).collect();
        assert_eq!(words, vec!["std", "env", "var", "name"]);
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::PathSep).count(), 2);
    }

    #[test]
    fn spans_are_one_based_char_columns() {
        let toks = lex_str("fn αβ() {}\nlet x = 1;");
        assert_eq!(toks[0], Token { tok: Tok::Ident("fn".into()), line: 1, col: 1 });
        assert_eq!(toks[1], Token { tok: Tok::Ident("αβ".into()), line: 1, col: 4 });
        // `(` sits at char column 6 even though αβ is 4 bytes.
        assert!(toks[2].is_punct('('));
        assert_eq!((toks[2].line, toks[2].col), (1, 6));
        let let_tok = toks.iter().find(|t| t.ident() == Some("let")).unwrap();
        assert_eq!((let_tok.line, let_tok.col), (2, 1));
    }

    #[test]
    fn arrows_are_single_tokens() {
        let toks = lex_str("fn f() -> u64 { |x| match x { _ => 0 } }");
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Arrow).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::FatArrow).count(), 1);
    }

    #[test]
    fn numbers_lex_as_words() {
        let toks = lex_str("let x = 42;");
        assert!(toks.iter().any(|t| t.ident() == Some("42")));
    }

    #[test]
    fn lifetimes_do_not_merge_into_paths() {
        let toks = lex_str("fn f<'a>(x: &'a str) {}");
        assert!(toks.iter().any(|t| t.is_punct('\'')));
        assert!(toks.iter().any(|t| t.ident() == Some("a")));
        assert!(!toks.iter().any(|t| t.tok == Tok::PathSep));
    }
}
