//! Item extraction: functions, impl/mod scopes and `use` imports.
//!
//! A single pass over the [`lexer`](crate::lexer) token stream recovers
//! the structure the flow analysis needs: every `fn` definition with its
//! qualified name (module and impl scopes joined with `::`), its body
//! line span, and the call sites inside it; plus the file's `use`
//! imports, which the call-graph builder uses to resolve ambiguous
//! simple names across the workspace. This is deliberately not a full
//! parser — generics, where-clauses and patterns are skipped by brace/
//! paren balance — but item spans and call names are exact for the
//! rustfmt-shaped code the workspace contains (macro bodies stay
//! invisible, as documented in DESIGN §9).

use crate::lexer::{Tok, Token};

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Simple name (`fnv64`).
    pub name: String,
    /// Scope-qualified name within the file (`LruIndex::touch`).
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive body line span (opening to closing brace);
    /// bodiless trait declarations span their header line only.
    pub body_lines: (usize, usize),
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee simple name (`fnv64` for `hash::fnv64(..)`, `push` for
    /// `v.push(..)`).
    pub name: String,
    /// Path segments written before the name (empty for bare and method
    /// calls) — `["crate", "hash"]` for `crate::hash::fnv64(..)`.
    pub path: Vec<String>,
    /// 1-based line of the callee name.
    pub line: usize,
    /// 1-based char column of the callee name.
    pub col: usize,
}

/// One `use` import binding a local alias to a path.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// Full path segments, ending with the imported name.
    pub path: Vec<String>,
    /// The name the import binds locally (last segment, or the `as`
    /// alias).
    pub alias: String,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
    /// `use` imports in source order (globs are skipped).
    pub imports: Vec<UseImport>,
}

/// Keywords that look like calls when followed by `(` but never are.
const NON_CALL_WORDS: [&str; 10] =
    ["if", "while", "for", "match", "return", "fn", "loop", "as", "in", "move"];

/// Extracts items from a lexed token stream.
pub fn extract(toks: &[Token]) -> FileItems {
    let mut items = FileItems::default();
    // Named scopes currently open: (name, brace depth at which it opened).
    let mut scopes: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|(_, d)| *d > depth) {
                    scopes.pop();
                }
                i += 1;
            }
            Tok::Ident(w) if w == "mod" => {
                // `mod name {` opens a scope; `mod name;` does not.
                let name = toks.get(i + 1).and_then(Token::ident).map(str::to_string);
                i += 2;
                if let (Some(name), Some(t)) = (name, toks.get(i)) {
                    if t.is_punct('{') {
                        depth += 1;
                        scopes.push((name, depth));
                        i += 1;
                    }
                }
            }
            Tok::Ident(w) if w == "impl" => {
                let (name, next) = impl_scope_name(toks, i + 1);
                i = next;
                if toks.get(i).is_some_and(|t| t.is_punct('{')) {
                    depth += 1;
                    scopes.push((name, depth));
                    i += 1;
                }
            }
            Tok::Ident(w) if w == "use" => {
                i = parse_use(toks, i + 1, &mut items.imports);
            }
            Tok::Ident(w) if w == "fn" => {
                let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
                    i += 1;
                    continue;
                };
                let name = name.to_string();
                let fn_line = toks[i].line;
                let qual = scopes
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .chain(std::iter::once(name.as_str()))
                    .collect::<Vec<_>>()
                    .join("::");
                // Skip the header: everything up to the body `{` at paren
                // depth 0, or a `;` ending a bodiless declaration.
                let mut j = i + 2;
                let mut parens = 0i64;
                let mut body: Option<(usize, usize)> = None;
                while let Some(t) = toks.get(j) {
                    match t.tok {
                        Tok::Punct('(') | Tok::Punct('[') => parens += 1,
                        Tok::Punct(')') | Tok::Punct(']') => parens -= 1,
                        Tok::Punct(';') if parens == 0 => break,
                        Tok::Punct('{') if parens == 0 => {
                            body = Some((j, matching_brace(toks, j)));
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                // `next` re-enters the body at its `{` so the main loop
                // tracks depth and extracts nested `fn`s too.
                let (body_lines, calls, next) = match body {
                    Some((open, close)) => {
                        let lines = (toks[open].line, toks[close.min(toks.len() - 1)].line);
                        (lines, extract_calls(&toks[open..=close.min(toks.len() - 1)]), open)
                    }
                    None => ((fn_line, fn_line), Vec::new(), j + 1),
                };
                items.fns.push(FnDef { name, qual, line: fn_line, body_lines, calls });
                i = next;
            }
            _ => i += 1,
        }
    }
    items
}

/// The scope name for an `impl` header starting at `start` (just past the
/// `impl` keyword). Returns the chosen name and the index of the token
/// that ends the header (the `{`, or wherever scanning stopped).
fn impl_scope_name(toks: &[Token], start: usize) -> (String, usize) {
    let mut i = start;
    let mut angle = 0i64;
    let mut after_for = false;
    let mut name = String::new();
    while let Some(t) = toks.get(i) {
        match &t.tok {
            Tok::Punct('{') if angle == 0 => break,
            Tok::Punct(';') if angle == 0 => break,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(w) if angle == 0 => {
                if w == "for" {
                    after_for = true;
                    name.clear();
                } else if w != "where" {
                    // Inherent impl: the first path's last segment.
                    // Trait impl: the segment after `for` wins.
                    if name.is_empty()
                        || after_for
                        || toks.get(i - 1).map(|p| &p.tok) == Some(&Tok::PathSep)
                    {
                        name = w.clone();
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    (name, i)
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Parses one `use ...;` starting just past the `use` keyword; appends
/// the flattened imports and returns the index past the terminating `;`.
fn parse_use(toks: &[Token], start: usize, out: &mut Vec<UseImport>) -> usize {
    // Collect the token slice up to `;`, then flatten group syntax.
    let mut end = start;
    while let Some(t) = toks.get(end) {
        if t.is_punct(';') {
            break;
        }
        end += 1;
    }
    flatten_use(&toks[start..end.min(toks.len())], &[], out);
    end + 1
}

/// Recursively flattens a use tree (`a::b::{c, d as e}`) into imports.
fn flatten_use(toks: &[Token], prefix: &[String], out: &mut Vec<UseImport>) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(w) if w == "as" => {
                // `path as alias`.
                if let Some(alias) = toks.get(i + 1).and_then(Token::ident) {
                    out.push(UseImport { path: path.clone(), alias: alias.to_string() });
                }
                return;
            }
            Tok::Ident(w) => {
                path.push(w.clone());
                i += 1;
            }
            Tok::PathSep => i += 1,
            Tok::Punct('{') => {
                // Split the group's top-level comma-separated subtrees.
                let close = matching_brace_punct(toks, i);
                let inner = &toks[i + 1..close.min(toks.len())];
                let mut seg_start = 0usize;
                let mut depth = 0i64;
                for (j, t) in inner.iter().enumerate() {
                    match t.tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => depth -= 1,
                        Tok::Punct(',') if depth == 0 => {
                            flatten_use(&inner[seg_start..j], &path, out);
                            seg_start = j + 1;
                        }
                        _ => {}
                    }
                }
                if seg_start < inner.len() {
                    flatten_use(&inner[seg_start..], &path, out);
                }
                return;
            }
            Tok::Punct('*') => return, // globs are not resolved
            _ => i += 1,
        }
    }
    if let Some(alias) = path.last().cloned() {
        if path.len() > 1 || prefix.is_empty() {
            out.push(UseImport { path, alias });
        }
    }
}

/// Index of the `}` matching the `{` at `open` within a use tree.
fn matching_brace_punct(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Extracts call sites from a body token slice: `name(`, `a::b::name(`
/// and `.name(` — macro invocations (`name!(`) are skipped, matching the
/// analyzer's macros-are-invisible contract.
fn extract_calls(body: &[Token]) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for (j, t) in body.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if NON_CALL_WORDS.contains(&name) || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            continue;
        }
        // The name must be directly followed by `(` (rustfmt keeps call
        // parens tight) — `name !(` is a macro and is skipped.
        let Some(next) = body.get(j + 1) else { continue };
        if !next.is_punct('(') {
            continue;
        }
        // Names preceded by `fn` are definitions, not calls.
        if body.get(j.wrapping_sub(1)).and_then(Token::ident) == Some("fn") {
            continue;
        }
        // Walk the `::`-joined path backwards to capture the written
        // prefix (`crate::hash::fnv64` → ["crate", "hash"]).
        let mut path_rev: Vec<String> = Vec::new();
        let mut k = j;
        while k >= 2 && body[k - 1].tok == Tok::PathSep {
            if let Some(seg) = body[k - 2].ident() {
                path_rev.push(seg.to_string());
                k -= 2;
            } else {
                break;
            }
        }
        path_rev.reverse();
        calls.push(CallSite { name: name.to_string(), path: path_rev, line: t.line, col: t.col });
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn items_of(src: &str) -> FileItems {
        extract(&lex(&scan(src).cleaned))
    }

    #[test]
    fn plain_fn_with_body_span_and_calls() {
        let src = "fn f(x: u64) -> u64 {\n    helper(x);\n    crate::hash::fnv64(&[])\n}\n";
        let it = items_of(src);
        assert_eq!(it.fns.len(), 1);
        let f = &it.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.qual, "f");
        assert_eq!(f.line, 1);
        assert_eq!(f.body_lines, (1, 4));
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "fnv64"]);
        assert_eq!(f.calls[1].path, vec!["crate", "hash"]);
    }

    #[test]
    fn impl_and_mod_scopes_qualify_names() {
        let src =
            "mod inner {\n    struct S;\n    impl S {\n        fn touch(&self) {}\n    }\n    \
                   impl Display for S {\n        fn fmt(&self) {}\n    }\n}\nfn top() {}\n";
        let it = items_of(src);
        let quals: Vec<&str> = it.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["inner::S::touch", "inner::S::fmt", "top"]);
    }

    #[test]
    fn use_imports_flatten_groups_and_aliases() {
        let src = "use treu_core::hash::{fnv64, unit as u01};\nuse std::io;\n";
        let it = items_of(src);
        let got: Vec<(String, String)> =
            it.imports.iter().map(|u| (u.alias.clone(), u.path.join("::"))).collect();
        assert_eq!(
            got,
            vec![
                ("fnv64".to_string(), "treu_core::hash::fnv64".to_string()),
                ("u01".to_string(), "treu_core::hash::unit".to_string()),
                ("io".to_string(), "std::io".to_string()),
            ]
        );
    }

    #[test]
    fn method_calls_and_macros() {
        let src = "fn g(v: &mut Vec<u64>) {\n    v.push(1);\n    println!(\"x\");\n    \
                   self.helper.run(2);\n}\n";
        let it = items_of(src);
        let names: Vec<&str> = it.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["push", "run"], "macro skipped, methods kept");
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src =
            "trait T {\n    fn required(&self) -> u64;\n    fn provided(&self) -> u64 {\n        \
                   self.required()\n    }\n}\n";
        let it = items_of(src);
        assert_eq!(it.fns.len(), 2);
        assert_eq!(it.fns[0].body_lines, (2, 2));
        assert_eq!(it.fns[1].body_lines.1, 5);
        assert_eq!(it.fns[1].calls[0].name, "required");
    }

    #[test]
    fn nested_fns_are_extracted_with_generics_in_headers() {
        let src = "fn outer<T: Clone>(x: T) -> T where T: Default {\n    fn inner(y: u64) -> u64 { y }\n    \
                   inner(1);\n    x\n}\n";
        let it = items_of(src);
        let names: Vec<&str> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
