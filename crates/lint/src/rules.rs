//! The determinism rule set.
//!
//! Each rule has a stable code (`R1`..`R12`), a kebab-case name usable in
//! allow directives and `--rules` filters, a severity, and a fix hint.
//! Token rules match word-boundary occurrences in cleaned source text
//! (so string literals and comments never trigger them); the thread-merge
//! rule additionally uses the scanner's spawn regions, and the crate-root
//! rule is file-level. Rules `R8`..`R12` are *flow rules*: they run over
//! the workspace call graph built by [`callgraph`](crate::callgraph) and
//! the taint propagation in [`taint`](crate::taint), so a single file in
//! isolation cannot decide them.

use crate::report::Severity;

/// A determinism rule the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// R1: `HashMap`/`HashSet` iteration order is nondeterministic.
    UnorderedCollections,
    /// R2: ambient randomness bypasses seed derivation.
    AmbientRandomness,
    /// R3: wall-clock reads outside annotated timing-only scopes.
    WallClock,
    /// R4: environment reads outside the sanctioned capture module.
    EnvRead,
    /// R5: relaxed atomics and `static mut` shared state.
    RelaxedAtomics,
    /// R6: float accumulation inside spawned-thread merge loops.
    ThreadFloatMerge,
    /// R7: crate roots must forbid (or deliberately deny) `unsafe_code`.
    MissingUnsafeForbid,
    /// R8: a nondeterministic value flows into a fingerprint/cache-key
    /// sink through the call graph.
    TaintReachesFingerprint,
    /// R9: parallel results merged into a shared collection in completion
    /// order instead of by index.
    UnorderedParallelMerge,
    /// R10: order-sensitive accumulation under a `Mutex` inside a
    /// parallel region.
    LockedAccumulation,
    /// R11: a `DefaultHasher`/`RandomState` hash flows into persisted or
    /// reported output.
    DefaultHasherOutput,
    /// R12: a determinism-critical primitive is defined in more than one
    /// place, so the copies can drift apart.
    DuplicatePrimitive,
}

impl RuleId {
    /// Every rule, in code order.
    pub const ALL: [RuleId; 12] = [
        RuleId::UnorderedCollections,
        RuleId::AmbientRandomness,
        RuleId::WallClock,
        RuleId::EnvRead,
        RuleId::RelaxedAtomics,
        RuleId::ThreadFloatMerge,
        RuleId::MissingUnsafeForbid,
        RuleId::TaintReachesFingerprint,
        RuleId::UnorderedParallelMerge,
        RuleId::LockedAccumulation,
        RuleId::DefaultHasherOutput,
        RuleId::DuplicatePrimitive,
    ];

    /// True for the call-graph/taint rules (`R8`..`R12`), which run in
    /// the cross-file flow pass rather than per file.
    pub fn is_flow(self) -> bool {
        matches!(
            self,
            RuleId::TaintReachesFingerprint
                | RuleId::UnorderedParallelMerge
                | RuleId::LockedAccumulation
                | RuleId::DefaultHasherOutput
                | RuleId::DuplicatePrimitive
        )
    }

    /// Stable short code (`R1`..`R7`).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => "R1",
            RuleId::AmbientRandomness => "R2",
            RuleId::WallClock => "R3",
            RuleId::EnvRead => "R4",
            RuleId::RelaxedAtomics => "R5",
            RuleId::ThreadFloatMerge => "R6",
            RuleId::MissingUnsafeForbid => "R7",
            RuleId::TaintReachesFingerprint => "R8",
            RuleId::UnorderedParallelMerge => "R9",
            RuleId::LockedAccumulation => "R10",
            RuleId::DefaultHasherOutput => "R11",
            RuleId::DuplicatePrimitive => "R12",
        }
    }

    /// Kebab-case name, as used in allow directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => "unordered-collections",
            RuleId::AmbientRandomness => "ambient-randomness",
            RuleId::WallClock => "wall-clock",
            RuleId::EnvRead => "env-read",
            RuleId::RelaxedAtomics => "relaxed-atomics",
            RuleId::ThreadFloatMerge => "thread-float-merge",
            RuleId::MissingUnsafeForbid => "missing-unsafe-forbid",
            RuleId::TaintReachesFingerprint => "taint-reaches-fingerprint",
            RuleId::UnorderedParallelMerge => "unordered-parallel-merge",
            RuleId::LockedAccumulation => "locked-accumulation",
            RuleId::DefaultHasherOutput => "default-hasher-output",
            RuleId::DuplicatePrimitive => "duplicate-primitive",
        }
    }

    /// Default severity.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::UnorderedCollections
            | RuleId::AmbientRandomness
            | RuleId::RelaxedAtomics
            | RuleId::MissingUnsafeForbid
            | RuleId::TaintReachesFingerprint
            | RuleId::UnorderedParallelMerge
            | RuleId::DefaultHasherOutput => Severity::Error,
            RuleId::WallClock
            | RuleId::EnvRead
            | RuleId::ThreadFloatMerge
            | RuleId::LockedAccumulation
            | RuleId::DuplicatePrimitive => Severity::Warn,
        }
    }

    /// One-line fix hint rendered under each diagnostic.
    pub fn hint(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => {
                "use BTreeMap/BTreeSet or an indexed Vec so iteration order is canonical"
            }
            RuleId::AmbientRandomness => {
                "derive randomness from the run seed: RunContext::rng(tag) / SplitMix64::new(derive_seed(..))"
            }
            RuleId::WallClock => {
                "route wall time into report-only fields, or annotate the timing scope with an allow(wall-clock) directive"
            }
            RuleId::EnvRead => {
                "read the environment through treu-core::environment::Environment::capture"
            }
            RuleId::RelaxedAtomics => {
                "use SeqCst for result-bearing atomics, or better: disjoint &mut bands merged in input order"
            }
            RuleId::ThreadFloatMerge => {
                "accumulate into per-worker slots and combine in canonical order (treu-math::parallel / treu-core::exec)"
            }
            RuleId::MissingUnsafeForbid => {
                "add #![forbid(unsafe_code)] to the crate root (or deny with a justifying comment)"
            }
            RuleId::TaintReachesFingerprint => {
                "break the flow: fingerprint only run-derived inputs, and keep ambient reads in report-only fields"
            }
            RuleId::UnorderedParallelMerge => {
                "preallocate an output slot per input index (map_indexed) instead of pushing in completion order"
            }
            RuleId::LockedAccumulation => {
                "accumulate into per-worker slots and fold them in input order after the join"
            }
            RuleId::DefaultHasherOutput => {
                "hash with treu-core::hash::fnv64 — DefaultHasher/RandomState are seeded per process"
            }
            RuleId::DuplicatePrimitive => {
                "import the canonical definition (treu-core::hash / treu-math) instead of redefining it"
            }
        }
    }

    /// Parses a rule from its code (`R3`, case-insensitive) or name
    /// (`wall-clock`).
    pub fn parse(s: &str) -> Option<RuleId> {
        let t = s.trim();
        RuleId::ALL.into_iter().find(|r| r.name() == t || r.code().eq_ignore_ascii_case(t))
    }

    /// Token patterns for the plain token rules (empty for the two
    /// structural rules R6/R7).
    pub fn tokens(self) -> &'static [&'static str] {
        match self {
            RuleId::UnorderedCollections => &["HashMap", "HashSet"],
            RuleId::AmbientRandomness => {
                &["thread_rng", "from_entropy", "rand::random", "OsRng", "getrandom"]
            }
            RuleId::WallClock => &["Instant::now", "SystemTime"],
            RuleId::EnvRead => &["env::var", "env::vars", "env::var_os", "env::vars_os"],
            RuleId::RelaxedAtomics => &["Ordering::Relaxed", "static mut"],
            RuleId::ThreadFloatMerge
            | RuleId::MissingUnsafeForbid
            | RuleId::TaintReachesFingerprint
            | RuleId::UnorderedParallelMerge
            | RuleId::LockedAccumulation
            | RuleId::DefaultHasherOutput
            | RuleId::DuplicatePrimitive => &[],
        }
    }

    /// Diagnostic message for a token match.
    pub fn message_for(self, token: &str) -> String {
        match self {
            RuleId::UnorderedCollections => {
                format!("`{token}` iterates in nondeterministic order on a result path")
            }
            RuleId::AmbientRandomness => {
                format!("`{token}` draws ambient randomness that no seed controls")
            }
            RuleId::WallClock => {
                format!("`{token}` reads the wall clock outside an annotated timing-only scope")
            }
            RuleId::EnvRead => {
                format!(
                    "`{token}` reads the ambient environment outside the sanctioned capture module"
                )
            }
            RuleId::RelaxedAtomics => {
                format!("`{token}` permits scheduling-dependent views of shared state")
            }
            RuleId::ThreadFloatMerge => {
                "float accumulation inside a spawned worker; merge order follows the scheduler"
                    .to_string()
            }
            RuleId::MissingUnsafeForbid => "crate root does not forbid unsafe_code".to_string(),
            // Flow rules compose their own site-specific messages in the
            // taint pass; these are the generic fallbacks.
            RuleId::TaintReachesFingerprint => {
                format!("nondeterministic value flows into `{token}`")
            }
            RuleId::UnorderedParallelMerge => {
                "parallel results merged in completion order".to_string()
            }
            RuleId::LockedAccumulation => {
                "order-sensitive accumulation under a lock in a parallel region".to_string()
            }
            RuleId::DefaultHasherOutput => {
                format!("per-process-seeded hash flows into `{token}`")
            }
            RuleId::DuplicatePrimitive => {
                format!("duplicate definition of determinism-critical `{token}`")
            }
        }
    }

    /// Relative-path suffixes exempt from this rule (sanctioned modules).
    pub fn exempt_paths(self) -> &'static [&'static str] {
        match self {
            RuleId::EnvRead => &["core/src/environment.rs"],
            RuleId::ThreadFloatMerge => &["math/src/parallel.rs", "core/src/exec.rs"],
            // Environment capture feeds the provenance fingerprint by
            // design, so its reads never seed R8 taint.
            RuleId::TaintReachesFingerprint => &["core/src/environment.rs"],
            RuleId::UnorderedParallelMerge | RuleId::LockedAccumulation => {
                &["math/src/parallel.rs", "core/src/exec.rs"]
            }
            _ => &[],
        }
    }

    /// True when an allow directive may suppress this rule. The crate-root
    /// attribute rule is deliberately unsuppressible: the fix is one line.
    pub fn suppressible(self) -> bool {
        self != RuleId::MissingUnsafeForbid
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Finds word-boundary occurrences of `pat` in `line`, returning 1-based
/// char columns. Boundaries: the chars immediately before and after the
/// match must not be identifier chars (so `MyHashMap` and `env::vars_of`
/// never match `HashMap` / `env::vars`).
pub fn find_token(line: &str, pat: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let needle: Vec<char> = pat.chars().collect();
    let mut cols = Vec::new();
    if needle.is_empty() || chars.len() < needle.len() {
        return cols;
    }
    for start in 0..=chars.len() - needle.len() {
        if chars[start..start + needle.len()] != needle[..] {
            continue;
        }
        if start > 0 && is_ident(chars[start - 1]) {
            continue;
        }
        if chars.get(start + needle.len()).copied().is_some_and(is_ident) {
            continue;
        }
        cols.push(start + 1);
    }
    cols
}

/// True when the line contains a float literal (`digit . digit`) or an
/// `f64`/`f32` token — the lexical evidence the thread-merge rule uses.
pub fn has_float_evidence(line: &str) -> bool {
    if !find_token(line, "f64").is_empty() || !find_token(line, "f32").is_empty() {
        return true;
    }
    let chars: Vec<char> = line.chars().collect();
    chars.windows(3).any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
}

/// Extracts identifiers bound by `let mut <ident> = ...` on lines with
/// float evidence — the worker-local accumulators the thread-merge rule
/// tracks.
pub fn float_accumulator_idents(lines: &[&str]) -> Vec<String> {
    let mut idents = Vec::new();
    for line in lines {
        let Some(pos) = line.find("let mut ") else { continue };
        if !has_float_evidence(line) {
            continue;
        }
        let rest = &line[pos + "let mut ".len()..];
        let ident: String = rest.chars().take_while(|&c| is_ident(c)).collect();
        if !ident.is_empty() {
            idents.push(ident);
        }
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_codes_and_names() {
        assert_eq!(RuleId::parse("R1"), Some(RuleId::UnorderedCollections));
        assert_eq!(RuleId::parse("r5"), Some(RuleId::RelaxedAtomics));
        assert_eq!(RuleId::parse("wall-clock"), Some(RuleId::WallClock));
        assert_eq!(RuleId::parse("nope"), None);
        assert_eq!(RuleId::parse("WALL-CLOCK"), None, "names are exact");
    }

    #[test]
    fn token_boundaries_reject_identifier_contexts() {
        let hm = "HashMap";
        assert_eq!(find_token("let m: HashMap<K, V> = x;", hm), vec![8]);
        assert!(find_token("let m = MyHashMap::new();", hm).is_empty());
        assert!(find_token("let m = HashMapLike::new();", hm).is_empty());
        let ev = "env::var";
        assert_eq!(find_token("std::env::var(name)", ev), vec![6]);
        assert!(find_token("std::env::vars()", ev).is_empty());
    }

    #[test]
    fn static_mut_matches_with_space() {
        assert_eq!(find_token("static mut X: u64 = 0;", "static mut"), vec![1]);
        assert!(find_token("static muted: u64 = 0;", "static mut").is_empty());
    }

    #[test]
    fn float_evidence_detection() {
        assert!(has_float_evidence("let x = 0.5;"));
        assert!(has_float_evidence("let x: f64 = y;"));
        assert!(has_float_evidence("let x = 1 as f32;"));
        assert!(!has_float_evidence("let x = 15;"));
        assert!(!has_float_evidence("let x = tuple.1;"));
    }

    #[test]
    fn accumulator_idents_require_float_evidence() {
        let lines = ["let mut total = 0.0;", "let mut count = 0usize;", "let mut s: f64 = z;"];
        assert_eq!(float_accumulator_idents(&lines), vec!["total", "s"]);
    }

    #[test]
    fn every_rule_round_trips_code_and_name() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.code()), Some(r));
            assert_eq!(RuleId::parse(r.name()), Some(r));
            assert!(!r.hint().is_empty());
        }
    }

    #[test]
    fn flow_rules_are_exactly_r8_through_r12_and_tokenless() {
        let flow: Vec<&str> =
            RuleId::ALL.into_iter().filter(|r| r.is_flow()).map(RuleId::code).collect();
        assert_eq!(flow, vec!["R8", "R9", "R10", "R11", "R12"]);
        for r in RuleId::ALL.into_iter().filter(|r| r.is_flow()) {
            assert!(r.tokens().is_empty(), "{} must not token-match", r.code());
            assert!(r.suppressible(), "{} must accept audited allows", r.code());
        }
    }
}
