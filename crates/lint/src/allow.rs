//! Suppression directives.
//!
//! Grammar (one directive per comment, reason mandatory):
//!
//! ```text
//! treu-lint: allow(<rule>, reason = "<non-empty text>")
//! ```
//!
//! written after `//` — e.g. `treu-lint: allow(wall-clock, reason =
//! "feeds the timing report only")`. A trailing directive suppresses its
//! own line; a directive alone on a line suppresses the next line.
//! `<rule>` is a rule name or code from [`RuleId`]. Malformed directives
//! are themselves diagnostics (`A1 malformed-allow`), and a directive
//! that suppresses nothing is flagged too (`A2 unused-allow`).

use crate::rules::RuleId;
use crate::scanner::Comment;

/// A parsed, well-formed allow directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: RuleId,
    /// Justification text (non-empty by construction).
    pub reason: String,
    /// 1-based line the directive suppresses.
    pub target_line: usize,
    /// Location of the directive comment itself.
    pub line: usize,
    /// Column of the directive comment.
    pub col: usize,
    /// Set once a diagnostic is suppressed by this directive.
    pub used: bool,
}

/// The outcome of inspecting one comment.
#[derive(Debug, Clone)]
pub enum Parsed {
    /// Not a directive at all (ordinary comment).
    NotDirective,
    /// A well-formed directive (target line still unset).
    Directive {
        /// The rule named by the directive.
        rule: RuleId,
        /// The mandatory justification.
        reason: String,
    },
    /// A directive that does not follow the grammar.
    Malformed(String),
}

/// Inspects a comment for a suppression directive. Only plain `//`
/// comments can carry directives — doc comments (`///`, `//!`) are
/// documentation, so grammar examples in them never parse as live
/// suppressions.
pub fn parse(comment: &Comment) -> Parsed {
    if comment.text.starts_with('/') || comment.text.starts_with('!') {
        return Parsed::NotDirective;
    }
    let t = comment.text.trim();
    let Some(rest) = t.strip_prefix("treu-lint:") else {
        return Parsed::NotDirective;
    };
    let rest = rest.trim();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Parsed::Malformed("expected `allow(<rule>, reason = \"...\")`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Parsed::Malformed("expected `(` after `allow`".to_string());
    };
    let Some(comma) = rest.find(',') else {
        return Parsed::Malformed(
            "missing mandatory `, reason = \"...\"` — every suppression must be justified"
                .to_string(),
        );
    };
    let rule_str = rest[..comma].trim();
    let Some(rule) = RuleId::parse(rule_str) else {
        return Parsed::Malformed(format!(
            "unknown rule `{rule_str}` (use a code R1..R12 or a rule name)"
        ));
    };
    let rest = rest[comma + 1..].trim_start();
    let Some(rest) = rest.strip_prefix("reason") else {
        return Parsed::Malformed("expected `reason = \"...\"` after the rule".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('=') else {
        return Parsed::Malformed("expected `=` after `reason`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Parsed::Malformed("reason must be a quoted string".to_string());
    };
    let Some(close) = rest.find('"') else {
        return Parsed::Malformed("unterminated reason string".to_string());
    };
    let reason = rest[..close].trim();
    if reason.is_empty() {
        return Parsed::Malformed("reason must not be empty".to_string());
    }
    if !rest[close + 1..].trim_start().starts_with(')') {
        return Parsed::Malformed("expected `)` after the reason".to_string());
    }
    Parsed::Directive { rule, reason: reason.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str) -> Comment {
        Comment { line: 4, col: 9, text: text.to_string() }
    }

    #[test]
    fn well_formed_directive_parses() {
        let p = parse(&comment(" treu-lint: allow(wall-clock, reason = \"timing only\")"));
        match p {
            Parsed::Directive { rule, reason } => {
                assert_eq!(rule, RuleId::WallClock);
                assert_eq!(reason, "timing only");
            }
            other => panic!("expected directive, got {other:?}"),
        }
    }

    #[test]
    fn codes_work_as_rule_names() {
        let p = parse(&comment(" treu-lint: allow(R3, reason = \"timing only\")"));
        assert!(matches!(p, Parsed::Directive { rule: RuleId::WallClock, .. }));
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        assert!(matches!(parse(&comment(" just words")), Parsed::NotDirective));
        // Mentioning the marker mid-comment is not a directive.
        assert!(matches!(
            parse(&comment(" suppression uses treu-lint: allow(...)")),
            Parsed::NotDirective
        ));
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        // `///` and `//!` text starts with the extra marker char.
        let doc = comment("/ treu-lint: allow(wall-clock, reason = \"x\")");
        assert!(matches!(parse(&doc), Parsed::NotDirective));
        let inner = comment("! treu-lint: allow(<rule>, reason = \"...\")");
        assert!(matches!(parse(&inner), Parsed::NotDirective));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let p = parse(&comment(" treu-lint: allow(wall-clock)"));
        match p {
            Parsed::Malformed(msg) => assert!(msg.contains("reason"), "{msg}"),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn empty_reason_is_malformed() {
        let p = parse(&comment(" treu-lint: allow(wall-clock, reason = \"  \")"));
        assert!(matches!(p, Parsed::Malformed(_)));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let p = parse(&comment(" treu-lint: allow(wallclock, reason = \"x\")"));
        match p {
            Parsed::Malformed(msg) => assert!(msg.contains("unknown rule"), "{msg}"),
            other => panic!("expected malformed, got {other:?}"),
        }
    }
}
