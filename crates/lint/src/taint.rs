//! Interprocedural taint propagation and the flow rules R8–R12.
//!
//! The flow pass runs once over the whole workspace, after the per-file
//! token rules. It lexes every file's cleaned text, extracts items,
//! builds the [`CallGraph`] and then:
//!
//! * seeds taint at **source** sites — wall-clock reads, `std::env`
//!   reads, ambient RNG, thread ids, unordered-collection use, the
//!   per-process-seeded `DefaultHasher`/`RandomState`, and process
//!   spawns whose child inherits the ambient environment (audited by an
//!   `env_clear` scrub in the spawning function) — and propagates
//!   it callee → caller to a fixpoint (a breadth-first worklist with a
//!   visited set, so recursive and mutually-recursive call graphs
//!   terminate);
//! * reports **R8** (or **R11** for the hasher class) wherever a tainted
//!   function feeds a fingerprint/cache-key **sink** (`fnv64`,
//!   `fnv64_parts`, `fingerprint`, `content_hash`, `derive_seed`), with
//!   the full source→sink call path attached as diagnostic notes;
//! * checks parallel regions for completion-order merges (**R9**) and
//!   order-sensitive locked accumulation (**R10**);
//! * flags duplicate definitions of determinism-critical primitives
//!   (**R12**), noting whether the copies have already drifted.
//!
//! A source line that carries an honored allow for its base token rule
//! (`allow(wall-clock, ...)` on an `Instant::now` line, say) is an
//! audited site: it does not seed taint, so annotating the source is
//! enough to silence downstream R8 findings too. Granularity is the
//! function — a function that both reads a source and calls a sink is
//! flagged even if the two values never meet, which is the documented
//! over-approximation (DESIGN §9).

use crate::callgraph::CallGraph;
use crate::items::{self, FileItems};
use crate::lexer;
use crate::rules::{self, RuleId};
use crate::scanner::Scanned;

/// Function names treated as fingerprint/cache-key/trace sinks.
pub const SINKS: [&str; 5] = ["fnv64", "fnv64_parts", "fingerprint", "content_hash", "derive_seed"];

/// Free functions whose duplication R12 flags.
pub const CRITICAL_PRIMITIVES: [&str; 6] =
    ["fnv64", "fnv64_parts", "unit", "derive_seed", "json_str", "canonical_params"];

/// A class of nondeterminism source the taint pass seeds from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceClass {
    /// `Instant::now` / `SystemTime` (base rule R3).
    WallClock,
    /// `std::env` reads (base rule R4).
    EnvRead,
    /// Ambient RNG (base rule R2).
    AmbientRandomness,
    /// `HashMap`/`HashSet` iteration (base rule R1).
    UnorderedIteration,
    /// Thread identity — no base token rule covers it.
    ThreadId,
    /// `DefaultHasher`/`RandomState` — reported as R11, not R8.
    DefaultHasher,
    /// A process spawn whose child inherits the parent environment — the
    /// whole ambient env becomes an input to whatever the child computes.
    /// Audited by scrubbing: a spawn whose enclosing function calls
    /// `env_clear` pins the child environment and seeds no taint.
    SpawnEnv,
}

impl SourceClass {
    /// Every class, in seeding order.
    pub const ALL: [SourceClass; 7] = [
        SourceClass::WallClock,
        SourceClass::EnvRead,
        SourceClass::AmbientRandomness,
        SourceClass::UnorderedIteration,
        SourceClass::ThreadId,
        SourceClass::DefaultHasher,
        SourceClass::SpawnEnv,
    ];

    /// Tokens that mark a source of this class in cleaned text.
    pub fn tokens(self) -> &'static [&'static str] {
        match self {
            SourceClass::WallClock => RuleId::WallClock.tokens(),
            SourceClass::EnvRead => RuleId::EnvRead.tokens(),
            SourceClass::AmbientRandomness => RuleId::AmbientRandomness.tokens(),
            SourceClass::UnorderedIteration => RuleId::UnorderedCollections.tokens(),
            SourceClass::ThreadId => &["thread::current", "ThreadId"],
            SourceClass::DefaultHasher => &["DefaultHasher", "RandomState"],
            SourceClass::SpawnEnv => &["Command::new"],
        }
    }

    /// The per-line token rule whose allow audits sources of this class
    /// (`None` for classes no token rule covers).
    pub fn base_rule(self) -> Option<RuleId> {
        match self {
            SourceClass::WallClock => Some(RuleId::WallClock),
            SourceClass::EnvRead => Some(RuleId::EnvRead),
            SourceClass::AmbientRandomness => Some(RuleId::AmbientRandomness),
            SourceClass::UnorderedIteration => Some(RuleId::UnorderedCollections),
            SourceClass::ThreadId | SourceClass::DefaultHasher | SourceClass::SpawnEnv => None,
        }
    }

    /// Short phrase used in finding messages.
    pub fn describe(self) -> &'static str {
        match self {
            SourceClass::WallClock => "a wall-clock read",
            SourceClass::EnvRead => "an ambient environment read",
            SourceClass::AmbientRandomness => "ambient randomness",
            SourceClass::UnorderedIteration => "unordered-collection iteration",
            SourceClass::ThreadId => "thread identity",
            SourceClass::DefaultHasher => "a per-process-seeded hash",
            SourceClass::SpawnEnv => "an inherited spawn environment",
        }
    }

    /// The rule a finding from this class reports as.
    pub fn finding_rule(self) -> RuleId {
        match self {
            SourceClass::DefaultHasher => RuleId::DefaultHasherOutput,
            _ => RuleId::TaintReachesFingerprint,
        }
    }
}

/// One file's inputs to the flow pass.
#[derive(Debug)]
pub struct FlowInput<'a> {
    /// Workspace-relative display path.
    pub rel: &'a str,
    /// The scan result (cleaned lines + parallel regions).
    pub sc: &'a Scanned,
    /// `(line, rule)` pairs with an active allow directive, used to
    /// recognize audited source sites.
    pub allowed: Vec<(usize, RuleId)>,
}

/// One flow finding, pre-diagnostic (the lint pipeline owns suppression
/// and `Diagnostic` assembly).
#[derive(Debug, Clone)]
pub struct FlowFinding {
    /// The rule violated (one of R8..R12).
    pub rule: RuleId,
    /// Index into the input slice of the file the finding anchors to.
    pub file: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based char column.
    pub col: usize,
    /// Site-specific message.
    pub message: String,
    /// Call-path or drift evidence.
    pub notes: Vec<String>,
}

/// A seeded source site.
#[derive(Debug, Clone)]
struct SourceSite {
    class: SourceClass,
    token: &'static str,
    file: usize,
    line: usize,
    /// Enclosing function node, if the site is inside one.
    fn_id: Option<usize>,
}

/// Runs the whole flow pass. `active` filters which of R8..R12 run.
pub fn analyze(inputs: &[FlowInput<'_>], active: &[RuleId]) -> Vec<FlowFinding> {
    let parsed: Vec<(String, FileItems)> = inputs
        .iter()
        .map(|f| (f.rel.to_string(), items::extract(&lexer::lex(&f.sc.cleaned))))
        .collect();
    let graph = CallGraph::build(&parsed);
    let mut findings = Vec::new();
    let on = |r: RuleId| active.contains(&r);
    if on(RuleId::TaintReachesFingerprint) || on(RuleId::DefaultHasherOutput) {
        taint_findings(inputs, &graph, active, &mut findings);
    }
    if on(RuleId::UnorderedParallelMerge) || on(RuleId::LockedAccumulation) {
        region_findings(inputs, active, &mut findings);
    }
    if on(RuleId::DuplicatePrimitive) {
        duplicate_findings(inputs, &graph, &mut findings);
    }
    findings.sort_by_key(|a| (a.file, a.line, a.col, a.rule));
    findings
}

/// R8/R11: seed sources, propagate callee→caller, report at sink calls.
fn taint_findings(
    inputs: &[FlowInput<'_>],
    graph: &CallGraph,
    active: &[RuleId],
    out: &mut Vec<FlowFinding>,
) {
    let sources = collect_sources(inputs, graph);
    // taint[fn] = index into `sources` of the seed that reached it first,
    // plus the predecessor hop for path reconstruction.
    type Mark = Option<(usize, Option<(usize, usize)>)>;
    let mut taint: Vec<Mark> = vec![None; graph.fns.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (si, s) in sources.iter().enumerate() {
        if let Some(fid) = s.fn_id {
            if taint[fid].is_none() {
                taint[fid] = Some((si, None));
                queue.push_back(fid);
            }
        }
    }
    // Breadth-first fixpoint: each function is enqueued at most once, so
    // cycles terminate; first-reach order is deterministic because seeds
    // and edges are in deterministic order.
    while let Some(fid) = queue.pop_front() {
        let (si, _) = taint[fid].expect("queued fns are tainted");
        for e in graph.callers_of(fid) {
            if taint[e.caller].is_none() {
                taint[e.caller] = Some((si, Some((fid, e.line))));
                queue.push_back(e.caller);
            }
        }
    }
    // Report every sink call inside a tainted function, once per
    // (sink site, source class).
    let mut reported: Vec<(usize, usize, usize, SourceClass)> = Vec::new();
    for (fid, t) in taint.iter().enumerate() {
        let Some((si, _)) = *t else { continue };
        let src = &sources[si];
        let rule = src.class.finding_rule();
        if !active.contains(&rule) {
            continue;
        }
        let f = &graph.fns[fid];
        for call in &f.calls {
            if !SINKS.contains(&call.name.as_str()) {
                continue;
            }
            let key = (f.file, call.line, call.col, src.class);
            if reported.contains(&key) {
                continue;
            }
            reported.push(key);
            let mut notes = vec![format!(
                "source: `{}` ({}) at {}:{}",
                src.token,
                src.class.describe(),
                inputs[src.file].rel,
                src.line
            )];
            // Walk the predecessor chain from the sink fn back to the
            // seed fn, then print it source-first.
            let mut hops = Vec::new();
            let mut cur = fid;
            while let Some((_, Some((pred, via_line)))) = taint[cur] {
                hops.push(format!(
                    "via `{}` called from `{}` at {}:{}",
                    graph.fns[pred].qual,
                    graph.fns[cur].qual,
                    graph.files[graph.fns[cur].file],
                    via_line
                ));
                cur = pred;
            }
            hops.reverse();
            notes.extend(hops);
            notes.push(format!(
                "sink: `{}` called in `{}` at {}:{}",
                call.name, f.qual, inputs[f.file].rel, call.line
            ));
            out.push(FlowFinding {
                rule,
                file: f.file,
                line: call.line,
                col: call.col,
                message: format!(
                    "value derived from {} flows into `{}`",
                    src.class.describe(),
                    call.name
                ),
                notes,
            });
        }
    }
}

/// Collects unaudited source sites across all files.
fn collect_sources(inputs: &[FlowInput<'_>], graph: &CallGraph) -> Vec<SourceSite> {
    let mut sources = Vec::new();
    for (fi, input) in inputs.iter().enumerate() {
        for class in SourceClass::ALL {
            let rule = class.finding_rule();
            if rule.exempt_paths().iter().any(|p| input.rel.ends_with(p)) {
                continue;
            }
            // Token-rule-exempt files are sanctioned for that hazard, so
            // their sites are audited by construction.
            if class
                .base_rule()
                .is_some_and(|r| r.exempt_paths().iter().any(|p| input.rel.ends_with(p)))
            {
                continue;
            }
            for (idx, line) in input.sc.cleaned.iter().enumerate() {
                let lineno = idx + 1;
                let audited = class
                    .base_rule()
                    .is_some_and(|r| input.allowed.iter().any(|&(l, ar)| l == lineno && ar == r));
                if audited {
                    continue;
                }
                // A spawn that scrubs the child environment is pinned by
                // construction: with `env_clear` in the enclosing
                // function, the child sees only what the spawner sets
                // explicitly, so no ambient environment leaks through.
                if class == SourceClass::SpawnEnv {
                    let scrubbed = match graph.fn_at(fi, lineno) {
                        Some(fid) => {
                            let f = &graph.fns[fid];
                            let end = f.body_lines.1.min(input.sc.cleaned.len());
                            input.sc.cleaned[f.line - 1..end]
                                .iter()
                                .any(|l| l.contains("env_clear"))
                        }
                        None => line.contains("env_clear"),
                    };
                    if scrubbed {
                        continue;
                    }
                }
                for token in class.tokens() {
                    if rules::find_token(line, token).is_empty() {
                        continue;
                    }
                    sources.push(SourceSite {
                        class,
                        token,
                        file: fi,
                        line: lineno,
                        fn_id: graph.fn_at(fi, lineno),
                    });
                }
            }
        }
    }
    sources
}

/// R9/R10: lexical checks inside parallel regions.
fn region_findings(inputs: &[FlowInput<'_>], active: &[RuleId], out: &mut Vec<FlowFinding>) {
    for (fi, input) in inputs.iter().enumerate() {
        for &(start, end) in &input.sc.par_regions {
            let lines = &input.sc.cleaned[start - 1..end.min(input.sc.cleaned.len())];
            // Float evidence anywhere in the region arms R10 for lock
            // lines that are themselves evidence-free (`*acc.lock()... +=
            // local` where the Mutex was built around 0.0 elsewhere).
            let region_float = lines.iter().any(|l| rules::has_float_evidence(l));
            for (off, line) in lines.iter().enumerate() {
                let lineno = start + off;
                if !line.contains(".lock()") {
                    continue;
                }
                let col = line.find(".lock()").map(|p| line[..p].chars().count() + 1).unwrap_or(1);
                let r9 = RuleId::UnorderedParallelMerge;
                if active.contains(&r9)
                    && !r9.exempt_paths().iter().any(|p| input.rel.ends_with(p))
                    && line.contains(".push(")
                {
                    out.push(FlowFinding {
                        rule: r9,
                        file: fi,
                        line: lineno,
                        col,
                        message: "parallel results pushed to a shared collection in completion \
                                  order"
                            .to_string(),
                        notes: vec![format!(
                            "parallel region at {}:{}..{} merges through this lock",
                            input.rel, start, end
                        )],
                    });
                }
                let r10 = RuleId::LockedAccumulation;
                let compound = line.contains("+=") || line.contains("-=") || line.contains("*=");
                if active.contains(&r10)
                    && !r10.exempt_paths().iter().any(|p| input.rel.ends_with(p))
                    && compound
                    && (rules::has_float_evidence(line) || region_float)
                {
                    out.push(FlowFinding {
                        rule: r10,
                        file: fi,
                        line: lineno,
                        col,
                        message: "float accumulation under a lock follows worker completion \
                                  order"
                            .to_string(),
                        notes: vec![format!(
                            "parallel region at {}:{}..{} accumulates through this lock",
                            input.rel, start, end
                        )],
                    });
                }
            }
        }
    }
}

/// R12: determinism-critical free functions defined in more than one
/// file. The first definition (in workspace order) is canonical; every
/// other site is flagged, with a drift note from normalized-body
/// comparison.
fn duplicate_findings(inputs: &[FlowInput<'_>], graph: &CallGraph, out: &mut Vec<FlowFinding>) {
    for name in CRITICAL_PRIMITIVES {
        // Free functions only: methods named `unit` on some struct are
        // not redefinitions of the primitive.
        let defs: Vec<usize> = (0..graph.fns.len())
            .filter(|&id| graph.fns[id].name == name && graph.fns[id].qual == name)
            .collect();
        let mut files: Vec<usize> = defs.iter().map(|&id| graph.fns[id].file).collect();
        files.dedup();
        if files.len() < 2 {
            continue;
        }
        let canon = defs[0];
        let canon_body = normalized_body(inputs, graph, canon);
        for &id in &defs[1..] {
            if graph.fns[id].file == graph.fns[canon].file {
                continue;
            }
            let drift = if normalized_body(inputs, graph, id) == canon_body {
                "bodies are currently identical — nothing guards them against drifting"
            } else {
                "bodies already differ — the copies have drifted"
            };
            out.push(FlowFinding {
                rule: RuleId::DuplicatePrimitive,
                file: graph.fns[id].file,
                line: graph.fns[id].line,
                col: 1,
                message: format!("duplicate definition of determinism-critical `{name}`"),
                notes: vec![
                    format!(
                        "canonical definition at {}:{}",
                        graph.files[graph.fns[canon].file], graph.fns[canon].line
                    ),
                    drift.to_string(),
                ],
            });
        }
    }
}

/// Whitespace-normalized body text of a function, for drift comparison.
fn normalized_body(inputs: &[FlowInput<'_>], graph: &CallGraph, id: usize) -> String {
    let f = &graph.fns[id];
    let (start, end) = f.body_lines;
    let cleaned = &inputs[f.file].sc.cleaned;
    cleaned[start.saturating_sub(1)..end.min(cleaned.len())]
        .iter()
        .flat_map(|l| l.split_whitespace())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn run(files: &[(&str, &str)]) -> Vec<FlowFinding> {
        let scans: Vec<(&str, Scanned)> =
            files.iter().map(|&(rel, src)| (rel, scan(src))).collect();
        let inputs: Vec<FlowInput<'_>> =
            scans.iter().map(|(rel, sc)| FlowInput { rel, sc, allowed: Vec::new() }).collect();
        analyze(&inputs, &RuleId::ALL)
    }

    #[test]
    fn taint_flows_across_files_into_a_sink() {
        let findings = run(&[
            (
                "a.rs",
                "pub fn stamp_now() -> u64 {\n    Instant::now().elapsed().as_nanos() as u64\n}\n",
            ),
            (
                "b.rs",
                "pub fn keyed() -> u64 {\n    let t = stamp_now();\n    fnv64(&t.to_le_bytes())\n}\n",
            ),
        ]);
        let r8: Vec<_> =
            findings.iter().filter(|f| f.rule == RuleId::TaintReachesFingerprint).collect();
        assert_eq!(r8.len(), 1, "{findings:?}");
        let f = r8[0];
        assert_eq!((f.file, f.line), (1, 3));
        assert!(f.message.contains("wall-clock"), "{}", f.message);
        assert!(f
            .notes
            .iter()
            .any(|n| n.contains("source: `Instant::now`") && n.contains("a.rs:2")));
        assert!(f.notes.iter().any(|n| n.contains("via `stamp_now`")), "{:?}", f.notes);
        assert!(f.notes.iter().any(|n| n.contains("sink: `fnv64`")), "{:?}", f.notes);
    }

    #[test]
    fn audited_sources_do_not_seed() {
        let src = "pub fn stamp() -> u64 {\n    let t = Instant::now();\n    fnv64(&[1])\n}\n";
        let sc = scan(src);
        let inputs = [FlowInput { rel: "a.rs", sc: &sc, allowed: vec![(2, RuleId::WallClock)] }];
        let findings = analyze(&inputs, &RuleId::ALL);
        assert!(findings.is_empty(), "{findings:?}");
        // Without the allow, the same code is a finding.
        let inputs = [FlowInput { rel: "a.rs", sc: &sc, allowed: Vec::new() }];
        assert_eq!(analyze(&inputs, &RuleId::ALL).len(), 1);
    }

    #[test]
    fn recursive_call_graphs_reach_fixpoint() {
        let findings = run(&[(
            "a.rs",
            "fn ping(n: u64) -> u64 {\n    if n == 0 { SystemTime::now(); 0 } else { pong(n - 1) }\n}\n\
             fn pong(n: u64) -> u64 {\n    ping(n)\n}\n\
             fn out() -> u64 {\n    fnv64_parts(&[&ping(3).to_le_bytes()])\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::TaintReachesFingerprint);
    }

    #[test]
    fn default_hasher_reports_r11() {
        let findings = run(&[(
            "a.rs",
            "fn mix() -> u64 {\n    let h = DefaultHasher::new();\n    content_hash(h.finish())\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::DefaultHasherOutput);
        // Hasher use with no sink reach is not a finding.
        let quiet = run(&[(
            "a.rs",
            "fn dedup() -> u64 {\n    let h = DefaultHasher::new();\n    h.finish()\n}\n",
        )]);
        assert!(quiet.is_empty(), "{quiet:?}");
    }

    #[test]
    fn r9_and_r10_fire_inside_par_regions_only() {
        let findings = run(&[(
            "a.rs",
            "fn merge(out: &Mutex<Vec<u64>>) {\n    par_map_dynamic(8, |i| {\n        \
             out.lock().unwrap().push(i);\n    });\n    out.lock().unwrap().push(99);\n}\n\
             fn acc(t: &Mutex<f64>) {\n    s.spawn(move || {\n        *t.lock().unwrap() += 0.5;\n    });\n}\n",
        )]);
        let r9: Vec<_> =
            findings.iter().filter(|f| f.rule == RuleId::UnorderedParallelMerge).collect();
        assert_eq!(r9.len(), 1, "{findings:?}");
        assert_eq!(r9[0].line, 3, "the push outside the region is fine");
        let r10: Vec<_> =
            findings.iter().filter(|f| f.rule == RuleId::LockedAccumulation).collect();
        assert_eq!(r10.len(), 1, "{findings:?}");
        assert_eq!(r10[0].line, 9);
    }

    #[test]
    fn duplicate_primitives_are_flagged_with_drift_status() {
        let findings = run(&[
            ("a.rs", "pub fn fnv64(b: &[u8]) -> u64 {\n    fold(b)\n}\n"),
            ("b.rs", "pub fn fnv64(b: &[u8]) -> u64 {\n    fold(b)\n}\n"),
            ("c.rs", "pub fn fnv64(b: &[u8]) -> u64 {\n    fold_differently(b)\n}\n"),
        ]);
        let r12: Vec<_> =
            findings.iter().filter(|f| f.rule == RuleId::DuplicatePrimitive).collect();
        assert_eq!(r12.len(), 2, "{findings:?}");
        assert!(r12[0].notes.iter().any(|n| n.contains("canonical definition at a.rs:1")));
        assert!(r12[0].notes.iter().any(|n| n.contains("currently identical")));
        assert!(r12[1].notes.iter().any(|n| n.contains("have drifted")), "{r12:?}");
        // A method named like a primitive is not a duplicate.
        let quiet = run(&[
            ("a.rs", "pub fn unit(h: u64) -> f64 {\n    0.0\n}\n"),
            ("b.rs", "impl Draw {\n    pub fn unit(&self) -> f64 {\n        0.1\n    }\n}\n"),
        ]);
        assert!(quiet.iter().all(|f| f.rule != RuleId::DuplicatePrimitive), "{quiet:?}");
    }

    #[test]
    fn exempt_paths_do_not_seed_or_fire() {
        // Env reads in the sanctioned capture module feed the fingerprint
        // by design.
        let findings = run(&[(
            "crates/core/src/environment.rs",
            "pub fn capture() -> u64 {\n    let v = env::var(\"HOME\");\n    \
             fnv64_parts(&[v.as_deref().unwrap_or(\"\").as_bytes()])\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
        // R9/R10 stay quiet in the canonical parallel modules.
        let findings = run(&[(
            "crates/math/src/parallel.rs",
            "fn m(out: &Mutex<Vec<u64>>) {\n    s.spawn(|| {\n        \
             out.lock().unwrap().push(1);\n    });\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn inactive_rules_do_not_run() {
        let scans = scan("fn f() -> u64 {\n    SystemTime::now();\n    fnv64(&[1])\n}\n");
        let inputs = [FlowInput { rel: "a.rs", sc: &scans, allowed: Vec::new() }];
        let only_r12 = analyze(&inputs, &[RuleId::DuplicatePrimitive]);
        assert!(only_r12.is_empty(), "{only_r12:?}");
    }
}
