//! Workspace call graph over extracted items.
//!
//! Links every [`CallSite`](crate::items::CallSite) to the workspace
//! `fn` definitions it can refer to. Resolution is name-based with three
//! refinements applied in order — same-file definitions win, then
//! written path prefixes and `use` imports confirm cross-file targets,
//! and bare names (including method calls) only link when the name is
//! unique workspace-wide. Unresolvable calls (std, vendored crates,
//! common method names) simply produce no edge; the taint pass treats
//! well-known sink/source *names* specially so resolution gaps never
//! hide a finding, only shorten a path.

use crate::items::{CallSite, FileItems};
use std::collections::BTreeMap;

/// One function node in the graph.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into [`CallGraph::files`].
    pub file: usize,
    /// Simple name.
    pub name: String,
    /// Scope-qualified name within its file.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inclusive body line span.
    pub body_lines: (usize, usize),
    /// Raw call sites in the body (resolved or not), in source order.
    pub calls: Vec<CallSite>,
}

/// A resolved caller → callee edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Calling function (index into [`CallGraph::fns`]).
    pub caller: usize,
    /// Called function (index into [`CallGraph::fns`]).
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Display paths, parallel to the input file order.
    pub files: Vec<String>,
    /// Every `fn` in the workspace, grouped by file in input order.
    pub fns: Vec<FnInfo>,
    /// Resolved edges in deterministic (caller, source-order) order.
    pub edges: Vec<CallEdge>,
    callers_of: Vec<Vec<usize>>,
    callees_of: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from per-file extracted items. `files` pairs each
    /// display path with its items; input order fixes all node ids, so
    /// the graph is deterministic for a sorted workspace walk.
    pub fn build(files: &[(String, FileItems)]) -> CallGraph {
        let mut g = CallGraph::default();
        // Flatten definitions and index them by simple name.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, (path, items)) in files.iter().enumerate() {
            g.files.push(path.clone());
            for def in &items.fns {
                let id = g.fns.len();
                by_name.entry(def.name.as_str()).or_default().push(id);
                g.fns.push(FnInfo {
                    file: fi,
                    name: def.name.clone(),
                    qual: def.qual.clone(),
                    line: def.line,
                    body_lines: def.body_lines,
                    calls: def.calls.clone(),
                });
            }
        }
        // Per-file imported-name set, for bare-call confirmation.
        let imported: Vec<Vec<&str>> = files
            .iter()
            .map(|(_, items)| items.imports.iter().map(|u| u.alias.as_str()).collect())
            .collect();
        // Resolve each call site.
        for caller in 0..g.fns.len() {
            let file = g.fns[caller].file;
            for call in g.fns[caller].calls.clone() {
                let Some(cands) = by_name.get(call.name.as_str()) else { continue };
                let targets = resolve(&g, caller, &call, cands, &imported[file]);
                for callee in targets {
                    let edge = CallEdge { caller, callee, line: call.line };
                    if !g.edges.contains(&edge) {
                        g.edges.push(edge);
                    }
                }
            }
        }
        g.callers_of = vec![Vec::new(); g.fns.len()];
        g.callees_of = vec![Vec::new(); g.fns.len()];
        for (ei, e) in g.edges.iter().enumerate() {
            g.callers_of[e.callee].push(ei);
            g.callees_of[e.caller].push(ei);
        }
        g
    }

    /// Edges whose callee is `id`.
    pub fn callers_of(&self, id: usize) -> impl Iterator<Item = &CallEdge> {
        self.callers_of[id].iter().map(|&ei| &self.edges[ei])
    }

    /// Edges whose caller is `id`.
    pub fn callees_of(&self, id: usize) -> impl Iterator<Item = &CallEdge> {
        self.callees_of[id].iter().map(|&ei| &self.edges[ei])
    }

    /// The function in `file` whose body span contains `line`, preferring
    /// the innermost (latest-starting) match so nested fns win.
    pub fn fn_at(&self, file: usize, line: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && (f.line..=f.body_lines.1).contains(&line))
            .max_by_key(|(_, f)| f.line)
            .map(|(id, _)| id)
    }

    /// Display label `path::qual` for diagnostics.
    pub fn label(&self, id: usize) -> String {
        format!("{}::{}", self.files[self.fns[id].file], self.fns[id].qual)
    }
}

/// Resolution policy, in priority order (see module docs).
fn resolve(
    g: &CallGraph,
    caller: usize,
    call: &CallSite,
    cands: &[usize],
    imports: &[&str],
) -> Vec<usize> {
    let file = g.fns[caller].file;
    let cands: Vec<usize> = cands.to_vec();
    // 1. Same-file definitions win outright.
    let local: Vec<usize> = cands.iter().copied().filter(|&c| g.fns[c].file == file).collect();
    if !local.is_empty() {
        return local;
    }
    // 2. A written path (`hash::fnv64(..)`) or an import of the name
    //    confirms a cross-file free-function call: link all candidates.
    if !call.path.is_empty() || imports.contains(&call.name.as_str()) {
        return cands;
    }
    // 3. Bare names (incl. method calls) link only when unambiguous.
    if cands.len() == 1 {
        return cands;
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(String, FileItems)> = files
            .iter()
            .map(|(p, src)| (p.to_string(), extract(&lex(&scan(src).cleaned))))
            .collect();
        CallGraph::build(&parsed)
    }

    #[test]
    fn same_file_calls_resolve_locally() {
        let g =
            graph_of(&[("a.rs", "fn helper() -> u64 { 1 }\nfn main_fn() -> u64 { helper() }\n")]);
        assert_eq!(g.edges.len(), 1);
        let e = g.edges[0];
        assert_eq!(g.fns[e.caller].name, "main_fn");
        assert_eq!(g.fns[e.callee].name, "helper");
    }

    #[test]
    fn cross_file_calls_need_path_or_import_when_ambiguous() {
        let g = graph_of(&[
            ("a.rs", "fn work() -> u64 { 1 }\n"),
            ("b.rs", "fn work() -> u64 { 2 }\n"),
            // Ambiguous bare call: two candidate `work` defs, no import.
            ("c.rs", "fn c1() -> u64 { work() }\n"),
            // Written path confirms a free-fn call: links both candidates.
            ("d.rs", "fn d1() -> u64 { jobs::work() }\n"),
        ]);
        let c1 = g.fns.iter().position(|f| f.name == "c1").unwrap();
        assert_eq!(g.callees_of(c1).count(), 0, "ambiguous bare call drops");
        let d1 = g.fns.iter().position(|f| f.name == "d1").unwrap();
        assert_eq!(g.callees_of(d1).count(), 2, "pathed call links candidates");
    }

    #[test]
    fn unique_bare_names_link_across_files() {
        let g = graph_of(&[
            ("a.rs", "fn only_here() -> u64 { 7 }\n"),
            ("b.rs", "fn user() -> u64 { only_here() }\n"),
        ]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.label(g.edges[0].callee), "a.rs::only_here");
    }

    #[test]
    fn fn_at_prefers_innermost() {
        let g = graph_of(&[(
            "a.rs",
            "fn outer() {\n    fn inner() {\n        work();\n    }\n}\nfn work() {}\n",
        )]);
        let id = g.fn_at(0, 3).unwrap();
        assert_eq!(g.fns[id].name, "inner");
        assert_eq!(g.fn_at(0, 6).map(|i| g.fns[i].name.clone()).unwrap(), "work");
    }

    #[test]
    fn recursion_produces_a_self_edge_not_a_hang() {
        let g = graph_of(&[(
            "a.rs",
            "fn rec(n: u64) -> u64 { if n == 0 { 0 } else { rec(n - 1) } }\n",
        )]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].caller, g.edges[0].callee);
    }
}
