//! The analyzer pipeline.
//!
//! Three phases, in order:
//!
//! 1. **Per-file scan** — read, scan, collect directives and apply the
//!    single-site rules (R1..R7, A1). Files are independent here, so
//!    this phase fans out across [`Lint::jobs`] threads; results are
//!    reassembled in workspace order, so the report is byte-identical
//!    for every job count.
//! 2. **Flow pass** — one serial walk over the workspace call graph for
//!    the cross-file rules R8..R12 (see [`taint`]). Flow findings honor
//!    the same allow directives, anchored at the finding line.
//! 3. **Assembly** — unused-allow accounting (A2) and the final
//!    deterministic sort.

use crate::allow::{self, Allow, Parsed};
use crate::report::{Diagnostic, LintReport, Severity};
use crate::rules::{self, RuleId};
use crate::scanner::{self, Scanned};
use crate::taint::{self, FlowInput};
use crate::workspace::{SourceFile, Workspace};
use std::io;

/// A configured lint pass.
#[derive(Debug, Clone)]
pub struct Lint {
    rules: Vec<RuleId>,
    flow: bool,
    jobs: usize,
}

impl Default for Lint {
    fn default() -> Self {
        Self::new()
    }
}

/// Phase-1 output for one file.
struct PreFile {
    sc: Scanned,
    allows: Vec<Allow>,
    diags: Vec<Diagnostic>,
}

impl Lint {
    /// A pass with every rule active, the flow pass on, single-threaded.
    pub fn new() -> Self {
        Self { rules: RuleId::ALL.to_vec(), flow: true, jobs: 1 }
    }

    /// A pass restricted to `rules` (directives naming inactive rules are
    /// ignored entirely).
    pub fn with_rules(rules: Vec<RuleId>) -> Self {
        Self { rules, flow: true, jobs: 1 }
    }

    /// Enables or disables the cross-file flow pass (R8..R12).
    pub fn flow(mut self, on: bool) -> Self {
        self.flow = on;
        self
    }

    /// Sets the phase-1 worker-thread count (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The active rule set.
    pub fn rules(&self) -> &[RuleId] {
        &self.rules
    }

    fn active(&self, rule: RuleId) -> bool {
        self.rules.contains(&rule)
    }

    /// Lints every file in the workspace. I/O errors (unreadable or
    /// non-UTF-8 files) abort the pass — a file the analyzer cannot read
    /// is a file it cannot vouch for.
    pub fn run(&self, ws: &Workspace) -> io::Result<LintReport> {
        // Phase 1: independent per-file scans, fanned out over contiguous
        // index chunks so reassembly is a no-op.
        let texts = read_all(ws, self.jobs)?;
        let mut pres: Vec<PreFile> = Vec::with_capacity(ws.files.len());
        if self.jobs <= 1 || ws.files.len() < 2 {
            for (file, text) in ws.files.iter().zip(&texts) {
                pres.push(self.scan_file(file, text));
            }
        } else {
            let jobs = self.jobs.min(ws.files.len());
            let chunk = ws.files.len().div_ceil(jobs);
            let mut parts: Vec<Vec<PreFile>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (files, texts) in ws.files.chunks(chunk).zip(texts.chunks(chunk)) {
                    handles.push(scope.spawn(move || {
                        files
                            .iter()
                            .zip(texts)
                            .map(|(f, t)| self.scan_file(f, t))
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    parts.push(h.join().expect("scan worker panicked"));
                }
            });
            pres = parts.into_iter().flatten().collect();
        }

        // Phase 2: the serial cross-file flow pass.
        if self.flow && self.rules.iter().any(|r| r.is_flow()) {
            self.flow_pass(ws, &mut pres);
        }

        // Phase 3: unused-allow accounting and the deterministic sort.
        let mut diagnostics = Vec::new();
        let mut allows_honored = 0usize;
        for (file, pre) in ws.files.iter().zip(pres) {
            diagnostics.extend(pre.diags);
            for a in &pre.allows {
                if a.used {
                    allows_honored += 1;
                } else {
                    diagnostics.push(Diagnostic {
                        code: "A2",
                        rule: "unused-allow",
                        severity: Severity::Warn,
                        file: file.rel.clone(),
                        line: a.line,
                        col: a.col,
                        message: format!(
                            "allow({}) suppresses nothing on line {}",
                            a.rule.name(),
                            a.target_line
                        ),
                        hint: "delete the stale directive so suppressions stay meaningful"
                            .to_string(),
                        notes: Vec::new(),
                    });
                }
            }
        }
        diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.code).cmp(&(&b.file, b.line, b.col, b.code))
        });
        Ok(LintReport { files_scanned: ws.files.len(), diagnostics, allows_honored })
    }

    /// Lints one in-memory file through the full pipeline (flow pass
    /// included, over the one-file "workspace"); appends diagnostics and
    /// returns how many allow directives suppressed something. Test and
    /// doc surface — `run` is the real entry point.
    pub fn lint_file(&self, file: &SourceFile, text: &str, out: &mut Vec<Diagnostic>) -> usize {
        let mut pre = self.scan_file(file, text);
        if self.flow && self.rules.iter().any(|r| r.is_flow()) {
            let allowed: Vec<(usize, RuleId)> =
                pre.allows.iter().map(|a| (a.target_line, a.rule)).collect();
            let inputs = [FlowInput { rel: &file.rel, sc: &pre.sc, allowed }];
            for finding in taint::analyze(&inputs, &self.rules) {
                if suppress(&mut pre.allows, finding.rule, finding.line) {
                    continue;
                }
                let mut d =
                    diagnostic(file, finding.rule, finding.line, finding.col, finding.message);
                d.notes = finding.notes;
                pre.diags.push(d);
            }
        }
        let honored = pre.allows.iter().filter(|a| a.used).count();
        for a in &pre.allows {
            if !a.used {
                pre.diags.push(Diagnostic {
                    code: "A2",
                    rule: "unused-allow",
                    severity: Severity::Warn,
                    file: file.rel.clone(),
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "allow({}) suppresses nothing on line {}",
                        a.rule.name(),
                        a.target_line
                    ),
                    hint: "delete the stale directive so suppressions stay meaningful".to_string(),
                    notes: Vec::new(),
                });
            }
        }
        out.extend(pre.diags);
        honored
    }

    /// Phase 1 for one file: scan + directives + single-site rules.
    fn scan_file(&self, file: &SourceFile, text: &str) -> PreFile {
        let sc = scanner::scan(text);
        let mut diags = Vec::new();
        let mut allows = self.collect_allows(file, &sc, &mut diags);
        for rule in &self.rules {
            match rule {
                RuleId::ThreadFloatMerge => {
                    self.check_thread_merge(file, &sc, &mut allows, &mut diags)
                }
                RuleId::MissingUnsafeForbid => check_crate_root(file, &sc, &mut diags),
                rule if rule.is_flow() => {}
                rule => self.check_tokens(file, *rule, &sc, &mut allows, &mut diags),
            }
        }
        PreFile { sc, allows, diags }
    }

    /// Phase 2: flow findings for the whole workspace, suppressed against
    /// the owning file's directives.
    fn flow_pass(&self, ws: &Workspace, pres: &mut [PreFile]) {
        let inputs: Vec<FlowInput<'_>> = ws
            .files
            .iter()
            .zip(pres.iter())
            .map(|(file, pre)| FlowInput {
                rel: &file.rel,
                sc: &pre.sc,
                allowed: pre.allows.iter().map(|a| (a.target_line, a.rule)).collect(),
            })
            .collect();
        let findings = taint::analyze(&inputs, &self.rules);
        drop(inputs);
        for finding in findings {
            let pre = &mut pres[finding.file];
            if suppress(&mut pre.allows, finding.rule, finding.line) {
                continue;
            }
            let file = &ws.files[finding.file];
            let mut d = diagnostic(file, finding.rule, finding.line, finding.col, finding.message);
            d.notes = finding.notes;
            pre.diags.push(d);
        }
    }

    /// Parses every comment for directives; malformed ones become `A1`
    /// diagnostics immediately.
    fn collect_allows(
        &self,
        file: &SourceFile,
        sc: &Scanned,
        out: &mut Vec<Diagnostic>,
    ) -> Vec<Allow> {
        let mut allows = Vec::new();
        for c in &sc.comments {
            match allow::parse(c) {
                Parsed::NotDirective => {}
                Parsed::Malformed(msg) => out.push(Diagnostic {
                    code: "A1",
                    rule: "malformed-allow",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: c.line,
                    col: c.col,
                    message: msg,
                    hint: "write: treu-lint: allow(<rule>, reason = \"<why>\")".to_string(),
                    notes: Vec::new(),
                }),
                Parsed::Directive { rule, reason } => {
                    if !self.active(rule) {
                        continue;
                    }
                    // A trailing directive covers its own line; a
                    // directive alone on a line covers the next line.
                    let code_before = sc
                        .cleaned
                        .get(c.line - 1)
                        .map(|l| l.chars().take(c.col - 1).any(|ch| !ch.is_whitespace()))
                        .unwrap_or(false);
                    let target_line = if code_before { c.line } else { c.line + 1 };
                    allows.push(Allow {
                        rule,
                        reason,
                        target_line,
                        line: c.line,
                        col: c.col,
                        used: false,
                    });
                }
            }
        }
        allows
    }

    fn check_tokens(
        &self,
        file: &SourceFile,
        rule: RuleId,
        sc: &Scanned,
        allows: &mut [Allow],
        out: &mut Vec<Diagnostic>,
    ) {
        if rule.exempt_paths().iter().any(|p| file.rel.ends_with(p)) {
            return;
        }
        for (idx, line) in sc.cleaned.iter().enumerate() {
            let lineno = idx + 1;
            for token in rule.tokens() {
                for col in rules::find_token(line, token) {
                    if suppress(allows, rule, lineno) {
                        continue;
                    }
                    out.push(diagnostic(file, rule, lineno, col, rule.message_for(token)));
                }
            }
        }
    }

    /// R6: `+=` accumulation on float evidence inside spawn regions that
    /// are not one of the canonical-merge modules.
    fn check_thread_merge(
        &self,
        file: &SourceFile,
        sc: &Scanned,
        allows: &mut [Allow],
        out: &mut Vec<Diagnostic>,
    ) {
        let rule = RuleId::ThreadFloatMerge;
        if rule.exempt_paths().iter().any(|p| file.rel.ends_with(p)) {
            return;
        }
        for &(start, end) in &sc.spawn_regions {
            let region: Vec<&str> = sc.cleaned[start - 1..end.min(sc.cleaned.len())]
                .iter()
                .map(String::as_str)
                .collect();
            let float_idents = rules::float_accumulator_idents(&region);
            for (off, line) in region.iter().enumerate() {
                let lineno = start + off;
                let Some(pos) = line.find("+=") else { continue };
                let evidence = rules::has_float_evidence(line)
                    || float_idents.iter().any(|id| !rules::find_token(line, id).is_empty());
                if !evidence || suppress(allows, rule, lineno) {
                    continue;
                }
                let col = line[..pos].chars().count() + 1;
                out.push(diagnostic(file, rule, lineno, col, rule.message_for("+=")));
            }
        }
    }
}

/// Reads every workspace file, fanning the I/O out with the same
/// chunking as phase 1. The first error (in workspace order) wins.
fn read_all(ws: &Workspace, jobs: usize) -> io::Result<Vec<String>> {
    let read = |file: &SourceFile| {
        std::fs::read_to_string(&file.path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", file.path.display())))
    };
    if jobs <= 1 || ws.files.len() < 2 {
        return ws.files.iter().map(read).collect();
    }
    let jobs = jobs.min(ws.files.len());
    let chunk = ws.files.len().div_ceil(jobs);
    let mut parts: Vec<io::Result<Vec<String>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for files in ws.files.chunks(chunk) {
            handles
                .push(scope.spawn(move || files.iter().map(read).collect::<io::Result<Vec<_>>>()));
        }
        for h in handles {
            parts.push(h.join().expect("read worker panicked"));
        }
    });
    let mut texts = Vec::with_capacity(ws.files.len());
    for part in parts {
        texts.extend(part?);
    }
    Ok(texts)
}

/// R7: crate roots must carry an unsafe_code attribute. Not suppressible.
fn check_crate_root(file: &SourceFile, sc: &Scanned, out: &mut Vec<Diagnostic>) {
    if !file.is_crate_root {
        return;
    }
    let has_attr = sc.cleaned.iter().any(|l| {
        let flat: String = l.chars().filter(|c| !c.is_whitespace()).collect();
        flat.contains("#![forbid(unsafe_code)]") || flat.contains("#![deny(unsafe_code)]")
    });
    if !has_attr {
        let rule = RuleId::MissingUnsafeForbid;
        out.push(diagnostic(file, rule, 1, 1, rule.message_for("")));
    }
}

/// Marks a matching allow as used and reports whether one matched.
fn suppress(allows: &mut [Allow], rule: RuleId, line: usize) -> bool {
    if !rule.suppressible() {
        return false;
    }
    let mut hit = false;
    for a in allows.iter_mut() {
        if a.rule == rule && a.target_line == line {
            a.used = true;
            hit = true;
        }
    }
    hit
}

fn diagnostic(
    file: &SourceFile,
    rule: RuleId,
    line: usize,
    col: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code: rule.code(),
        rule: rule.name(),
        severity: rule.severity(),
        file: file.rel.clone(),
        line,
        col,
        message,
        hint: rule.hint().to_string(),
        notes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_source(rel: &str, text: &str) -> (usize, Vec<Diagnostic>) {
        let file = SourceFile {
            path: std::path::PathBuf::from(rel),
            rel: rel.to_string(),
            is_crate_root: rel == "src/lib.rs" || rel.ends_with("/src/lib.rs"),
        };
        let mut out = Vec::new();
        let honored = Lint::new().lint_file(&file, text, &mut out);
        (honored, out)
    }

    #[test]
    fn hazard_tokens_in_strings_and_comments_are_inert() {
        let hm = "HashMap";
        let src = format!("// a {hm} note\nlet s = \"{hm}\";\n");
        let (_, diags) = lint_source("src/a.rs", &src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let src = "fn f() -> std::time::Instant {\n    \
                   std::time::Instant::now() // treu-lint: allow(wall-clock, reason = \"demo\")\n}\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert_eq!(honored, 1);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn standalone_allow_covers_next_line_only() {
        let src = "// treu-lint: allow(wall-clock, reason = \"demo\")\n\
                   let a = std::time::Instant::now();\n\
                   let b = std::time::Instant::now();\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert_eq!(honored, 1);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].code, "R3");
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_suppress() {
        let src = "// treu-lint: allow(env-read, reason = \"mismatched\")\n\
                   let a = std::time::Instant::now();\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert_eq!(honored, 0);
        // The R3 hit plus the unused env-read allow.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "R3"));
        assert!(diags.iter().any(|d| d.code == "A2"));
    }

    #[test]
    fn environment_module_is_exempt_from_env_read() {
        let src = "pub fn cap(n: &str) -> Option<String> { std::env::var(n).ok() }\n";
        let (_, diags) = lint_source("crates/core/src/environment.rs", src);
        assert!(diags.iter().all(|d| d.code != "R4"), "{diags:?}");
        let (_, diags) = lint_source("crates/other/src/x.rs", src);
        assert!(diags.iter().any(|d| d.code == "R4"), "{diags:?}");
    }

    #[test]
    fn crate_root_attribute_is_required_and_unsuppressible() {
        let (_, diags) = lint_source("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "R7");
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        let (_, diags) = lint_source("crates/x/src/lib.rs", ok);
        assert!(diags.is_empty(), "{diags:?}");
        // deny also satisfies the rule (for justified exceptions).
        let deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
        let (_, diags) = lint_source("crates/x/src/lib.rs", deny);
        assert!(diags.is_empty(), "{diags:?}");
        // Non-roots are not checked.
        let (_, diags) = lint_source("crates/x/src/other.rs", "pub fn f() {}\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn rule_filter_disables_other_rules_and_their_allows() {
        let src = "// treu-lint: allow(wall-clock, reason = \"demo\")\n\
                   let a = std::time::Instant::now();\n\
                   static mut X: u64 = 0;\n";
        let file = SourceFile {
            path: std::path::PathBuf::from("src/a.rs"),
            rel: "src/a.rs".to_string(),
            is_crate_root: false,
        };
        let mut out = Vec::new();
        Lint::with_rules(vec![RuleId::RelaxedAtomics]).lint_file(&file, src, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, "R5");
    }

    #[test]
    fn thread_merge_flags_float_accumulation_in_spawn() {
        let src = "pub fn s(c: &[f64]) -> f64 {\n    let mut t = 0.0;\n    scope(|s| {\n        \
                   s.spawn(|| {\n            let mut local = 0.0;\n            for v in c {\n                \
                   local += *v;\n            }\n            t += local;\n        });\n    });\n    t\n}\n";
        let (_, diags) = lint_source("crates/x/src/m.rs", src);
        let r6: Vec<_> = diags.iter().filter(|d| d.code == "R6").collect();
        assert_eq!(r6.len(), 2, "{diags:?}");
        assert_eq!(r6[0].line, 7);
        assert_eq!(r6[1].line, 9);
    }

    #[test]
    fn thread_merge_ignores_integer_counters_and_outside_code() {
        let src = "pub fn s(c: &[u64]) -> u64 {\n    let mut t = 0u64;\n    scope(|s| {\n        \
                   s.spawn(|| {\n            let mut n = 0usize;\n            n += 1;\n        });\n    });\n    \
                   t += 9;\n    t\n}\n";
        let (_, diags) = lint_source("crates/x/src/m.rs", src);
        assert!(diags.iter().all(|d| d.code != "R6"), "{diags:?}");
    }

    #[test]
    fn canonical_merge_modules_are_exempt_from_thread_merge() {
        let src = "fn m() {\n    s.spawn(|| {\n        let mut acc = 0.0;\n        acc += 1.5;\n    });\n}\n";
        let (_, diags) = lint_source("crates/math/src/parallel.rs", src);
        assert!(diags.iter().all(|d| d.code != "R6"), "{diags:?}");
        let (_, diags) = lint_source("crates/other/src/x.rs", src);
        assert!(diags.iter().any(|d| d.code == "R6"));
    }

    #[test]
    fn malformed_directive_is_an_error_and_does_not_suppress() {
        let src = "// treu-lint: allow(wall-clock)\nlet a = std::time::Instant::now();\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert_eq!(honored, 0);
        assert!(diags.iter().any(|d| d.code == "A1"));
        assert!(diags.iter().any(|d| d.code == "R3"));
    }

    #[test]
    fn flow_findings_flow_through_lint_file() {
        let src = "fn stamp() -> u64 {\n    let t = SystemTime::now();\n    \
                   fnv64(&[1])\n}\n";
        let (_, diags) = lint_source("src/a.rs", src);
        let r8: Vec<_> = diags.iter().filter(|d| d.code == "R8").collect();
        assert_eq!(r8.len(), 1, "{diags:?}");
        assert_eq!(r8[0].line, 3);
        assert!(!r8[0].notes.is_empty());
    }

    #[test]
    fn flow_findings_are_suppressible_at_the_sink_line() {
        let src = "fn stamp() -> u64 {\n    let t = SystemTime::now();\n    \
                   fnv64(&[1]) // treu-lint: allow(taint-reaches-fingerprint, reason = \"demo audit\")\n}\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert!(diags.iter().all(|d| d.code != "R8"), "{diags:?}");
        assert!(honored >= 1);
    }

    #[test]
    fn no_flow_disables_r8_through_r12() {
        let src = "fn stamp() -> u64 {\n    let t = SystemTime::now();\n    fnv64(&[1])\n}\n";
        let file = SourceFile {
            path: std::path::PathBuf::from("src/a.rs"),
            rel: "src/a.rs".to_string(),
            is_crate_root: false,
        };
        let mut out = Vec::new();
        Lint::new().flow(false).lint_file(&file, src, &mut out);
        assert!(out.iter().all(|d| d.code != "R8"), "{out:?}");
        assert!(out.iter().any(|d| d.code == "R3"), "token rules still run");
    }
}
