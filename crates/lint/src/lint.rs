//! The analyzer pipeline: scan each file, honor suppression directives,
//! apply every active rule, and assemble a [`LintReport`].

use crate::allow::{self, Allow, Parsed};
use crate::report::{Diagnostic, LintReport, Severity};
use crate::rules::{self, RuleId};
use crate::scanner::{self, Scanned};
use crate::workspace::{SourceFile, Workspace};
use std::io;

/// A configured lint pass.
#[derive(Debug, Clone)]
pub struct Lint {
    rules: Vec<RuleId>,
}

impl Default for Lint {
    fn default() -> Self {
        Self::new()
    }
}

impl Lint {
    /// A pass with every rule active.
    pub fn new() -> Self {
        Self { rules: RuleId::ALL.to_vec() }
    }

    /// A pass restricted to `rules` (directives naming inactive rules are
    /// ignored entirely).
    pub fn with_rules(rules: Vec<RuleId>) -> Self {
        Self { rules }
    }

    /// The active rule set.
    pub fn rules(&self) -> &[RuleId] {
        &self.rules
    }

    fn active(&self, rule: RuleId) -> bool {
        self.rules.contains(&rule)
    }

    /// Lints every file in the workspace. I/O errors (unreadable or
    /// non-UTF-8 files) abort the pass — a file the analyzer cannot read
    /// is a file it cannot vouch for.
    pub fn run(&self, ws: &Workspace) -> io::Result<LintReport> {
        let mut diagnostics = Vec::new();
        let mut allows_honored = 0usize;
        for file in &ws.files {
            let text = std::fs::read_to_string(&file.path)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", file.path.display())))?;
            allows_honored += self.lint_file(file, &text, &mut diagnostics);
        }
        diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.code).cmp(&(&b.file, b.line, b.col, b.code))
        });
        Ok(LintReport { files_scanned: ws.files.len(), diagnostics, allows_honored })
    }

    /// Lints one file, appending diagnostics; returns how many allow
    /// directives suppressed something.
    fn lint_file(&self, file: &SourceFile, text: &str, out: &mut Vec<Diagnostic>) -> usize {
        let sc = scanner::scan(text);
        let mut allows = self.collect_allows(file, &sc, out);

        for rule in &self.rules {
            match rule {
                RuleId::ThreadFloatMerge => self.check_thread_merge(file, &sc, &mut allows, out),
                RuleId::MissingUnsafeForbid => check_crate_root(file, &sc, out),
                rule => self.check_tokens(file, *rule, &sc, &mut allows, out),
            }
        }

        let mut honored = 0;
        for a in &allows {
            if a.used {
                honored += 1;
            } else {
                out.push(Diagnostic {
                    code: "A2",
                    rule: "unused-allow",
                    severity: Severity::Warn,
                    file: file.rel.clone(),
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "allow({}) suppresses nothing on line {}",
                        a.rule.name(),
                        a.target_line
                    ),
                    hint: "delete the stale directive so suppressions stay meaningful".to_string(),
                });
            }
        }
        honored
    }

    /// Parses every comment for directives; malformed ones become `A1`
    /// diagnostics immediately.
    fn collect_allows(
        &self,
        file: &SourceFile,
        sc: &Scanned,
        out: &mut Vec<Diagnostic>,
    ) -> Vec<Allow> {
        let mut allows = Vec::new();
        for c in &sc.comments {
            match allow::parse(c) {
                Parsed::NotDirective => {}
                Parsed::Malformed(msg) => out.push(Diagnostic {
                    code: "A1",
                    rule: "malformed-allow",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: c.line,
                    col: c.col,
                    message: msg,
                    hint: "write: treu-lint: allow(<rule>, reason = \"<why>\")".to_string(),
                }),
                Parsed::Directive { rule, reason } => {
                    if !self.active(rule) {
                        continue;
                    }
                    // A trailing directive covers its own line; a
                    // directive alone on a line covers the next line.
                    let code_before = sc
                        .cleaned
                        .get(c.line - 1)
                        .map(|l| l.chars().take(c.col - 1).any(|ch| !ch.is_whitespace()))
                        .unwrap_or(false);
                    let target_line = if code_before { c.line } else { c.line + 1 };
                    allows.push(Allow {
                        rule,
                        reason,
                        target_line,
                        line: c.line,
                        col: c.col,
                        used: false,
                    });
                }
            }
        }
        allows
    }

    fn check_tokens(
        &self,
        file: &SourceFile,
        rule: RuleId,
        sc: &Scanned,
        allows: &mut [Allow],
        out: &mut Vec<Diagnostic>,
    ) {
        if rule.exempt_paths().iter().any(|p| file.rel.ends_with(p)) {
            return;
        }
        for (idx, line) in sc.cleaned.iter().enumerate() {
            let lineno = idx + 1;
            for token in rule.tokens() {
                for col in rules::find_token(line, token) {
                    if suppress(allows, rule, lineno) {
                        continue;
                    }
                    out.push(diagnostic(file, rule, lineno, col, rule.message_for(token)));
                }
            }
        }
    }

    /// R6: `+=` accumulation on float evidence inside spawn regions that
    /// are not one of the canonical-merge modules.
    fn check_thread_merge(
        &self,
        file: &SourceFile,
        sc: &Scanned,
        allows: &mut [Allow],
        out: &mut Vec<Diagnostic>,
    ) {
        let rule = RuleId::ThreadFloatMerge;
        if rule.exempt_paths().iter().any(|p| file.rel.ends_with(p)) {
            return;
        }
        for &(start, end) in &sc.spawn_regions {
            let region: Vec<&str> = sc.cleaned[start - 1..end.min(sc.cleaned.len())]
                .iter()
                .map(String::as_str)
                .collect();
            let float_idents = rules::float_accumulator_idents(&region);
            for (off, line) in region.iter().enumerate() {
                let lineno = start + off;
                let Some(pos) = line.find("+=") else { continue };
                let evidence = rules::has_float_evidence(line)
                    || float_idents.iter().any(|id| !rules::find_token(line, id).is_empty());
                if !evidence || suppress(allows, rule, lineno) {
                    continue;
                }
                let col = line[..pos].chars().count() + 1;
                out.push(diagnostic(file, rule, lineno, col, rule.message_for("+=")));
            }
        }
    }
}

/// R7: crate roots must carry an unsafe_code attribute. Not suppressible.
fn check_crate_root(file: &SourceFile, sc: &Scanned, out: &mut Vec<Diagnostic>) {
    if !file.is_crate_root {
        return;
    }
    let has_attr = sc.cleaned.iter().any(|l| {
        let flat: String = l.chars().filter(|c| !c.is_whitespace()).collect();
        flat.contains("#![forbid(unsafe_code)]") || flat.contains("#![deny(unsafe_code)]")
    });
    if !has_attr {
        let rule = RuleId::MissingUnsafeForbid;
        out.push(diagnostic(file, rule, 1, 1, rule.message_for("")));
    }
}

/// Marks a matching allow as used and reports whether one matched.
fn suppress(allows: &mut [Allow], rule: RuleId, line: usize) -> bool {
    if !rule.suppressible() {
        return false;
    }
    let mut hit = false;
    for a in allows.iter_mut() {
        if a.rule == rule && a.target_line == line {
            a.used = true;
            hit = true;
        }
    }
    hit
}

fn diagnostic(
    file: &SourceFile,
    rule: RuleId,
    line: usize,
    col: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code: rule.code(),
        rule: rule.name(),
        severity: rule.severity(),
        file: file.rel.clone(),
        line,
        col,
        message,
        hint: rule.hint().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_source(rel: &str, text: &str) -> (usize, Vec<Diagnostic>) {
        let file = SourceFile {
            path: std::path::PathBuf::from(rel),
            rel: rel.to_string(),
            is_crate_root: rel == "src/lib.rs" || rel.ends_with("/src/lib.rs"),
        };
        let mut out = Vec::new();
        let honored = Lint::new().lint_file(&file, text, &mut out);
        (honored, out)
    }

    #[test]
    fn hazard_tokens_in_strings_and_comments_are_inert() {
        let hm = "HashMap";
        let src = format!("// a {hm} note\nlet s = \"{hm}\";\n");
        let (_, diags) = lint_source("src/a.rs", &src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let src = "fn f() -> std::time::Instant {\n    \
                   std::time::Instant::now() // treu-lint: allow(wall-clock, reason = \"demo\")\n}\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert_eq!(honored, 1);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn standalone_allow_covers_next_line_only() {
        let src = "// treu-lint: allow(wall-clock, reason = \"demo\")\n\
                   let a = std::time::Instant::now();\n\
                   let b = std::time::Instant::now();\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert_eq!(honored, 1);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].code, "R3");
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_suppress() {
        let src = "// treu-lint: allow(env-read, reason = \"mismatched\")\n\
                   let a = std::time::Instant::now();\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert_eq!(honored, 0);
        // The R3 hit plus the unused env-read allow.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "R3"));
        assert!(diags.iter().any(|d| d.code == "A2"));
    }

    #[test]
    fn environment_module_is_exempt_from_env_read() {
        let src = "pub fn cap(n: &str) -> Option<String> { std::env::var(n).ok() }\n";
        let (_, diags) = lint_source("crates/core/src/environment.rs", src);
        assert!(diags.iter().all(|d| d.code != "R4"), "{diags:?}");
        let (_, diags) = lint_source("crates/other/src/x.rs", src);
        assert!(diags.iter().any(|d| d.code == "R4"), "{diags:?}");
    }

    #[test]
    fn crate_root_attribute_is_required_and_unsuppressible() {
        let (_, diags) = lint_source("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "R7");
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        let (_, diags) = lint_source("crates/x/src/lib.rs", ok);
        assert!(diags.is_empty(), "{diags:?}");
        // deny also satisfies the rule (for justified exceptions).
        let deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
        let (_, diags) = lint_source("crates/x/src/lib.rs", deny);
        assert!(diags.is_empty(), "{diags:?}");
        // Non-roots are not checked.
        let (_, diags) = lint_source("crates/x/src/other.rs", "pub fn f() {}\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn rule_filter_disables_other_rules_and_their_allows() {
        let src = "// treu-lint: allow(wall-clock, reason = \"demo\")\n\
                   let a = std::time::Instant::now();\n\
                   static mut X: u64 = 0;\n";
        let file = SourceFile {
            path: std::path::PathBuf::from("src/a.rs"),
            rel: "src/a.rs".to_string(),
            is_crate_root: false,
        };
        let mut out = Vec::new();
        Lint::with_rules(vec![RuleId::RelaxedAtomics]).lint_file(&file, src, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, "R5");
    }

    #[test]
    fn thread_merge_flags_float_accumulation_in_spawn() {
        let src = "pub fn s(c: &[f64]) -> f64 {\n    let mut t = 0.0;\n    scope(|s| {\n        \
                   s.spawn(|| {\n            let mut local = 0.0;\n            for v in c {\n                \
                   local += *v;\n            }\n            t += local;\n        });\n    });\n    t\n}\n";
        let (_, diags) = lint_source("crates/x/src/m.rs", src);
        let r6: Vec<_> = diags.iter().filter(|d| d.code == "R6").collect();
        assert_eq!(r6.len(), 2, "{diags:?}");
        assert_eq!(r6[0].line, 7);
        assert_eq!(r6[1].line, 9);
    }

    #[test]
    fn thread_merge_ignores_integer_counters_and_outside_code() {
        let src = "pub fn s(c: &[u64]) -> u64 {\n    let mut t = 0u64;\n    scope(|s| {\n        \
                   s.spawn(|| {\n            let mut n = 0usize;\n            n += 1;\n        });\n    });\n    \
                   t += 9;\n    t\n}\n";
        let (_, diags) = lint_source("crates/x/src/m.rs", src);
        assert!(diags.iter().all(|d| d.code != "R6"), "{diags:?}");
    }

    #[test]
    fn canonical_merge_modules_are_exempt_from_thread_merge() {
        let src = "fn m() {\n    s.spawn(|| {\n        let mut acc = 0.0;\n        acc += 1.5;\n    });\n}\n";
        let (_, diags) = lint_source("crates/math/src/parallel.rs", src);
        assert!(diags.iter().all(|d| d.code != "R6"), "{diags:?}");
        let (_, diags) = lint_source("crates/other/src/x.rs", src);
        assert!(diags.iter().any(|d| d.code == "R6"));
    }

    #[test]
    fn malformed_directive_is_an_error_and_does_not_suppress() {
        let src = "// treu-lint: allow(wall-clock)\nlet a = std::time::Instant::now();\n";
        let (honored, diags) = lint_source("src/a.rs", src);
        assert_eq!(honored, 0);
        assert!(diags.iter().any(|d| d.code == "A1"));
        assert!(diags.iter().any(|d| d.code == "R3"));
    }
}
