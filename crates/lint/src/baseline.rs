//! Finding baselines — ratcheting for `treu lint`.
//!
//! A baseline file records the findings a workspace currently has, one
//! per line, so CI can fail only on *new* findings while the recorded
//! debt is paid down over time. Keys are `(code, file, message)` — line
//! numbers are deliberately excluded so unrelated edits that shift a
//! known finding up or down the file do not break the gate. Keys form a
//! multiset: two identical findings need two baseline entries, so fixing
//! one of them still shrinks the recorded debt.
//!
//! The format is line-oriented and diff-friendly:
//!
//! ```text
//! # treu-lint baseline v1
//! R3<TAB>crates/x/src/a.rs<TAB>`Instant::now` reads the wall clock ...
//! ```

use crate::report::LintReport;
use std::collections::BTreeMap;

/// Magic first line of a baseline file.
pub const HEADER: &str = "# treu-lint baseline v1";

/// Renders a report's findings as baseline text (sorted, deterministic).
pub fn render(report: &LintReport) -> String {
    let mut lines: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}\t{}\t{}", d.code, d.file, d.message))
        .collect();
    lines.sort();
    let mut out = String::from(HEADER);
    out.push('\n');
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Parses baseline text into a finding-key multiset. Blank lines and
/// `#` comments are skipped; a malformed line is an error naming it.
pub fn parse(text: &str) -> Result<BTreeMap<(String, String, String), usize>, String> {
    let mut keys = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(code), Some(file), Some(message)) if !code.is_empty() => {
                *keys
                    .entry((code.to_string(), file.to_string(), message.to_string()))
                    .or_insert(0) += 1;
            }
            _ => {
                return Err(format!(
                    "baseline line {} is not `code<TAB>file<TAB>message`: {line:?}",
                    idx + 1
                ));
            }
        }
    }
    Ok(keys)
}

/// Splits a report against a baseline: returns the report containing
/// only findings *not* covered by the baseline, plus the number of
/// findings the baseline absorbed. Summary counters follow the kept
/// findings, so deny-level gating works unchanged on the result.
pub fn apply(
    report: LintReport,
    mut baseline: BTreeMap<(String, String, String), usize>,
) -> (LintReport, usize) {
    let mut kept = Vec::new();
    let mut absorbed = 0usize;
    for d in report.diagnostics {
        let key = (d.code.to_string(), d.file.clone(), d.message.clone());
        match baseline.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                absorbed += 1;
            }
            _ => kept.push(d),
        }
    }
    (
        LintReport {
            files_scanned: report.files_scanned,
            diagnostics: kept,
            allows_honored: report.allows_honored,
        },
        absorbed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Diagnostic, Severity};

    fn diag(code: &'static str, file: &str, message: &str, line: usize) -> Diagnostic {
        Diagnostic {
            code,
            rule: "unordered-collections",
            severity: Severity::Error,
            file: file.to_string(),
            line,
            col: 1,
            message: message.to_string(),
            hint: String::new(),
            notes: Vec::new(),
        }
    }

    fn report(diags: Vec<Diagnostic>) -> LintReport {
        LintReport { files_scanned: 1, diagnostics: diags, allows_honored: 0 }
    }

    #[test]
    fn render_parse_round_trip() {
        let r = report(vec![diag("R1", "b.rs", "msg b", 9), diag("R1", "a.rs", "msg a", 3)]);
        let text = render(&r);
        assert!(text.starts_with(HEADER));
        let keys = parse(&text).unwrap();
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[&("R1".into(), "a.rs".into(), "msg a".into())], 1);
    }

    #[test]
    fn apply_absorbs_known_findings_and_keeps_new_ones() {
        let old = report(vec![diag("R1", "a.rs", "known", 3)]);
        let baseline = parse(&render(&old)).unwrap();
        // Same finding moved to another line + one new finding.
        let now = report(vec![diag("R1", "a.rs", "known", 30), diag("R5", "a.rs", "new", 4)]);
        let (kept, absorbed) = apply(now, baseline);
        assert_eq!(absorbed, 1);
        assert_eq!(kept.diagnostics.len(), 1);
        assert_eq!(kept.diagnostics[0].code, "R5");
    }

    #[test]
    fn multiset_counts_absorb_each_entry_once() {
        let old = report(vec![diag("R1", "a.rs", "dup", 1), diag("R1", "a.rs", "dup", 2)]);
        let baseline = parse(&render(&old)).unwrap();
        let now = report(vec![
            diag("R1", "a.rs", "dup", 1),
            diag("R1", "a.rs", "dup", 2),
            diag("R1", "a.rs", "dup", 3),
        ]);
        let (kept, absorbed) = apply(now, baseline);
        assert_eq!(absorbed, 2);
        assert_eq!(kept.diagnostics.len(), 1, "the third occurrence is new");
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse("# header\nnot tab separated\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
