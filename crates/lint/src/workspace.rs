//! Workspace discovery: which files the analyzer scans.
//!
//! Two modes, chosen by whether the root holds a `Cargo.toml`:
//!
//! * **Workspace mode** — walks the TREU layout (`crates/*/src`,
//!   `crates/*/tests`, `crates/*/benches`, `src/`, `tests/`,
//!   `examples/`). Directories named `fixtures`, `goldens`, `target` or
//!   `vendor` are skipped: fixtures deliberately violate the rules, and
//!   the vendored shims mimic external crates' internals.
//! * **Corpus mode** — no manifest at the root: every `.rs` file below it
//!   is scanned recursively. This is what fixture suites and ad-hoc
//!   directory lints use.
//!
//! Files are sorted by relative path, so reports are deterministic.

use std::io;
use std::path::{Path, PathBuf};

/// One file to lint.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// True when the file is a crate root (`src/lib.rs`), which the
    /// unsafe-attribute rule applies to.
    pub is_crate_root: bool,
}

/// A set of files to lint, rooted at a directory.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// The root all relative paths are reported against.
    pub root: PathBuf,
    /// Files in relative-path order.
    pub files: Vec<SourceFile>,
}

const SKIP_DIRS: [&str; 5] = ["fixtures", "goldens", "target", "vendor", ".git"];

impl Workspace {
    /// Discovers the files under `root` (see the module docs for the two
    /// modes).
    pub fn discover(root: &Path) -> io::Result<Workspace> {
        let mut rels = Vec::new();
        if root.join("Cargo.toml").exists() {
            for top in ["src", "tests", "examples"] {
                collect(root, &root.join(top), &mut rels)?;
            }
            let crates = root.join("crates");
            if crates.is_dir() {
                let mut members: Vec<PathBuf> =
                    std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
                members.sort();
                for member in members {
                    for sub in ["src", "tests", "benches"] {
                        collect(root, &member.join(sub), &mut rels)?;
                    }
                }
            }
        } else {
            collect(root, root, &mut rels)?;
        }
        Ok(Workspace::from_rel_paths(root.to_path_buf(), rels))
    }

    /// Builds a workspace from explicit root-relative paths (fixture
    /// tests use this to lint one file at a time).
    pub fn from_files(root: impl Into<PathBuf>, rels: &[&str]) -> Workspace {
        Workspace::from_rel_paths(root.into(), rels.iter().map(|r| r.to_string()).collect())
    }

    fn from_rel_paths(root: PathBuf, mut rels: Vec<String>) -> Workspace {
        rels.sort();
        rels.dedup();
        let files = rels
            .into_iter()
            .map(|rel| SourceFile {
                path: root.join(&rel),
                is_crate_root: rel == "src/lib.rs" || rel.ends_with("/src/lib.rs"),
                rel,
            })
            .collect();
        Workspace { root, files }
    }
}

/// Recursively collects `.rs` files under `dir` into root-relative paths,
/// honoring the skip list.
fn collect(root: &Path, dir: &Path, rels: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect(root, &path, rels)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            rels.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_files_marks_crate_roots_and_sorts() {
        let ws = Workspace::from_files("/tmp/x", &["z/src/main.rs", "a/src/lib.rs", "src/lib.rs"]);
        let rels: Vec<&str> = ws.files.iter().map(|f| f.rel.as_str()).collect();
        assert_eq!(rels, vec!["a/src/lib.rs", "src/lib.rs", "z/src/main.rs"]);
        assert!(ws.files[0].is_crate_root);
        assert!(ws.files[1].is_crate_root);
        assert!(!ws.files[2].is_crate_root);
    }

    #[test]
    fn discover_walks_this_crate_in_workspace_mode() {
        // The lint crate's own parent workspace: this file must be found,
        // and the fixture corpus must be skipped.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = Workspace::discover(&root).expect("discoverable");
        assert!(ws.files.iter().any(|f| f.rel == "crates/lint/src/workspace.rs"));
        assert!(ws.files.iter().any(|f| f.rel == "src/bin/treu.rs"));
        assert!(!ws.files.iter().any(|f| f.rel.contains("fixtures")));
        assert!(!ws.files.iter().any(|f| f.rel.starts_with("vendor/")));
        let mut sorted = ws.files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(sorted, ws.files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>());
    }

    #[test]
    fn discover_without_manifest_is_recursive() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
        let ws = Workspace::discover(&root).expect("fixtures present");
        assert!(ws.files.iter().any(|f| f.rel == "r7_missing/src/lib.rs"));
        assert!(ws.files.iter().any(|f| f.rel == "r1_unordered.rs"));
    }
}
