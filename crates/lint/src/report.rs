//! Diagnostics and the [`LintReport`] with human and JSON renderings.

use std::fmt;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but sometimes legitimate; fails only `--deny warn`.
    Warn,
    /// A determinism hazard; fails `--deny warn` and `--deny error`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The threshold at which a lint run exits nonzero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyLevel {
    /// Never fail (report only).
    None,
    /// Fail on any warning or error (the CI setting).
    Warn,
    /// Fail on errors only.
    Error,
}

impl DenyLevel {
    /// Parses `none|warn|error`.
    pub fn parse(s: &str) -> Option<DenyLevel> {
        match s {
            "none" => Some(DenyLevel::None),
            "warn" => Some(DenyLevel::Warn),
            "error" => Some(DenyLevel::Error),
            _ => None,
        }
    }
}

/// One finding, anchored to a file:line:col span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`R1`..`R12`, or `A1`/`A2` for directive issues).
    pub code: &'static str,
    /// Kebab-case rule name.
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based char column.
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
    /// Supporting evidence — for flow rules, the source→sink call path,
    /// one hop per entry. Empty for single-site rules.
    pub notes: Vec<String>,
}

/// The result of linting a workspace.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, col, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of allow directives that suppressed a finding.
    pub allows_honored: usize,
}

impl LintReport {
    /// Error-severity finding count.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Warn-severity finding count.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn).count()
    }

    /// True when the report should fail the run at `deny`.
    pub fn exceeds(&self, deny: DenyLevel) -> bool {
        match deny {
            DenyLevel::None => false,
            DenyLevel::Warn => !self.diagnostics.is_empty(),
            DenyLevel::Error => self.errors() > 0,
        }
    }

    /// Compiler-style plain-text rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{} {}] {}:{}:{} — {}\n",
                d.severity, d.code, d.rule, d.file, d.line, d.col, d.message
            ));
            for note in &d.notes {
                out.push_str(&format!("    note: {note}\n"));
            }
            out.push_str(&format!("    hint: {}\n", d.hint));
        }
        let verdict = if self.diagnostics.is_empty() { " — clean" } else { "" };
        out.push_str(&format!(
            "summary: {} error(s), {} warning(s), {} allow(s) honored across {} file(s){}\n",
            self.errors(),
            self.warnings(),
            self.allows_honored,
            self.files_scanned,
            verdict
        ));
        out
    }

    /// Stable machine-readable rendering (sorted diagnostics, fixed key
    /// order) — the golden-snapshot format.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str(&format!("  \"allows_honored\": {},\n", self.allows_honored));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let notes = d.notes.iter().map(|n| json_str(n)).collect::<Vec<_>>().join(", ");
            out.push_str(&format!(
                "\n    {{\"code\": {}, \"rule\": {}, \"severity\": {}, \"file\": {}, \
                 \"line\": {}, \"col\": {}, \"message\": {}, \"hint\": {}, \"notes\": [{notes}]}}",
                json_str(d.code),
                json_str(d.rule),
                json_str(&d.severity.to_string()),
                json_str(&d.file),
                d.line,
                d.col,
                json_str(&d.message),
                json_str(&d.hint)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with the escapes the report needs.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity) -> Diagnostic {
        Diagnostic {
            code: "R1",
            rule: "unordered-collections",
            severity,
            file: "src/a.rs".to_string(),
            line: 3,
            col: 7,
            message: "a \"quoted\" hazard".to_string(),
            hint: "fix it".to_string(),
            notes: Vec::new(),
        }
    }

    #[test]
    fn deny_levels_gate_correctly() {
        let clean = LintReport { files_scanned: 2, diagnostics: vec![], allows_honored: 0 };
        assert!(!clean.exceeds(DenyLevel::Warn));
        let warned = LintReport {
            files_scanned: 2,
            diagnostics: vec![diag(Severity::Warn)],
            allows_honored: 0,
        };
        assert!(warned.exceeds(DenyLevel::Warn));
        assert!(!warned.exceeds(DenyLevel::Error));
        assert!(!warned.exceeds(DenyLevel::None));
        let errored = LintReport {
            files_scanned: 2,
            diagnostics: vec![diag(Severity::Error)],
            allows_honored: 0,
        };
        assert!(errored.exceeds(DenyLevel::Error));
    }

    #[test]
    fn human_rendering_shows_span_and_hint() {
        let r = LintReport {
            files_scanned: 1,
            diagnostics: vec![diag(Severity::Error)],
            allows_honored: 2,
        };
        let s = r.render_human();
        assert!(s.contains("error[R1 unordered-collections] src/a.rs:3:7"));
        assert!(s.contains("hint: fix it"));
        assert!(s.contains("1 error(s), 0 warning(s), 2 allow(s) honored across 1 file(s)"));
    }

    #[test]
    fn clean_report_says_clean() {
        let r = LintReport { files_scanned: 9, diagnostics: vec![], allows_honored: 0 };
        assert!(r.render_human().contains("— clean"));
        assert!(r.render_json().contains("\"diagnostics\": []"));
    }

    #[test]
    fn json_escapes_quotes() {
        let r = LintReport {
            files_scanned: 1,
            diagnostics: vec![diag(Severity::Warn)],
            allows_honored: 0,
        };
        let s = r.render_json();
        assert!(s.contains("a \\\"quoted\\\" hazard"));
        assert!(s.contains("\"severity\": \"warn\""));
        assert!(s.contains("\"notes\": []"));
    }

    #[test]
    fn notes_render_in_both_formats() {
        let mut d = diag(Severity::Error);
        d.notes = vec!["source: `Instant::now` at a.rs:2".to_string(), "sink here".to_string()];
        let r = LintReport { files_scanned: 1, diagnostics: vec![d], allows_honored: 0 };
        let human = r.render_human();
        assert!(human.contains("    note: source: `Instant::now` at a.rs:2\n"));
        assert!(human.contains("    note: sink here\n    hint: fix it\n"));
        let json = r.render_json();
        assert!(json.contains("\"notes\": [\"source: `Instant::now` at a.rs:2\", \"sink here\"]"));
    }

    #[test]
    fn deny_level_parses() {
        assert_eq!(DenyLevel::parse("warn"), Some(DenyLevel::Warn));
        assert_eq!(DenyLevel::parse("error"), Some(DenyLevel::Error));
        assert_eq!(DenyLevel::parse("none"), Some(DenyLevel::None));
        assert_eq!(DenyLevel::parse("strict"), None);
    }
}
