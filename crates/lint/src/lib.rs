//! `treu-lint` — static reproducibility analyzer for the TREU workspace.
//!
//! PR 1 made determinism *verifiable at runtime* (`treu verify` re-runs
//! every experiment and cross-checks trail fingerprints); this crate
//! makes the conventions that determinism rests on *enforceable before
//! anything runs*. A hand-rolled analyzer (no external deps — the
//! workspace builds offline) walks every source file, applies the
//! single-site token rules, and then runs a flow pass over a workspace
//! call graph ([`lexer`] → [`items`] → [`callgraph`] → [`taint`]) for
//! the cross-file rules:
//!
//! | code | name | severity | hazard |
//! |------|------|----------|--------|
//! | R1 | `unordered-collections` | error | `HashMap`/`HashSet` iteration order |
//! | R2 | `ambient-randomness` | error | `thread_rng`, `rand::random`, `from_entropy`, ... |
//! | R3 | `wall-clock` | warn | `Instant::now`/`SystemTime` outside annotated timing scopes |
//! | R4 | `env-read` | warn | `std::env::var` outside `treu-core`'s environment capture |
//! | R5 | `relaxed-atomics` | error | `Ordering::Relaxed` result atomics, `static mut` |
//! | R6 | `thread-float-merge` | warn | float accumulation inside spawned merge loops |
//! | R7 | `missing-unsafe-forbid` | error | crate roots without `#![forbid(unsafe_code)]` |
//! | R8 | `taint-reaches-fingerprint` | error | nondeterministic value flows into a fingerprint/cache key |
//! | R9 | `unordered-parallel-merge` | error | parallel results merged in completion order |
//! | R10 | `locked-accumulation` | warn | order-sensitive accumulation under a `Mutex` in parallel code |
//! | R11 | `default-hasher-output` | error | `DefaultHasher`/`RandomState` hash reaches output |
//! | R12 | `duplicate-primitive` | warn | determinism-critical primitive defined in several places |
//!
//! Plus two directive diagnostics: `A1 malformed-allow` (error) and
//! `A2 unused-allow` (warn). Suppression is per-line via a mandatory-
//! reason comment (see [`allow`]); flow findings (which carry their full
//! source→sink call path as notes) are suppressed at the line the
//! finding anchors to. The analyzer is exposed as this library, as the
//! `treu lint` CLI subcommand (`--flow` on by default, `--baseline` for
//! ratcheting), and as a CI gate.
//!
//! ```
//! use treu_lint::{DenyLevel, Lint, Workspace};
//! let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
//! let report = Lint::new().run(&Workspace::discover(&root).unwrap()).unwrap();
//! assert!(!report.exceeds(DenyLevel::Warn), "{}", report.render_human());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod baseline;
pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod lint;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod taint;
pub mod workspace;

pub use lint::Lint;
pub use report::{DenyLevel, Diagnostic, LintReport, Severity};
pub use rules::RuleId;
pub use workspace::{SourceFile, Workspace};
