//! `treu-lint` — static reproducibility analyzer for the TREU workspace.
//!
//! PR 1 made determinism *verifiable at runtime* (`treu verify` re-runs
//! every experiment and cross-checks trail fingerprints); this crate
//! makes the conventions that determinism rests on *enforceable before
//! anything runs*. A small hand-rolled scanner (no external deps — the
//! workspace builds offline) walks every source file and reports
//! violations of the workspace's determinism rules:
//!
//! | code | name | severity | hazard |
//! |------|------|----------|--------|
//! | R1 | `unordered-collections` | error | `HashMap`/`HashSet` iteration order |
//! | R2 | `ambient-randomness` | error | `thread_rng`, `rand::random`, `from_entropy`, ... |
//! | R3 | `wall-clock` | warn | `Instant::now`/`SystemTime` outside annotated timing scopes |
//! | R4 | `env-read` | warn | `std::env::var` outside `treu-core`'s environment capture |
//! | R5 | `relaxed-atomics` | error | `Ordering::Relaxed` result atomics, `static mut` |
//! | R6 | `thread-float-merge` | warn | float accumulation inside spawned merge loops |
//! | R7 | `missing-unsafe-forbid` | error | crate roots without `#![forbid(unsafe_code)]` |
//!
//! Plus two directive diagnostics: `A1 malformed-allow` (error) and
//! `A2 unused-allow` (warn). Suppression is per-line via a mandatory-
//! reason comment (see [`allow`]); the analyzer is exposed as this
//! library, as the `treu lint` CLI subcommand, and as a CI gate.
//!
//! ```
//! use treu_lint::{DenyLevel, Lint, Workspace};
//! let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
//! let report = Lint::new().run(&Workspace::discover(&root).unwrap()).unwrap();
//! assert!(!report.exceeds(DenyLevel::Warn), "{}", report.render_human());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod lint;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use lint::Lint;
pub use report::{DenyLevel, Diagnostic, LintReport, Severity};
pub use rules::RuleId;
pub use workspace::{SourceFile, Workspace};
