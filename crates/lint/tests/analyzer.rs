//! Fixture-corpus conformance for the static reproducibility analyzer:
//! every rule has at least one positive and one negative fixture, the
//! whole corpus matches a golden JSON snapshot, and — the point of the
//! exercise — the real workspace lints clean at `--deny warn`.

use std::path::{Path, PathBuf};
use treu_lint::{DenyLevel, Lint, LintReport, Workspace};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(files: &[&str]) -> LintReport {
    let ws = Workspace::from_files(fixtures_root(), files);
    Lint::new().run(&ws).expect("fixture files are readable")
}

fn codes(report: &LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn r1_positive_flags_every_unordered_collection_use() {
    let r = lint_fixture(&["r1_unordered.rs"]);
    assert_eq!(r.errors(), 5, "{}", r.render_human()); // import x2, decl+ctor, ctor
    assert!(codes(&r).iter().all(|c| *c == "R1"));
    assert!(r.exceeds(DenyLevel::Error));
}

#[test]
fn r1_negative_accepts_ordered_collections() {
    let r = lint_fixture(&["r1_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r2_positive_flags_every_ambient_randomness_source() {
    let r = lint_fixture(&["r2_randomness.rs"]);
    assert_eq!(r.errors(), 3, "{}", r.render_human());
    assert!(codes(&r).iter().all(|c| *c == "R2"));
}

#[test]
fn r2_negative_accepts_seed_derived_randomness() {
    let r = lint_fixture(&["r2_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r3_positive_flags_unannotated_wall_clock() {
    let r = lint_fixture(&["r3_wallclock.rs"]);
    assert_eq!(r.warnings(), 3, "{}", r.render_human()); // import, now(), SystemTime::now
    assert!(codes(&r).iter().all(|c| *c == "R3"));
    assert!(r.exceeds(DenyLevel::Warn));
    assert!(!r.exceeds(DenyLevel::Error), "R3 is warn severity");
}

#[test]
fn r3_negative_accepts_annotated_timing_scope() {
    let r = lint_fixture(&["r3_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
    assert_eq!(r.allows_honored, 1);
}

#[test]
fn r3_positive_flags_wall_clock_keyed_eviction() {
    // ISSUE 6: the bounded-cache lifecycle's regression fixture — LRU
    // recency read from the machine clock instead of a logical counter.
    let r = lint_fixture(&["r3_eviction_wallclock.rs"]);
    assert_eq!(r.warnings(), 4, "{}", r.render_human()); // import, touch, return type, now()
    assert!(codes(&r).iter().all(|c| *c == "R3"));
    assert!(r.exceeds(DenyLevel::Warn));
}

#[test]
fn r3_negative_accepts_logical_clock_eviction() {
    let r = lint_fixture(&["r3_eviction_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
    assert_eq!(r.allows_honored, 0, "a logical clock needs no annotations");
}

#[test]
fn r4_positive_flags_ambient_env_read() {
    let r = lint_fixture(&["r4_env.rs"]);
    assert_eq!(r.warnings(), 1, "{}", r.render_human());
    assert_eq!(codes(&r), vec!["R4"]);
}

#[test]
fn r4_negative_exempts_the_capture_module_path() {
    let r = lint_fixture(&["exempt/core/src/environment.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r5_positive_flags_relaxed_ordering_and_static_mut() {
    let r = lint_fixture(&["r5_atomics.rs"]);
    assert_eq!(r.errors(), 2, "{}", r.render_human());
    assert!(codes(&r).iter().all(|c| *c == "R5"));
}

#[test]
fn r5_negative_accepts_seqcst() {
    let r = lint_fixture(&["r5_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r6_positive_flags_float_accumulation_in_spawned_workers() {
    let r = lint_fixture(&["r6_merge.rs"]);
    assert_eq!(r.warnings(), 2, "{}", r.render_human());
    assert!(codes(&r).iter().all(|c| *c == "R6"));
}

#[test]
fn r6_negative_accepts_disjoint_slot_merge() {
    let r = lint_fixture(&["r6_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r7_positive_flags_crate_root_without_attribute() {
    let r = lint_fixture(&["r7_missing/src/lib.rs"]);
    assert_eq!(r.errors(), 1, "{}", r.render_human());
    assert_eq!(codes(&r), vec!["R7"]);
    assert_eq!(r.diagnostics[0].line, 1);
}

#[test]
fn r7_negative_accepts_forbidding_crate_root() {
    let r = lint_fixture(&["r7_ok/src/lib.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r8_positive_flags_thread_identity_reaching_a_fingerprint() {
    let r = lint_fixture(&["r8_taint.rs"]);
    let r8: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "R8").collect();
    assert_eq!(r8.len(), 2, "{}", r.render_human()); // both fnv64 calls on the sink line
    assert!(r.exceeds(DenyLevel::Error), "R8 is error severity");
    // The finding carries the full source→sink call path.
    let notes = &r8[0].notes;
    assert!(notes.iter().any(|n| n.contains("source: `thread::current`")), "{notes:?}");
    assert!(notes.iter().any(|n| n.contains("via `r8_thread_stamp`")), "{notes:?}");
    assert!(notes.iter().any(|n| n.contains("sink: `fnv64`")), "{notes:?}");
}

#[test]
fn r8_negative_accepts_logical_counter_stamps() {
    let r = lint_fixture(&["r8_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r8_positive_flags_inherited_spawn_env_reaching_a_fingerprint() {
    let r = lint_fixture(&["r8_spawn.rs"]);
    let r8: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "R8").collect();
    assert_eq!(r8.len(), 2, "{}", r.render_human()); // both fnv64 calls on the sink line
    let notes = &r8[0].notes;
    assert!(notes.iter().any(|n| n.contains("inherited spawn environment")), "{notes:?}");
    assert!(notes.iter().any(|n| n.contains("via `r8_spawn_worker`")), "{notes:?}");
}

#[test]
fn r8_negative_accepts_env_scrubbed_spawns() {
    let r = lint_fixture(&["r8_spawn_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r9_positive_flags_completion_order_merge() {
    let r = lint_fixture(&["r9_merge.rs"]);
    assert_eq!(codes(&r), vec!["R9"], "{}", r.render_human());
    assert!(r.exceeds(DenyLevel::Error));
}

#[test]
fn r9_negative_accepts_indexed_slots() {
    let r = lint_fixture(&["r9_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r10_positive_flags_locked_float_accumulation() {
    let r = lint_fixture(&["r10_lock.rs"]);
    assert_eq!(codes(&r), vec!["R10"], "{}", r.render_human());
    assert!(r.exceeds(DenyLevel::Warn));
    assert!(!r.exceeds(DenyLevel::Error), "R10 is warn severity");
}

#[test]
fn r10_negative_accepts_slot_fold_after_join() {
    let r = lint_fixture(&["r10_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r11_positive_flags_default_hasher_reaching_output() {
    let r = lint_fixture(&["r11_hasher.rs"]);
    assert_eq!(codes(&r), vec!["R11"], "{}", r.render_human());
    assert!(r.exceeds(DenyLevel::Error));
}

#[test]
fn r11_negative_accepts_transient_hasher_use() {
    let r = lint_fixture(&["r11_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn r12_positive_flags_duplicate_primitive_with_drift_note() {
    let r = lint_fixture(&["r12_dup.rs", "r12_dup_b.rs"]);
    let r12: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "R12").collect();
    assert_eq!(r12.len(), 1, "{}", r.render_human());
    assert_eq!(r12[0].file, "r12_dup_b.rs", "the non-canonical site is flagged");
    assert!(r12[0].notes.iter().any(|n| n.contains("canonical definition at r12_dup.rs")));
    assert!(r12[0].notes.iter().any(|n| n.contains("have drifted")), "{:?}", r12[0].notes);
}

#[test]
fn r12_negative_accepts_methods_sharing_a_primitive_name() {
    let r = lint_fixture(&["r12_ok.rs"]);
    assert!(r.diagnostics.is_empty(), "{}", r.render_human());
}

#[test]
fn spans_use_char_columns_for_non_ascii_source() {
    let r = lint_fixture(&["unicode_span.rs"]);
    assert_eq!(codes(&r), vec!["R3"], "{}", r.render_human());
    // `SystemTime` sits at char column 43; a byte-based scanner would
    // report 52 (αβγ and κόσμε are multi-byte).
    assert_eq!((r.diagnostics[0].line, r.diagnostics[0].col), (7, 43));
}

#[test]
fn malformed_allows_are_errors_and_suppress_nothing() {
    let r = lint_fixture(&["allow_malformed.rs"]);
    let cs = codes(&r);
    assert_eq!(cs.iter().filter(|c| **c == "A1").count(), 2, "{}", r.render_human());
    assert_eq!(cs.iter().filter(|c| **c == "R3").count(), 1, "{}", r.render_human());
    assert_eq!(r.allows_honored, 0);
}

#[test]
fn unused_allows_warn() {
    let r = lint_fixture(&["allow_unused.rs"]);
    assert_eq!(codes(&r), vec!["A2"], "{}", r.render_human());
    assert!(r.exceeds(DenyLevel::Warn));
}

#[test]
fn fixture_corpus_matches_golden_json_snapshot() {
    let ws = Workspace::discover(&fixtures_root()).expect("fixtures present");
    let report = Lint::new().run(&ws).expect("fixtures readable");
    let got = report.render_json();
    let want = include_str!("goldens/fixtures_report.json");
    assert_eq!(
        got.trim(),
        want.trim(),
        "fixture corpus drifted from the golden snapshot; \
         if the change is intentional, regenerate with:\n  \
         cargo run --bin treu -- lint crates/lint/tests/fixtures --format json --deny none"
    );
}

#[test]
fn fixture_corpus_fails_at_deny_warn_and_error() {
    let ws = Workspace::discover(&fixtures_root()).expect("fixtures present");
    let report = Lint::new().run(&ws).expect("fixtures readable");
    assert!(report.exceeds(DenyLevel::Warn));
    assert!(report.exceeds(DenyLevel::Error));
    assert!(!report.exceeds(DenyLevel::None));
}

/// The self-check the whole PR exists for: the TREU workspace obeys its
/// own determinism conventions, with every wall-clock site annotated.
#[test]
fn workspace_lints_clean_at_deny_warn() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::discover(&root).expect("workspace discoverable");
    assert!(ws.files.len() > 100, "suspiciously few files: {}", ws.files.len());
    let report = Lint::new().run(&ws).expect("workspace readable");
    assert!(report.diagnostics.is_empty(), "\n{}", report.render_human());
    assert!(!report.exceeds(DenyLevel::Warn));
    assert!(report.allows_honored >= 6, "the audited timing scopes should all be exercised");
}
