//! Flow-pass conformance: the analyzer's output is byte-identical across
//! repeated runs and job counts, and the taint fixpoint terminates on
//! arbitrary (including cyclic) call topologies.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use treu_lint::scanner::scan;
use treu_lint::taint::{analyze, FlowInput};
use treu_lint::{Lint, RuleId, Workspace};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The acceptance-criteria determinism check: same corpus, same bytes —
/// run-to-run and independent of the phase-1 worker count.
#[test]
fn report_json_is_byte_identical_across_runs_and_job_counts() {
    let ws = Workspace::discover(&fixtures_root()).expect("fixtures present");
    let baseline = Lint::new().jobs(1).run(&ws).expect("readable").render_json();
    for round in 0..3 {
        for jobs in [1, 2, 4, 7] {
            let got = Lint::new().jobs(jobs).run(&ws).expect("readable").render_json();
            assert_eq!(got, baseline, "round {round}, jobs {jobs} diverged");
        }
    }
}

/// Renders a synthetic workspace from a call-topology description:
/// `calls[i]` lists the functions `f<i>` calls; function 0 reads a
/// source, and the last function feeds a sink.
fn synthetic_files(calls: &[Vec<usize>]) -> Vec<String> {
    let n = calls.len();
    calls
        .iter()
        .enumerate()
        .map(|(i, out)| {
            let mut body = String::new();
            if i == 0 {
                body.push_str("    let _t = std::thread::current().id();\n");
            }
            for &callee in out {
                body.push_str(&format!("    f{}();\n", callee % n));
            }
            if i == n - 1 {
                body.push_str("    fnv64(&[0]);\n");
            }
            format!("fn f{i}() {{\n{body}    ()\n}}\n")
        })
        .collect()
}

// Termination + determinism over arbitrary call graphs: cycles,
// self-loops, diamonds — the worklist must reach a fixpoint and
// produce the same findings twice.
proptest! {
    #[test]
    fn taint_fixpoint_terminates_on_arbitrary_call_graphs(
        calls in proptest::collection::vec(proptest::collection::vec(0usize..8, 0..5), 1..8)
    ) {
        let sources = synthetic_files(&calls);
        let rels: Vec<String> = (0..sources.len()).map(|i| format!("f{i}.rs")).collect();
        let scans: Vec<_> = sources.iter().map(|s| scan(s)).collect();
        let inputs: Vec<FlowInput<'_>> = rels
            .iter()
            .zip(&scans)
            .map(|(rel, sc)| FlowInput { rel, sc, allowed: Vec::new() })
            .collect();
        let first = analyze(&inputs, &RuleId::ALL);
        let second = analyze(&inputs, &RuleId::ALL);
        prop_assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            prop_assert_eq!(a.rule, b.rule);
            prop_assert_eq!((a.file, a.line, a.col), (b.file, b.line, b.col));
            prop_assert_eq!(&a.message, &b.message);
            prop_assert_eq!(&a.notes, &b.notes);
        }
        // Single-node graphs where f0 is also the sink fn must still
        // find the direct source→sink flow.
        if calls.len() == 1 {
            prop_assert!(first.iter().any(|f| f.rule == RuleId::TaintReachesFingerprint));
        }
    }
}
