//! R8 negative: the same shape as `r8_taint.rs`, but the stamp comes
//! from a logical counter the caller threads through — nothing ambient
//! reaches the fingerprint, so the flow pass stays quiet.

fn r8_logical_stamp(counter: u64) -> u64 {
    counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

pub fn r8_stable_key(payload: &[u8], counter: u64) -> u64 {
    let stamp = r8_logical_stamp(counter);
    fnv64(&stamp.to_le_bytes()) ^ fnv64(payload)
}
