//! R5 negative fixture: sequentially consistent ordering, no static mut.
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL: AtomicU64 = AtomicU64::new(0);

pub fn bump(v: u64) -> u64 {
    TOTAL.fetch_add(v, Ordering::SeqCst)
}
