//! R12 negative: a *method* named like a critical primitive is not a
//! duplicate definition — only free functions shadow the canonical one.

pub struct R12Draw {
    state: u64,
}

impl R12Draw {
    pub fn unit(&self) -> f64 {
        (self.state >> 11) as f64 / 9_007_199_254_740_992.0
    }
}
