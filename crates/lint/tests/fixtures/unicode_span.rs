//! Span-regression fixture: non-ASCII identifiers and string contents
//! before a violation. Columns are char-based, so the `SystemTime`
//! finding must anchor at the same column a human counting characters
//! would report — not a byte offset.

pub fn unicode_span_démo() -> u64 {
    let αβγ = "κόσμε"; let t = std::time::SystemTime::now();
    αβγ.len() as u64 + t.elapsed().unwrap().as_secs()
}
