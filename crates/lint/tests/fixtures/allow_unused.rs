//! A2 fixture: a well-formed allow with nothing left to suppress.

// treu-lint: allow(wall-clock, reason = "left behind after a refactor")
pub fn pure() -> u64 {
    7
}
