//! R9 negative: each worker writes its own preallocated slot, so the
//! merged output is in input order regardless of scheduling.

pub fn r9_indexed_slots(items: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; items.len()];
    map_indexed(items, &mut out, |i, slot| {
        *slot = items[i] * 2;
    });
    out
}
