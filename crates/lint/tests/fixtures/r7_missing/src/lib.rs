//! R7 positive fixture: a crate root without an unsafe_code attribute.

pub fn answer() -> u32 {
    42
}
