//! R6 positive fixture: float accumulation inside a spawned merge loop —
//! the merge order follows the scheduler, not the input.

pub fn parallel_sum(chunks: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    std::thread::scope(|s| {
        for chunk in chunks {
            s.spawn(|| {
                let mut local = 0.0;
                for v in chunk {
                    local += *v;
                }
                total += local;
            });
        }
    });
    total
}
