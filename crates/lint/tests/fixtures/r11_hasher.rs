//! R11 positive: a `DefaultHasher` digest (seeded per process since
//! Rust's std uses randomized SipHash keys) flows into a content hash
//! that lands in persisted output.

pub fn r11_report_digest(name: &str) -> u64 {
    let mut h = DefaultHasher::new();
    h.write(name.as_bytes());
    content_hash(h.finish())
}
