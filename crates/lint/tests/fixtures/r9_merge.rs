//! R9 positive: worker results pushed into a shared `Mutex<Vec<_>>`
//! from inside a parallel region land in completion order, which the
//! scheduler — not the input — decides.

pub fn r9_completion_order(items: &[u64], out: &std::sync::Mutex<Vec<u64>>) {
    par_map_dynamic(8, |i| {
        out.lock().unwrap().push(items[i] * 2);
    });
}
