//! R10 negative: per-worker slots folded in input order after the join
//! — no lock inside the parallel region, deterministic sum outside it.

pub fn r10_slot_fold(chunks: &[f64]) -> f64 {
    let mut slots = vec![0.0f64; chunks.chunks(4).len()];
    std::thread::scope(|s| {
        for (slot, chunk) in slots.iter_mut().zip(chunks.chunks(4)) {
            s.spawn(move || {
                *slot = chunk.iter().map(|c| c * 0.5).sum();
            });
        }
    });
    slots.iter().sum()
}
