//! R9 negative: each pack worker writes its panel into the
//! column-indexed slot preallocated for it, so the packed buffer layout
//! is a pure function of the input no matter which worker finishes
//! first — the index-ordered merge the blocked GEMM's packing uses.

pub fn r9_panel_slots(b: &[f64]) -> Vec<Vec<f64>> {
    let mut panels = vec![Vec::new(); 8];
    map_indexed(b, &mut panels, |jc, slot| {
        *slot = b.iter().skip(jc).step_by(8).copied().collect();
    });
    panels
}
