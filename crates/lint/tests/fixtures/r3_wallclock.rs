//! R3 positive fixture: wall-clock reads with no timing annotation.
use std::time::{Instant, SystemTime};

pub fn measure() -> f64 {
    let t0 = Instant::now();
    let _stamp = SystemTime::now();
    t0.elapsed().as_secs_f64()
}
