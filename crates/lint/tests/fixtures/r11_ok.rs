//! R11 negative: a `DefaultHasher` used for a transient in-process
//! check whose value never reaches a fingerprint/cache-key sink.

pub fn r11_transient_probe(name: &str) -> bool {
    let mut h = DefaultHasher::new();
    h.write(name.as_bytes());
    h.finish() % 16 == 0
}
