//! R1 positive fixture: unordered collections on a result path.
use std::collections::{HashMap, HashSet};

pub fn tally(names: &[&str]) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for n in names {
        *counts.entry((*n).to_string()).or_insert(0) += 1;
    }
    let mut seen = HashSet::new();
    seen.insert(1u32);
    counts.into_iter().collect()
}
