//! R8 positive: thread identity flows through a helper into a cache key.
//! Thread ids have no single-site token rule, so only the flow pass can
//! see this hazard — the taint seeds at the `thread::current` read and
//! propagates up the call chain into the `fnv64` sink.

fn r8_thread_stamp() -> u64 {
    let id = std::thread::current().id();
    format!("{id:?}").len() as u64
}

pub fn r8_cache_key(payload: &[u8]) -> u64 {
    let stamp = r8_thread_stamp();
    fnv64(&stamp.to_le_bytes()) ^ fnv64(payload)
}
