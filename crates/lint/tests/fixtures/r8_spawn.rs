//! R8 positive: a subprocess is spawned with the parent's inherited
//! environment and the same call chain fingerprints its output — every
//! ambient env var becomes an uncontrolled input to the cache key. The
//! spawn must scrub (`env_clear`) before the flow pass trusts it.

fn r8_spawn_worker() -> u64 {
    let out = std::process::Command::new("worker").output();
    out.map(|o| o.stdout.len() as u64).unwrap_or(0)
}

pub fn r8_spawned_key(payload: &[u8]) -> u64 {
    let stamp = r8_spawn_worker();
    fnv64(&stamp.to_le_bytes()) ^ fnv64(payload)
}
