//! R9 positive: parallel pack workers push finished B panels into a
//! shared `Mutex<Vec<_>>`, so the packed strip order is whichever worker
//! finishes first — the scheduler, not the column index, decides the
//! buffer layout the microkernel will read.

pub fn r9_panel_pour(b: &[f64], panels: &std::sync::Mutex<Vec<Vec<f64>>>) {
    par_map_dynamic(8, |jc| {
        let panel: Vec<f64> = b.iter().skip(jc).step_by(8).copied().collect();
        panels.lock().unwrap().push(panel);
    });
}
