//! R3 negative fixture: the same bounded LRU with recency from a
//! logical clock — a monotone counter ticked by cache operations, never
//! read from the machine. Eviction order is a pure function of the
//! operation sequence, ties broken by name, so every job count and every
//! scheduler interleaving evicts identically. Lints clean with no
//! annotations needed.
use std::collections::BTreeMap;

pub struct LogicalLru {
    entries: BTreeMap<String, u64>,
    clock: u64,
    limit: usize,
}

impl LogicalLru {
    pub fn touch(&mut self, name: &str) {
        self.clock += 1;
        self.entries.insert(name.to_string(), self.clock);
    }

    pub fn evict_oldest(&mut self) {
        while self.entries.len() > self.limit {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(name, tick)| (**tick, name.clone()))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.entries.remove(&name);
                }
                None => break,
            }
        }
    }

    pub fn logical_clock(&self) -> u64 {
        self.clock
    }
}
