//! R1 negative fixture: ordered collections keep result paths canonical.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(names: &[&str]) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for n in names {
        *counts.entry((*n).to_string()).or_insert(0) += 1;
    }
    let mut seen = BTreeSet::new();
    seen.insert(1u32);
    counts.into_iter().collect()
}
