//! R3 negative fixture: an annotated timing-only scope.

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // treu-lint: allow(wall-clock, reason = "wall time feeds the timing report only")
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}
