//! R3 positive fixture: LRU eviction recency keyed on wall-clock time —
//! the exact regression the bounded-cache lifecycle must never grow.
//! Victimizing the oldest `Instant` makes eviction order depend on when
//! the scheduler ran each lookup, so two soaks of the same workload
//! evict different entries. Recency must come from a logical operation
//! counter instead.
use std::collections::BTreeMap;
use std::time::{Instant, SystemTime};

pub struct WallClockLru {
    entries: BTreeMap<String, Instant>,
    limit: usize,
}

impl WallClockLru {
    pub fn touch(&mut self, name: &str) {
        self.entries.insert(name.to_string(), Instant::now());
    }

    pub fn evict_oldest(&mut self) {
        while self.entries.len() > self.limit {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, stamp)| **stamp)
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.entries.remove(&name);
                }
                None => break,
            }
        }
    }

    pub fn stored_at(&self) -> SystemTime {
        SystemTime::now()
    }
}
