//! R2 negative fixture: all randomness derives from the run seed.
use treu_math::rng::{derive_seed, SplitMix64};

pub fn seeded(seed: u64) -> f64 {
    let mut rng = SplitMix64::new(derive_seed(seed, "draws"));
    rng.next_f64()
}
