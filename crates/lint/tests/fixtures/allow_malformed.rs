//! A1 fixture: malformed suppression directives. Neither suppresses, so
//! the wall-clock finding fires too.

pub fn measure() -> f64 {
    // treu-lint: allow(wall-clock)
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn stamp() -> u64 {
    // treu-lint: allow(wallclock, reason = "typo in the rule name")
    0
}
