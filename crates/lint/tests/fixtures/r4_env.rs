//! R4 positive fixture: ambient environment read outside the capture
//! module.

pub fn home() -> Option<String> {
    std::env::var("HOME").ok()
}
