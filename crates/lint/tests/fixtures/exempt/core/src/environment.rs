//! R4 negative fixture: the sanctioned environment-capture module path
//! is exempt — this is where ambient reads are supposed to live.

pub fn capture(name: &str) -> Option<String> {
    std::env::var(name).ok()
}
