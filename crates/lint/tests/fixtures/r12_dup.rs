//! R12 positive (first of a pair): the canonical-looking copy of a
//! determinism-critical primitive. See `r12_dup_b.rs` for the second
//! definition, which has already drifted.

pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
