//! R10 positive: float accumulation through a `Mutex` inside a spawned
//! worker. Addition order follows lock-acquisition order, and float
//! addition is not associative — reruns drift in the low bits.

pub fn r10_locked_total(chunks: &[f64], total: &std::sync::Mutex<f64>) {
    std::thread::scope(|s| {
        for chunk in chunks.chunks(4) {
            s.spawn(move || {
                let local = chunk.iter().map(|c| c * 0.5).sum();
                *total.lock().unwrap() += local;
            });
        }
    });
}
