//! R7 negative fixture: a crate root forbidding unsafe code.
#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
