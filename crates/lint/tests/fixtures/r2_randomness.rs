//! R2 positive fixture: ambient randomness that no seed controls.

pub fn noisy() -> f64 {
    let mut rng = rand::thread_rng();
    let x: f64 = rand::random();
    let _fresh = rand::rngs::StdRng::from_entropy();
    x + rng.gen::<f64>()
}
