//! R6 negative fixture: workers fill disjoint slots; the float merge
//! happens after the join, in canonical input order.

pub fn parallel_sum(chunks: &[Vec<f64>]) -> f64 {
    let mut partials = vec![0.0; chunks.len()];
    std::thread::scope(|s| {
        for (slot, chunk) in partials.iter_mut().zip(chunks) {
            s.spawn(move || {
                let mut count = 0usize;
                for _ in chunk {
                    count += 1;
                }
                *slot = chunk.iter().sum::<f64>();
            });
        }
    });
    partials.iter().sum()
}
