//! R8 negative: the same spawn shape, but the child environment is
//! scrubbed with `env_clear` before launch — the worker sees only what
//! the spawner pins explicitly, so nothing ambient reaches the
//! fingerprint and the flow pass stays quiet.

fn r8_scrubbed_worker() -> u64 {
    let out = std::process::Command::new("worker").env_clear().output();
    out.map(|o| o.stdout.len() as u64).unwrap_or(0)
}

pub fn r8_scrubbed_key(payload: &[u8]) -> u64 {
    let stamp = r8_scrubbed_worker();
    fnv64(&stamp.to_le_bytes()) ^ fnv64(payload)
}
