//! R12 positive (second of a pair): a re-implementation of `fnv64` that
//! has drifted — it multiplies before xoring, so it is FNV-1, not
//! FNV-1a, and fingerprints diverge between the two call sites.

pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h ^= b as u64;
    }
    h
}
