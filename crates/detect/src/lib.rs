//! `treu-detect` — object detection dataset-overlap study (paper §2.6).
//!
//! The project: "investigate the performance of object detection models
//! trained on video frames containing images of lettuce and weeds. The
//! original dataset, being from video, contained many frames with
//! overlapping content. We created a second deaugmented dataset, where each
//! frame is of unique content, and investigated its impact on training
//! behavior and generalization performance. ... the model trained on
//! deaugmented set produced better generalization performance ... Because
//! the deaugmented set covered 24 times the video length compared to the
//! original dataset, we find the result unsurprising."
//!
//! Substitution (DESIGN.md §2): YOLO v8 on field video becomes a grid-cell
//! detector on a synthetic crop-row video ([`video`]): a camera pans along
//! a field strip of procedurally rendered lettuce discs and weed crosses,
//! so frame overlap is an exact, controllable quantity. [`dataset`] builds
//! the two 24-frame training sets (consecutive frames vs strided unique
//! frames) and reports their video-length coverage — including the confound
//! the paper owns up to. [`detector`] is a per-cell patch classifier, and
//! [`experiment`] reproduces the generalization comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod detector;
pub mod experiment;
pub mod metrics;
pub mod video;

pub use dataset::{build_dataset, DatasetKind};
pub use detector::{CellDetector, DetectorConfig};
pub use video::{FieldStrip, Frame, CELL};
