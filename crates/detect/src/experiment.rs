//! Harnessed experiment E2.6: original vs deaugmented training sets.

use crate::dataset::{build_dataset, DatasetKind};
use crate::detector::{CellDetector, DetectorConfig};
use crate::video::FieldStrip;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::{derive_seed, SplitMix64};

/// E2.6: train the same detector on each 24-frame dataset, validate on
/// held-out field, record accuracy/F1 and the coverage confound.
pub struct DetectionExperiment;

impl Experiment for DetectionExperiment {
    fn name(&self) -> &str {
        "detect/deaugmentation"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n_frames = ctx.int("frames", 24) as usize;
        let trials = ctx.int("trials", 3) as u64;
        let cfg =
            DetectorConfig { epochs: ctx.int("epochs", 30) as usize, ..DetectorConfig::default() };
        let mut acc = std::collections::BTreeMap::new();
        let mut f1 = std::collections::BTreeMap::new();
        let mut coverage_ratio = 0.0;
        for t in 0..trials {
            let mut rng = SplitMix64::new(derive_seed(ctx.seed(), &format!("strip{t}")));
            let strip = FieldStrip::generate(1600, 10, 0.5, &mut rng);
            // Validation: frames from the far end of the field, unseen by
            // either training set.
            let val: Vec<_> = (0..12).map(|i| strip.frame(900 + i * 40)).collect();
            let orig = build_dataset(&strip, DatasetKind::Original, 0, n_frames);
            let deaug = build_dataset(&strip, DatasetKind::Deaugmented, 0, n_frames);
            coverage_ratio += deaug.coverage_ratio(&orig) / trials as f64;
            for ds in [&orig, &deaug] {
                let mut det = CellDetector::train(
                    &ds.frames,
                    cfg,
                    derive_seed(ctx.seed(), &format!("{}.{t}", ds.kind.name())),
                );
                let q = det.evaluate(&val);
                *acc.entry(ds.kind.name()).or_insert(0.0) += q.accuracy / trials as f64;
                *f1.entry(ds.kind.name()).or_insert(0.0) += q.plant_f1 / trials as f64;
            }
        }
        for (name, a) in &acc {
            ctx.record(&format!("{name}_val_accuracy"), *a);
        }
        for (name, v) in &f1 {
            ctx.record(&format!("{name}_val_plant_f1"), *v);
        }
        ctx.record("coverage_ratio", coverage_ratio);
        ctx.record("deaug_advantage_f1", f1["deaugmented"] - f1["original"]);
        ctx.note("coverage confound: the deaugmented set spans far more video (paper: 24x)");
    }
}

/// Registers E2.6.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.6",
        "Section 2.6",
        "detector generalization: consecutive vs deaugmented 24-frame sets",
        Params::new().with_int("frames", 24).with_int("trials", 3),
        Box::new(DetectionExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    #[test]
    fn deaugmented_generalizes_better() {
        let rec = run_once(&DetectionExperiment, 2023, Params::new().with_int("trials", 2));
        let orig = rec.metric("original_val_plant_f1").unwrap();
        let deaug = rec.metric("deaugmented_val_plant_f1").unwrap();
        assert!(deaug > orig, "deaugmented f1 {deaug} must beat original {orig}");
        // The confound is on the record.
        assert!(rec.metric("coverage_ratio").unwrap() > 8.0);
    }

    #[test]
    fn experiment_is_deterministic() {
        let p = Params::new().with_int("trials", 1).with_int("epochs", 5);
        assert_deterministic(&DetectionExperiment, 7, &p);
    }

    #[test]
    fn registry_id() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E2.6").is_some());
    }
}
