//! Synthetic field video: a camera panning along a crop strip.
//!
//! The world is a tall pixel strip; plants are procedurally rendered with
//! per-instance appearance variation (size, intensity, raggedness), which
//! is what makes *instance variety* — and therefore dataset overlap —
//! matter for generalization. Lettuce renders as a filled disc, weeds as a
//! noisy cross; both sit on textured soil.

use treu_math::rng::SplitMix64;

/// Frame height and width in pixels (frames are square).
pub const FRAME: usize = 24;
/// Cell size of the detector grid (each frame is `FRAME/CELL` cells wide).
pub const CELL: usize = 6;

/// Per-cell ground-truth class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellClass {
    /// Bare soil.
    Background,
    /// Lettuce plant.
    Lettuce,
    /// Weed.
    Weed,
}

impl CellClass {
    /// Numeric label.
    pub fn label(self) -> usize {
        match self {
            CellClass::Background => 0,
            CellClass::Lettuce => 1,
            CellClass::Weed => 2,
        }
    }
}

/// A plant instance in the world strip.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Plant {
    /// Center column in world coordinates.
    cx: usize,
    /// Center row.
    cy: usize,
    /// Radius in pixels.
    radius: f64,
    /// Peak intensity.
    intensity: f64,
    /// True = lettuce, false = weed.
    lettuce: bool,
}

/// The world: a `FRAME`-tall, `length`-wide pixel strip plus its plants.
#[derive(Debug, Clone)]
pub struct FieldStrip {
    /// Pixel intensities, row-major (`FRAME x length`).
    pixels: Vec<f64>,
    /// Strip width in pixels.
    pub length: usize,
    plants: Vec<Plant>,
}

/// One camera frame: pixels plus per-cell labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// `FRAME x FRAME` pixels, row-major.
    pub pixels: Vec<f64>,
    /// Per-cell labels, row-major over the `(FRAME/CELL)²` grid.
    pub labels: Vec<usize>,
    /// World column where the frame starts.
    pub offset: usize,
}

impl FieldStrip {
    /// Generates a strip of the given pixel length with plants roughly
    /// every `spacing` columns (alternating crop rows), lettuce with
    /// probability `p_lettuce`.
    pub fn generate(length: usize, spacing: usize, p_lettuce: f64, rng: &mut SplitMix64) -> Self {
        assert!(length >= FRAME, "strip shorter than one frame");
        assert!(spacing >= 4, "plants too dense to label cells uniquely");
        let mut pixels = vec![0.0; FRAME * length];
        // Soil texture.
        for p in pixels.iter_mut() {
            *p = rng.next_gaussian() * 0.05;
        }
        let mut plants = Vec::new();
        let mut cx = spacing / 2;
        while cx + 3 < length {
            let plant = Plant {
                cx,
                cy: 4 + rng.next_bounded((FRAME - 8) as u64) as usize,
                radius: 1.6 + rng.next_f64() * 1.6,
                intensity: 0.7 + rng.next_f64() * 0.6,
                lettuce: rng.next_f64() < p_lettuce,
            };
            Self::render(&mut pixels, length, plant, rng);
            plants.push(plant);
            cx += spacing + rng.next_bounded(3) as usize;
        }
        Self { pixels, length, plants }
    }

    fn render(pixels: &mut [f64], length: usize, p: Plant, rng: &mut SplitMix64) {
        let r = p.radius.ceil() as isize + 1;
        for dy in -r..=r {
            for dx in -r..=r {
                let y = p.cy as isize + dy;
                let x = p.cx as isize + dx;
                if y < 0 || y >= FRAME as isize || x < 0 || x >= length as isize {
                    continue;
                }
                let d = ((dx * dx + dy * dy) as f64).sqrt();
                let v = if p.lettuce {
                    // Filled disc with a soft edge.
                    if d <= p.radius {
                        p.intensity * (1.0 - 0.3 * d / p.radius)
                    } else {
                        0.0
                    }
                } else {
                    // Noisy cross: strong along the axes only.
                    if (dx == 0 || dy == 0) && d <= p.radius + 1.0 {
                        -p.intensity * (0.8 + 0.4 * rng.next_f64())
                    } else {
                        0.0
                    }
                };
                if v != 0.0 {
                    pixels[y as usize * length + x as usize] = v;
                }
            }
        }
    }

    /// Extracts the frame starting at world column `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the frame would run past the strip.
    pub fn frame(&self, offset: usize) -> Frame {
        assert!(offset + FRAME <= self.length, "frame exceeds strip");
        let mut pixels = vec![0.0; FRAME * FRAME];
        for y in 0..FRAME {
            let src = y * self.length + offset;
            pixels[y * FRAME..(y + 1) * FRAME].copy_from_slice(&self.pixels[src..src + FRAME]);
        }
        let grid = FRAME / CELL;
        let mut labels = vec![CellClass::Background.label(); grid * grid];
        for p in &self.plants {
            if p.cx >= offset && p.cx < offset + FRAME {
                let gx = (p.cx - offset) / CELL;
                let gy = p.cy / CELL;
                labels[gy * grid + gx] =
                    if p.lettuce { CellClass::Lettuce.label() } else { CellClass::Weed.label() };
            }
        }
        Frame { pixels, labels, offset }
    }

    /// Number of plants in the strip.
    pub fn n_plants(&self) -> usize {
        self.plants.len()
    }

    /// Number of distinct plant instances visible in frames covering
    /// `[start, end)` world columns.
    pub fn plants_in_range(&self, start: usize, end: usize) -> usize {
        self.plants.iter().filter(|p| p.cx >= start && p.cx < end).count()
    }
}

/// Fractional pixel overlap between two frames at the given offsets.
pub fn frame_overlap(offset_a: usize, offset_b: usize) -> f64 {
    let gap = offset_a.abs_diff(offset_b);
    if gap >= FRAME {
        0.0
    } else {
        (FRAME - gap) as f64 / FRAME as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(seed: u64) -> FieldStrip {
        let mut rng = SplitMix64::new(seed);
        FieldStrip::generate(600, 10, 0.5, &mut rng)
    }

    #[test]
    fn strip_has_plants_of_both_kinds() {
        let s = strip(1);
        assert!(s.n_plants() > 30);
        let lettuce = s.plants.iter().filter(|p| p.lettuce).count();
        assert!(lettuce > 5 && lettuce < s.n_plants() - 5);
    }

    #[test]
    fn frame_extraction_shapes() {
        let s = strip(2);
        let f = s.frame(100);
        assert_eq!(f.pixels.len(), FRAME * FRAME);
        assert_eq!(f.labels.len(), (FRAME / CELL) * (FRAME / CELL));
        assert_eq!(f.offset, 100);
    }

    #[test]
    #[should_panic(expected = "frame exceeds strip")]
    fn out_of_range_frame_panics() {
        strip(3).frame(590);
    }

    #[test]
    fn labels_match_plant_positions() {
        let s = strip(4);
        let f = s.frame(50);
        let visible = s.plants_in_range(50, 50 + FRAME);
        let labelled = f.labels.iter().filter(|&&l| l != 0).count();
        // Multiple plants may share a cell; labelled <= visible.
        assert!(labelled >= 1, "some plant should be visible");
        assert!(labelled <= visible);
    }

    #[test]
    fn consecutive_frames_overlap_heavily() {
        assert!((frame_overlap(10, 11) - (FRAME as f64 - 1.0) / FRAME as f64).abs() < 1e-12);
        assert_eq!(frame_overlap(0, FRAME), 0.0);
        assert_eq!(frame_overlap(5, 5), 1.0);
    }

    #[test]
    fn lettuce_is_bright_weeds_are_dark() {
        let s = strip(5);
        for p in &s.plants {
            let v = s.pixels[p.cy * s.length + p.cx];
            if p.lettuce {
                assert!(v > 0.3, "lettuce center {v}");
            } else {
                assert!(v < -0.3, "weed center {v}");
            }
        }
    }

    #[test]
    fn generation_deterministic() {
        let a = strip(7);
        let b = strip(7);
        assert_eq!(a.pixels, b.pixels);
    }
}
