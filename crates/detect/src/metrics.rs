//! Object-level detection metrics.
//!
//! Per-cell accuracy (in [`crate::detector`]) undercounts what a grower
//! cares about: *was each plant found, near where it actually is?* This
//! module scores detections the way detection benchmarks do — greedy
//! one-to-one matching between predicted and ground-truth plant cells with
//! a localization tolerance — yielding precision/recall/F1 per class.

use crate::video::{Frame, CELL, FRAME};

/// A detected or ground-truth object: grid cell plus class (1 = lettuce,
/// 2 = weed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Grid row.
    pub gy: usize,
    /// Grid column.
    pub gx: usize,
    /// Class label (never background).
    pub class: usize,
}

/// Extracts the non-background objects from per-cell labels.
pub fn objects_of(labels: &[usize]) -> Vec<Detection> {
    let grid = FRAME / CELL;
    assert_eq!(labels.len(), grid * grid, "objects_of: wrong label arity");
    let mut out = Vec::new();
    for gy in 0..grid {
        for gx in 0..grid {
            let class = labels[gy * grid + gx];
            if class != 0 {
                out.push(Detection { gy, gx, class });
            }
        }
    }
    out
}

/// Precision/recall/F1 of predictions against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectMetrics {
    /// Matched predictions / all predictions (1.0 when nothing predicted).
    pub precision: f64,
    /// Matched ground truth / all ground truth (1.0 when nothing to find).
    pub recall: f64,
    /// Harmonic mean (0.0 when precision+recall is 0).
    pub f1: f64,
}

/// Greedy one-to-one matching: a prediction matches an unmatched
/// ground-truth object of the same class within Chebyshev distance
/// `tolerance` cells. Returns object-level metrics.
pub fn match_objects(
    predictions: &[Detection],
    truth: &[Detection],
    tolerance: usize,
) -> ObjectMetrics {
    let mut matched_truth = vec![false; truth.len()];
    let mut tp = 0usize;
    for p in predictions {
        let hit = truth.iter().enumerate().position(|(i, t)| {
            !matched_truth[i]
                && t.class == p.class
                && t.gy.abs_diff(p.gy) <= tolerance
                && t.gx.abs_diff(p.gx) <= tolerance
        });
        if let Some(i) = hit {
            matched_truth[i] = true;
            tp += 1;
        }
    }
    let precision = if predictions.is_empty() { 1.0 } else { tp as f64 / predictions.len() as f64 };
    let recall = if truth.is_empty() { 1.0 } else { tp as f64 / truth.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    ObjectMetrics { precision, recall, f1 }
}

/// Object-level evaluation of a detector's per-cell predictions over a set
/// of frames (predictions supplied as per-frame label vectors).
pub fn evaluate_objects(
    frames: &[Frame],
    predictions: &[Vec<usize>],
    tolerance: usize,
) -> ObjectMetrics {
    assert_eq!(frames.len(), predictions.len(), "evaluate_objects: frame count mismatch");
    let mut all_pred = Vec::new();
    let mut all_truth = Vec::new();
    // Offset frames along gy by frame index so objects never cross-match
    // between frames.
    let grid = FRAME / CELL;
    for (i, (f, p)) in frames.iter().zip(predictions).enumerate() {
        for mut d in objects_of(p) {
            d.gy += i * (grid + 8);
            all_pred.push(d);
        }
        for mut d in objects_of(&f.labels) {
            d.gy += i * (grid + 8);
            all_truth.push(d);
        }
    }
    match_objects(&all_pred, &all_truth, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(gy: usize, gx: usize, class: usize) -> Detection {
        Detection { gy, gx, class }
    }

    #[test]
    fn exact_match_is_perfect() {
        let t = vec![det(1, 1, 1), det(2, 3, 2)];
        let m = match_objects(&t, &t, 0);
        assert_eq!(m, ObjectMetrics { precision: 1.0, recall: 1.0, f1: 1.0 });
    }

    #[test]
    fn tolerance_allows_neighbor_cells() {
        let truth = vec![det(1, 1, 1)];
        let pred = vec![det(1, 2, 1)];
        assert_eq!(match_objects(&pred, &truth, 0).f1, 0.0);
        assert_eq!(match_objects(&pred, &truth, 1).f1, 1.0);
    }

    #[test]
    fn class_mismatch_never_matches() {
        let truth = vec![det(1, 1, 1)];
        let pred = vec![det(1, 1, 2)];
        let m = match_objects(&pred, &truth, 2);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn matching_is_one_to_one() {
        // Two predictions on one truth: only one true positive.
        let truth = vec![det(1, 1, 1)];
        let pred = vec![det(1, 1, 1), det(1, 2, 1)];
        let m = match_objects(&pred, &truth, 1);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn empty_edge_cases() {
        let m = match_objects(&[], &[], 1);
        assert_eq!(m, ObjectMetrics { precision: 1.0, recall: 1.0, f1: 1.0 });
        let miss = match_objects(&[], &[det(0, 0, 1)], 1);
        assert_eq!(miss.recall, 0.0);
        assert_eq!(miss.precision, 1.0);
    }

    #[test]
    fn trained_detector_scores_well_at_object_level() {
        use crate::dataset::{build_dataset, DatasetKind};
        use crate::detector::{cells_of, CellDetector, DetectorConfig};
        use crate::video::FieldStrip;
        use treu_math::rng::SplitMix64;

        let mut rng = SplitMix64::new(11);
        let strip = FieldStrip::generate(1600, 10, 0.5, &mut rng);
        let train = build_dataset(&strip, DatasetKind::Deaugmented, 0, 24);
        let val: Vec<_> = (0..8).map(|i| strip.frame(900 + i * 40)).collect();
        let mut detector = CellDetector::train(&train.frames, DetectorConfig::default(), 4);
        // Per-frame predictions via the per-cell pathway.
        let grid = FRAME / CELL;
        let preds: Vec<Vec<usize>> = val
            .iter()
            .map(|f| {
                let (x, _) = cells_of(std::slice::from_ref(f));
                let mut model_preds = Vec::with_capacity(grid * grid);
                // Reuse evaluate's pathway: predict per cell.
                let q = detector.predict_cells(&x);
                model_preds.extend(q);
                model_preds
            })
            .collect();
        let m = evaluate_objects(&val, &preds, 1);
        assert!(m.recall > 0.6, "object recall {}", m.recall);
        assert!(m.precision > 0.5, "object precision {}", m.precision);
    }
}
