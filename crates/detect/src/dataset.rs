//! The two 24-frame training sets and their coverage accounting.

use crate::video::{FieldStrip, Frame, FRAME};

/// Which 24-frame dataset to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Consecutive frames (stride 1): heavy overlap, little variety — the
    /// paper's "original dataset ... from video".
    Original,
    /// Frames strided a full frame apart: every frame has unique content —
    /// the paper's "deaugmented dataset".
    Deaugmented,
}

impl DatasetKind {
    /// Frame stride in world columns.
    pub fn stride(self) -> usize {
        match self {
            DatasetKind::Original => 1,
            DatasetKind::Deaugmented => FRAME,
        }
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Original => "original",
            DatasetKind::Deaugmented => "deaugmented",
        }
    }
}

/// A built dataset plus its provenance numbers.
#[derive(Debug, Clone)]
pub struct FrameDataset {
    /// The frames.
    pub frames: Vec<Frame>,
    /// Kind that built it.
    pub kind: DatasetKind,
    /// World columns spanned by the dataset.
    pub coverage_columns: usize,
    /// Distinct plant instances visible.
    pub distinct_plants: usize,
}

/// Builds a `n_frames` dataset starting at world column `start`.
///
/// # Panics
///
/// Panics if the strip is too short for the requested span.
pub fn build_dataset(
    strip: &FieldStrip,
    kind: DatasetKind,
    start: usize,
    n_frames: usize,
) -> FrameDataset {
    let stride = kind.stride();
    let span = (n_frames - 1) * stride + FRAME;
    assert!(start + span <= strip.length, "strip too short: need {span} columns");
    let frames: Vec<Frame> = (0..n_frames).map(|i| strip.frame(start + i * stride)).collect();
    FrameDataset {
        frames,
        kind,
        coverage_columns: span,
        distinct_plants: strip.plants_in_range(start, start + span),
    }
}

impl FrameDataset {
    /// Coverage ratio of this dataset relative to another (the confound
    /// the paper reports: "the deaugmented set covered 24 times the video
    /// length").
    pub fn coverage_ratio(&self, other: &FrameDataset) -> f64 {
        self.coverage_columns as f64 / other.coverage_columns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_math::rng::SplitMix64;

    fn strip() -> FieldStrip {
        let mut rng = SplitMix64::new(1);
        FieldStrip::generate(1200, 10, 0.5, &mut rng)
    }

    #[test]
    fn original_overlaps_deaugmented_does_not() {
        let s = strip();
        let orig = build_dataset(&s, DatasetKind::Original, 0, 24);
        let deaug = build_dataset(&s, DatasetKind::Deaugmented, 0, 24);
        assert_eq!(orig.frames.len(), 24);
        assert_eq!(deaug.frames.len(), 24);
        assert!(crate::video::frame_overlap(orig.frames[0].offset, orig.frames[1].offset) > 0.9);
        assert_eq!(
            crate::video::frame_overlap(deaug.frames[0].offset, deaug.frames[1].offset),
            0.0
        );
    }

    #[test]
    fn deaugmented_covers_far_more_video() {
        let s = strip();
        let orig = build_dataset(&s, DatasetKind::Original, 0, 24);
        let deaug = build_dataset(&s, DatasetKind::Deaugmented, 0, 24);
        let ratio = deaug.coverage_ratio(&orig);
        // (23*24+24) / (23+24) = 600/47 ≈ 12.8 with these shapes; the
        // paper's 24x came from its own frame geometry. Direction is what
        // matters: an order of magnitude more video.
        assert!(ratio > 8.0, "coverage ratio {ratio}");
        assert!(deaug.distinct_plants > 2 * orig.distinct_plants);
    }

    #[test]
    #[should_panic(expected = "strip too short")]
    fn short_strip_panics() {
        let mut rng = SplitMix64::new(2);
        let s = FieldStrip::generate(100, 10, 0.5, &mut rng);
        build_dataset(&s, DatasetKind::Deaugmented, 0, 24);
    }

    #[test]
    fn names_and_strides() {
        assert_eq!(DatasetKind::Original.stride(), 1);
        assert_eq!(DatasetKind::Deaugmented.stride(), FRAME);
        assert_ne!(DatasetKind::Original.name(), DatasetKind::Deaugmented.name());
    }
}
