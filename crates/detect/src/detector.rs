//! The grid-cell detector: a per-cell patch classifier.
//!
//! Plays the role of YOLO v8 at the scale of this study: each `CELL x CELL`
//! grid cell is classified {background, lettuce, weed} from its pixel
//! patch (plus a one-pixel context ring) by a small MLP. Detection metrics
//! are per-cell accuracy and per-class F1.

use crate::video::{Frame, CELL, FRAME};
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::Matrix;
use treu_nn::prelude::*;

/// Patch side length (cell plus one-pixel context ring).
pub const PATCH: usize = CELL + 2;

/// Detector hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// SGD learning rate.
    pub lr: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self { hidden: 24, epochs: 30, batch: 32, lr: 0.05 }
    }
}

/// Extracts the padded patch for cell `(gy, gx)` of a frame.
pub fn cell_patch(frame: &Frame, gy: usize, gx: usize) -> Vec<f64> {
    let mut patch = vec![0.0; PATCH * PATCH];
    for py in 0..PATCH {
        for px in 0..PATCH {
            let y = (gy * CELL + py) as isize - 1;
            let x = (gx * CELL + px) as isize - 1;
            if (0..FRAME as isize).contains(&y) && (0..FRAME as isize).contains(&x) {
                patch[py * PATCH + px] = frame.pixels[y as usize * FRAME + x as usize];
            }
        }
    }
    patch
}

/// Converts frames into per-cell `(features, labels)`.
pub fn cells_of(frames: &[Frame]) -> (Matrix, Vec<usize>) {
    let grid = FRAME / CELL;
    let n = frames.len() * grid * grid;
    let mut x = Matrix::zeros(n, PATCH * PATCH);
    let mut y = Vec::with_capacity(n);
    let mut row = 0;
    for f in frames {
        for gy in 0..grid {
            for gx in 0..grid {
                x.row_mut(row).copy_from_slice(&cell_patch(f, gy, gx));
                y.push(f.labels[gy * grid + gx]);
                row += 1;
            }
        }
    }
    (x, y)
}

/// The trained detector.
pub struct CellDetector {
    model: Sequential,
}

/// Per-class detection quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionQuality {
    /// Overall per-cell accuracy.
    pub accuracy: f64,
    /// Macro F1 over lettuce and weed (background excluded, since it
    /// dominates the cell population).
    pub plant_f1: f64,
}

impl CellDetector {
    /// Trains a detector on the given frames.
    pub fn train(frames: &[Frame], cfg: DetectorConfig, seed: u64) -> Self {
        let (x, y) = cells_of(frames);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(PATCH * PATCH, cfg.hidden, derive_seed(seed, "l1"))),
            Box::new(Relu::new()),
            Box::new(Dense::new(cfg.hidden, 3, derive_seed(seed, "l2"))),
        ]);
        let mut opt = Sgd::new(cfg.lr, 0.9);
        let mut rng = SplitMix64::new(derive_seed(seed, "epochs"));
        for _ in 0..cfg.epochs {
            treu_nn::model::train_epoch(&mut model, &mut opt, &x, &y, cfg.batch, &mut rng);
        }
        Self { model }
    }

    /// Predicts the class of each feature row (cells from [`cells_of`]).
    pub fn predict_cells(&mut self, x: &Matrix) -> Vec<usize> {
        treu_nn::model::predict(&mut self.model, x)
    }

    /// Evaluates on frames, returning per-cell accuracy and plant F1.
    pub fn evaluate(&mut self, frames: &[Frame]) -> DetectionQuality {
        let (x, y) = cells_of(frames);
        let preds = treu_nn::model::predict(&mut self.model, &x);
        let accuracy =
            preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len().max(1) as f64;
        let f1 = |class: usize| -> f64 {
            let tp =
                preds.iter().zip(&y).filter(|(&p, &t)| p == class && t == class).count() as f64;
            let fp =
                preds.iter().zip(&y).filter(|(&p, &t)| p == class && t != class).count() as f64;
            let fneg =
                preds.iter().zip(&y).filter(|(&p, &t)| p != class && t == class).count() as f64;
            if tp == 0.0 {
                0.0
            } else {
                2.0 * tp / (2.0 * tp + fp + fneg)
            }
        };
        DetectionQuality { accuracy, plant_f1: 0.5 * (f1(1) + f1(2)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, DatasetKind};
    use crate::video::FieldStrip;

    fn strip(seed: u64) -> FieldStrip {
        let mut rng = SplitMix64::new(seed);
        FieldStrip::generate(1600, 10, 0.5, &mut rng)
    }

    #[test]
    fn patch_has_context_ring() {
        let s = strip(1);
        let f = s.frame(0);
        let p = cell_patch(&f, 0, 0);
        assert_eq!(p.len(), PATCH * PATCH);
        // Top-left corner of the ring is out of frame -> zero padding.
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn cells_of_shapes() {
        let s = strip(2);
        let frames = vec![s.frame(0), s.frame(30)];
        let (x, y) = cells_of(&frames);
        let grid = FRAME / CELL;
        assert_eq!(x.shape(), (2 * grid * grid, PATCH * PATCH));
        assert_eq!(y.len(), 2 * grid * grid);
    }

    #[test]
    fn detector_learns_on_varied_data() {
        let s = strip(3);
        let train = build_dataset(&s, DatasetKind::Deaugmented, 0, 24);
        let val: Vec<_> = (0..10).map(|i| s.frame(700 + i * 40)).collect();
        let mut det = CellDetector::train(&train.frames, DetectorConfig::default(), 4);
        let q = det.evaluate(&val);
        assert!(q.accuracy > 0.85, "accuracy {}", q.accuracy);
        assert!(q.plant_f1 > 0.5, "plant f1 {}", q.plant_f1);
    }

    #[test]
    fn training_is_deterministic() {
        let s = strip(5);
        let train = build_dataset(&s, DatasetKind::Original, 0, 12);
        let val = vec![s.frame(500)];
        let run = || {
            let cfg = DetectorConfig { epochs: 5, ..DetectorConfig::default() };
            let mut det = CellDetector::train(&train.frames, cfg, 6);
            det.evaluate(&val).accuracy.to_bits()
        };
        assert_eq!(run(), run());
    }
}
