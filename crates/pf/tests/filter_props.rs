//! Property tests on the particle-filter invariants: weight normalization,
//! ESS bounds, monotone-ish tracking, and kernel sanity across random
//! configurations.

use proptest::prelude::*;
use treu_math::rng::SplitMix64;
use treu_pf::filter::{FilterConfig, ScheduleFilter};
use treu_pf::schedule::{DriftModel, EventSchedule, Observation, Performance, SensorModel};
use treu_pf::WeightFn;

fn any_kernel() -> impl Strategy<Value = WeightFn> {
    prop_oneof![
        Just(WeightFn::Gaussian),
        Just(WeightFn::Triangular),
        Just(WeightFn::Rational),
        Just(WeightFn::Biweight),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ess_stays_within_bounds(seed in any::<u64>(), kernel in any_kernel(), n in 8usize..128) {
        let schedule = EventSchedule::uniform(10, 6.0);
        let cfg = FilterConfig { kernel, n_particles: n, ..FilterConfig::default() };
        let mut f = ScheduleFilter::new(schedule, cfg, seed);
        for k in 0..10 {
            f.step(0.1, Observation::Event { id: k });
            let ess = f.effective_sample_size();
            prop_assert!(ess >= 1.0 - 1e-9 && ess <= n as f64 + 1e-9, "ess {}", ess);
        }
    }

    #[test]
    fn estimate_is_finite_and_nonnegative(seed in any::<u64>(), kernel in any_kernel()) {
        let schedule = EventSchedule::uniform(8, 5.0);
        let mut rng = SplitMix64::new(seed);
        let perf = Performance::simulate(
            &schedule,
            DriftModel::default(),
            SensorModel::default(),
            0.1,
            &mut rng,
        );
        let cfg = FilterConfig { kernel, n_particles: 64, ..FilterConfig::default() };
        let mut f = ScheduleFilter::new(schedule, cfg, seed ^ 1);
        for &obs in &perf.observations {
            f.step(perf.dt, obs);
            let e = f.estimate();
            prop_assert!(e.is_finite() && e >= 0.0, "estimate {}", e);
        }
    }

    #[test]
    fn kernels_are_bounded_probability_like(kernel in any_kernel(), d in -50.0..50.0f64, sigma in 0.1..10.0f64) {
        let w = kernel.eval(d, sigma);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&w), "{} eval {}", kernel.name(), w);
    }

    #[test]
    fn wrong_labels_do_not_destroy_the_cloud(seed in any::<u64>()) {
        // Feed deliberately contradictory observations: the weight floor
        // must keep the filter alive (finite estimate, ESS >= 1).
        let schedule = EventSchedule::uniform(10, 6.0);
        let mut f = ScheduleFilter::new(schedule, FilterConfig::default(), seed);
        for k in [9usize, 0, 9, 0, 9, 0] {
            f.step(0.1, Observation::Event { id: k });
        }
        prop_assert!(f.estimate().is_finite());
        prop_assert!(f.effective_sample_size() >= 1.0 - 1e-9);
    }

    #[test]
    fn performance_truth_is_strictly_increasing(seed in any::<u64>(), k in 2usize..20) {
        let schedule = EventSchedule::uniform(k, 5.0);
        let mut rng = SplitMix64::new(seed);
        let perf = Performance::simulate(
            &schedule,
            DriftModel::default(),
            SensorModel::default(),
            0.1,
            &mut rng,
        );
        prop_assert!(perf.truth.windows(2).all(|w| w[1] > w[0]));
        prop_assert_eq!(perf.truth.len(), perf.observations.len());
    }
}
