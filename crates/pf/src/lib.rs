//! `treu-pf` — particle filters for event location (paper §2.2).
//!
//! The project: "Particle filters are often used to estimate the position
//! of an object in an environment given a map of its features and
//! (imperfect) sensor readings. Usual implementations of particle filters
//! require environment features to be repeatedly observable, and we sought
//! ways around this limitation. The case study involved locating events in
//! a musical concert."
//!
//! The model here: a concert follows a published [`schedule::EventSchedule`]
//! but is performed with tempo drift, so the *temporal location* within the
//! schedule is the hidden state. Each event is heard at most once (features
//! are **not** repeatedly observable), which defeats the "typical" filter
//! with a fixed-rate motion model ([`baseline`]) and motivates the
//! schedule-aware filter with an augmented `(position, rate)` state
//! ([`filter::ScheduleFilter`]).
//!
//! The section's second finding — "a fast weighting function that ... is
//! much faster and almost as accurate as the typical Gaussian weighting
//! function" — is [`weighting::WeightFn::Triangular`] (and `Rational`),
//! compared against `Gaussian` in experiment E2.2a and in the
//! `pf_weighting` criterion bench.
//!
//! # Example
//!
//! ```
//! use treu_pf::experiment::{run_tracking, Workload};
//! use treu_pf::WeightFn;
//!
//! let result = run_tracking(Workload::default(), WeightFn::Triangular, 128, 7);
//! assert!(result.rmse.is_finite() && result.kernel_evals > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiment;
pub mod filter;
pub mod schedule;
pub mod weighting;

pub use filter::ScheduleFilter;
pub use schedule::{EventSchedule, Observation, Performance};
pub use weighting::WeightFn;
