//! The "typical" particle filter baseline.
//!
//! This is the filter the §2.2 project set out to beat: position-only
//! state, fixed nominal rate in the motion model, Gaussian weighting. It
//! is exactly right when features are repeatedly observable (any tempo
//! error gets corrected by the next sighting of the *same* feature), and
//! systematically wrong for one-shot events: once the performance drifts,
//! the fixed-rate prediction walks away from the truth and each event is
//! heard only once, so the filter never accumulates enough evidence about
//! the rate.

use crate::schedule::{EventSchedule, Observation};
use crate::weighting::WeightFn;
use treu_math::rng::SplitMix64;

/// Configuration for the baseline filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Number of particles.
    pub n_particles: usize,
    /// Kernel bandwidth.
    pub sigma: f64,
    /// Process noise on position per √tick.
    pub pos_noise: f64,
    /// Assumed (fixed) progression rate.
    pub assumed_rate: f64,
    /// Resample when ESS falls below this fraction.
    pub resample_threshold: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            n_particles: 256,
            sigma: 1.5,
            pos_noise: 0.05,
            assumed_rate: 1.0,
            resample_threshold: 0.5,
        }
    }
}

/// Position-only particle filter with a fixed-rate motion model.
pub struct BaselineFilter {
    schedule: EventSchedule,
    config: BaselineConfig,
    positions: Vec<f64>,
    weights: Vec<f64>,
    rng: SplitMix64,
}

impl BaselineFilter {
    /// Creates the baseline filter.
    pub fn new(schedule: EventSchedule, config: BaselineConfig, seed: u64) -> Self {
        assert!(config.n_particles > 0, "need at least one particle");
        let mut rng = SplitMix64::new(seed);
        let positions = (0..config.n_particles).map(|_| rng.next_f64() * 0.5).collect();
        let weights = vec![1.0 / config.n_particles as f64; config.n_particles];
        Self { schedule, config, positions, weights, rng }
    }

    /// One predict/update tick.
    pub fn step(&mut self, dt: f64, obs: Observation) {
        for p in &mut self.positions {
            *p += self.config.assumed_rate * dt
                + self.rng.next_gaussian() * self.config.pos_noise * dt.sqrt();
            *p = p.max(0.0);
        }
        if let Observation::Event { id } = obs {
            if id < self.schedule.len() {
                let t_event = self.schedule.time_of(id);
                for (i, &p) in self.positions.iter().enumerate() {
                    self.weights[i] *=
                        1e-3 + 0.999 * WeightFn::Gaussian.eval(p - t_event, self.config.sigma);
                }
                let total: f64 = self.weights.iter().sum();
                if total > 0.0 && total.is_finite() {
                    for w in &mut self.weights {
                        *w /= total;
                    }
                } else {
                    self.weights.fill(1.0 / self.positions.len() as f64);
                }
                let ess: f64 = 1.0 / self.weights.iter().map(|w| w * w).sum::<f64>();
                if ess < self.config.resample_threshold * self.positions.len() as f64 {
                    self.resample();
                }
            }
        }
    }

    /// Weighted-mean position estimate.
    pub fn estimate(&self) -> f64 {
        self.positions.iter().zip(&self.weights).map(|(p, w)| p * w).sum()
    }

    fn resample(&mut self) {
        let n = self.positions.len();
        let step = 1.0 / n as f64;
        let start = self.rng.next_f64() * step;
        let mut new = Vec::with_capacity(n);
        let mut cum = self.weights[0];
        let mut i = 0;
        for k in 0..n {
            let u = start + k as f64 * step;
            while u > cum && i + 1 < n {
                i += 1;
                cum += self.weights[i];
            }
            new.push(self.positions[i]);
        }
        self.positions = new;
        self.weights.fill(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{FilterConfig, ScheduleFilter};
    use crate::schedule::{DriftModel, Performance, SensorModel};

    fn rmse_pair(rate0: f64, seed: u64) -> (f64, f64) {
        let schedule = EventSchedule::uniform(20, 8.0);
        let mut rng = SplitMix64::new(seed);
        let perf = Performance::simulate(
            &schedule,
            DriftModel { rate0, ..DriftModel::default() },
            SensorModel::default(),
            0.1,
            &mut rng,
        );
        let mut base = BaselineFilter::new(schedule.clone(), BaselineConfig::default(), seed ^ 1);
        let mut ours = ScheduleFilter::new(schedule, FilterConfig::default(), seed ^ 1);
        let (mut se_b, mut se_o) = (0.0, 0.0);
        for (&truth, &obs) in perf.truth.iter().zip(&perf.observations) {
            base.step(perf.dt, obs);
            ours.step(perf.dt, obs);
            se_b += (base.estimate() - truth).powi(2);
            se_o += (ours.estimate() - truth).powi(2);
        }
        let n = perf.len() as f64;
        ((se_b / n).sqrt(), (se_o / n).sqrt())
    }

    #[test]
    fn baseline_is_fine_on_tempo() {
        // "Fine" is relative: the tempo random walk still accumulates a
        // few seconds of drift over a ~200 s performance, so the fixed-rate
        // baseline cannot be sub-second even on tempo.
        let (b, _) = rmse_pair(1.0, 1);
        assert!(b < 5.0, "on-tempo baseline rmse {b}");
    }

    #[test]
    fn schedule_aware_beats_baseline_under_drift() {
        // Aggregate over seeds: the rate-tracking filter should win when
        // the performance runs 15% fast.
        let mut wins = 0;
        for seed in 0..6 {
            let (b, o) = rmse_pair(1.15, seed);
            if o < b {
                wins += 1;
            }
        }
        assert!(wins >= 4, "schedule-aware won only {wins}/6 drifted runs");
    }

    #[test]
    fn baseline_estimate_advances() {
        let schedule = EventSchedule::uniform(5, 10.0);
        let mut f = BaselineFilter::new(schedule, BaselineConfig::default(), 2);
        for _ in 0..100 {
            f.step(0.1, Observation::Silence);
        }
        assert!((f.estimate() - 10.0).abs() < 2.0, "estimate {}", f.estimate());
    }

    #[test]
    fn baseline_deterministic() {
        assert_eq!(rmse_pair(1.1, 5), rmse_pair(1.1, 5));
    }
}
