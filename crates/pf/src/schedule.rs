//! Concert schedules, performances, and the sensor model.
//!
//! A schedule lists K distinct events at nominal times. A *performance* of
//! the schedule plays the events in order but at a drifting tempo, so event
//! k actually sounds when the performance's schedule-position crosses the
//! nominal time of event k. A sensor sometimes hears an event (and may
//! mislabel it), producing the observation stream the filters consume.

use treu_math::rng::SplitMix64;

/// A published schedule of `K` distinct events at nominal times (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct EventSchedule {
    times: Vec<f64>,
}

impl EventSchedule {
    /// Creates a schedule from strictly increasing nominal event times.
    ///
    /// # Panics
    ///
    /// Panics if the times are empty or not strictly increasing.
    pub fn new(times: Vec<f64>) -> Self {
        assert!(!times.is_empty(), "schedule needs at least one event");
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "schedule times must be strictly increasing"
        );
        Self { times }
    }

    /// An evenly spaced schedule: `k` events `spacing` seconds apart,
    /// starting at `spacing`.
    pub fn uniform(k: usize, spacing: f64) -> Self {
        Self::new((1..=k).map(|i| i as f64 * spacing).collect())
    }

    /// A jittered schedule: uniform plus deterministic per-event jitter —
    /// closer to a real concert program.
    pub fn jittered(k: usize, spacing: f64, jitter: f64, rng: &mut SplitMix64) -> Self {
        let mut times: Vec<f64> =
            (1..=k).map(|i| i as f64 * spacing + (rng.next_f64() - 0.5) * 2.0 * jitter).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Enforce strict monotonicity in case jitter collided two events.
        for i in 1..times.len() {
            if times[i] <= times[i - 1] {
                times[i] = times[i - 1] + 1e-6;
            }
        }
        Self::new(times)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the schedule is empty (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Nominal time of event `k`.
    pub fn time_of(&self, k: usize) -> f64 {
        self.times[k]
    }

    /// Total nominal duration (time of the last event).
    pub fn duration(&self) -> f64 {
        *self.times.last().expect("non-empty by construction")
    }

    /// All nominal times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }
}

/// One sensor reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Observation {
    /// An event was heard and labelled (possibly wrongly) as `id`.
    Event {
        /// Reported event index.
        id: usize,
    },
    /// Nothing was heard this tick.
    Silence,
}

/// Sensor characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorModel {
    /// Probability an occurring event is detected at all.
    pub p_detect: f64,
    /// Probability a detected event is labelled with a random wrong id.
    pub p_mislabel: f64,
    /// Half-width (in schedule seconds) of the audibility window around an
    /// event's nominal time.
    pub window: f64,
}

impl Default for SensorModel {
    fn default() -> Self {
        Self { p_detect: 0.9, p_mislabel: 0.05, window: 1.5 }
    }
}

/// A simulated performance: the ground-truth trajectory of schedule
/// position over wall time, plus the observation stream.
#[derive(Debug, Clone)]
pub struct Performance {
    /// Ground-truth schedule position at each tick.
    pub truth: Vec<f64>,
    /// Observation at each tick.
    pub observations: Vec<Observation>,
    /// Tick length in seconds.
    pub dt: f64,
}

/// Tempo-drift parameters for a performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Initial rate (schedule seconds per wall second); 1.0 = on tempo.
    pub rate0: f64,
    /// Per-tick Gaussian perturbation of the rate (random-walk scale).
    pub rate_walk: f64,
    /// Rate is clamped to `[min_rate, max_rate]`.
    pub min_rate: f64,
    /// Upper clamp.
    pub max_rate: f64,
}

impl Default for DriftModel {
    fn default() -> Self {
        Self { rate0: 1.0, rate_walk: 0.004, min_rate: 0.7, max_rate: 1.3 }
    }
}

impl Performance {
    /// Simulates a performance of `schedule` until the position passes the
    /// final event (plus one window), with the given drift and sensor.
    pub fn simulate(
        schedule: &EventSchedule,
        drift: DriftModel,
        sensor: SensorModel,
        dt: f64,
        rng: &mut SplitMix64,
    ) -> Self {
        let mut pos = 0.0;
        let mut rate = drift.rate0;
        let mut truth = Vec::new();
        let mut observations = Vec::new();
        let mut emitted = vec![false; schedule.len()];
        let end = schedule.duration() + sensor.window;
        let max_ticks = ((end / dt) * 3.0) as usize + 10;
        for _ in 0..max_ticks {
            if pos > end {
                break;
            }
            rate = (rate + rng.next_gaussian() * drift.rate_walk)
                .clamp(drift.min_rate, drift.max_rate);
            pos += rate * dt;
            truth.push(pos);

            // An event sounds when its nominal time is first crossed; it
            // is audible (once) within the sensor window.
            let mut obs = Observation::Silence;
            for (k, &t) in schedule.times().iter().enumerate() {
                if !emitted[k] && pos >= t && (pos - t) <= sensor.window {
                    emitted[k] = true;
                    if rng.next_f64() < sensor.p_detect {
                        let id = if rng.next_f64() < sensor.p_mislabel {
                            rng.next_bounded(schedule.len() as u64) as usize
                        } else {
                            k
                        };
                        obs = Observation::Event { id };
                    }
                    break;
                }
            }
            observations.push(obs);
        }
        Self { truth, observations, dt }
    }

    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// True when the performance has no ticks.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Number of non-silent observations.
    pub fn n_events_heard(&self) -> usize {
        self.observations.iter().filter(|o| matches!(o, Observation::Event { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schedule_spacing() {
        let s = EventSchedule::uniform(5, 10.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.time_of(0), 10.0);
        assert_eq!(s.duration(), 50.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_schedule_panics() {
        EventSchedule::new(vec![1.0, 1.0]);
    }

    #[test]
    fn jittered_schedule_is_monotone() {
        let mut rng = SplitMix64::new(1);
        let s = EventSchedule::jittered(50, 5.0, 2.4, &mut rng);
        assert!(s.times().windows(2).all(|w| w[1] > w[0]));
        assert_eq!(s.len(), 50);
    }

    #[test]
    fn performance_truth_is_monotone_and_covers_schedule() {
        let s = EventSchedule::uniform(8, 10.0);
        let mut rng = SplitMix64::new(2);
        let p =
            Performance::simulate(&s, DriftModel::default(), SensorModel::default(), 0.1, &mut rng);
        assert!(!p.is_empty());
        assert!(p.truth.windows(2).all(|w| w[1] > w[0]), "position must advance");
        assert!(*p.truth.last().unwrap() >= s.duration());
    }

    #[test]
    fn each_event_heard_at_most_once() {
        let s = EventSchedule::uniform(10, 8.0);
        let mut rng = SplitMix64::new(3);
        let sensor = SensorModel { p_detect: 1.0, p_mislabel: 0.0, window: 2.0 };
        let p = Performance::simulate(&s, DriftModel::default(), sensor, 0.1, &mut rng);
        let mut counts = vec![0usize; s.len()];
        for o in &p.observations {
            if let Observation::Event { id } = o {
                counts[*id] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c <= 1), "one-shot events: {counts:?}");
        assert_eq!(p.n_events_heard(), 10, "perfect sensor hears every event");
    }

    #[test]
    fn detection_probability_thins_observations() {
        let s = EventSchedule::uniform(40, 5.0);
        let mut rng = SplitMix64::new(4);
        let sensor = SensorModel { p_detect: 0.5, p_mislabel: 0.0, window: 2.0 };
        let p = Performance::simulate(&s, DriftModel::default(), sensor, 0.1, &mut rng);
        let heard = p.n_events_heard();
        assert!(heard < 38 && heard > 5, "heard {heard} of 40 at p=0.5");
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = EventSchedule::uniform(6, 7.0);
        let run = |seed| {
            let mut rng = SplitMix64::new(seed);
            Performance::simulate(&s, DriftModel::default(), SensorModel::default(), 0.1, &mut rng)
                .truth
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn drift_clamps_rate() {
        let s = EventSchedule::uniform(3, 5.0);
        let mut rng = SplitMix64::new(5);
        let drift = DriftModel { rate0: 1.0, rate_walk: 0.5, min_rate: 0.9, max_rate: 1.1 };
        let p = Performance::simulate(&s, drift, SensorModel::default(), 0.1, &mut rng);
        for w in p.truth.windows(2) {
            let r = (w[1] - w[0]) / 0.1;
            assert!((0.89..=1.11).contains(&r), "rate {r} escaped clamp");
        }
    }
}
