//! The schedule-aware particle filter.
//!
//! State per particle: `(position, rate)` — where the performance is in the
//! schedule and how fast it is progressing. The rate component is what the
//! "usual implementations" lack: with one-shot events there is no chance to
//! re-observe a feature and correct a bad velocity estimate after the fact,
//! so the filter must carry rate uncertainty explicitly. (The paper credits
//! "ideas from reinforcement learning" for adapting the proposal; here that
//! is the rate random-walk whose scale anneals with the effective sample
//! size.)

use crate::schedule::{EventSchedule, Observation};
use crate::weighting::WeightFn;
use treu_math::rng::SplitMix64;

/// One particle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Schedule position (seconds into the program).
    pub pos: f64,
    /// Progression rate (schedule seconds per wall second).
    pub rate: f64,
}

/// Filter configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Number of particles.
    pub n_particles: usize,
    /// Weighting kernel.
    pub kernel: WeightFn,
    /// Kernel bandwidth (schedule seconds).
    pub sigma: f64,
    /// Process noise on position per √tick.
    pub pos_noise: f64,
    /// Random-walk scale on rate per tick.
    pub rate_noise: f64,
    /// Resample when ESS falls below this fraction of `n_particles`.
    pub resample_threshold: f64,
    /// Floor weight mixed into every particle so mislabelled events cannot
    /// zero out the whole cloud (the filter's robustness to `p_mislabel`).
    pub weight_floor: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self {
            n_particles: 256,
            kernel: WeightFn::Gaussian,
            sigma: 1.5,
            pos_noise: 0.05,
            rate_noise: 0.01,
            resample_threshold: 0.5,
            weight_floor: 1e-3,
        }
    }
}

/// A running schedule-aware particle filter.
pub struct ScheduleFilter {
    schedule: EventSchedule,
    config: FilterConfig,
    particles: Vec<Particle>,
    weights: Vec<f64>,
    rng: SplitMix64,
    kernel_evals: u64,
    resamples: u64,
}

impl ScheduleFilter {
    /// Creates a filter with particles initialized at the schedule start
    /// with rate spread around 1.0.
    pub fn new(schedule: EventSchedule, config: FilterConfig, seed: u64) -> Self {
        assert!(config.n_particles > 0, "need at least one particle");
        let mut rng = SplitMix64::new(seed);
        let particles = (0..config.n_particles)
            .map(|_| Particle { pos: rng.next_f64() * 0.5, rate: 1.0 + rng.next_gaussian() * 0.05 })
            .collect();
        let weights = vec![1.0 / config.n_particles as f64; config.n_particles];
        Self { schedule, config, particles, weights, rng, kernel_evals: 0, resamples: 0 }
    }

    /// Advances every particle by one tick of length `dt` (the prediction
    /// step), then folds in the observation (the update step), resampling
    /// if the effective sample size has collapsed.
    pub fn step(&mut self, dt: f64, obs: Observation) {
        // Predict: position advances by rate; rate does a random walk whose
        // scale grows when the cloud is degenerate (the adaptive proposal).
        let ess_frac = self.effective_sample_size() / self.config.n_particles as f64;
        let boost = if ess_frac < 0.25 { 3.0 } else { 1.0 };
        for p in &mut self.particles {
            p.rate = (p.rate + self.rng.next_gaussian() * self.config.rate_noise * boost)
                .clamp(0.5, 1.5);
            p.pos += p.rate * dt + self.rng.next_gaussian() * self.config.pos_noise * dt.sqrt();
            p.pos = p.pos.max(0.0);
        }

        // Update: weight by agreement between each particle's position and
        // the observed event's nominal time.
        if let Observation::Event { id } = obs {
            if id < self.schedule.len() {
                let t_event = self.schedule.time_of(id);
                let floor = self.config.weight_floor;
                for (i, p) in self.particles.iter().enumerate() {
                    let d = p.pos - t_event;
                    let w = self.config.kernel.eval(d, self.config.sigma);
                    self.kernel_evals += 1;
                    self.weights[i] *= floor + (1.0 - floor) * w;
                }
                self.normalize_weights();
                if self.effective_sample_size()
                    < self.config.resample_threshold * self.config.n_particles as f64
                {
                    self.resample();
                }
            }
        }
    }

    /// Weighted-mean estimate of the current schedule position.
    pub fn estimate(&self) -> f64 {
        self.particles.iter().zip(&self.weights).map(|(p, w)| p.pos * w).sum()
    }

    /// Weighted-mean estimate of the progression rate.
    pub fn rate_estimate(&self) -> f64 {
        self.particles.iter().zip(&self.weights).map(|(p, w)| p.rate * w).sum()
    }

    /// Kish effective sample size `1 / Σ w²`.
    pub fn effective_sample_size(&self) -> f64 {
        let s: f64 = self.weights.iter().map(|w| w * w).sum();
        if s > 0.0 {
            1.0 / s
        } else {
            0.0
        }
    }

    /// Number of kernel evaluations so far (deterministic cost proxy).
    pub fn kernel_evals(&self) -> u64 {
        self.kernel_evals
    }

    /// Number of resampling events so far.
    pub fn resamples(&self) -> u64 {
        self.resamples
    }

    /// Particle count.
    pub fn n_particles(&self) -> usize {
        self.particles.len()
    }

    fn normalize_weights(&mut self) {
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            // Degenerate cloud: reset to uniform rather than propagate NaN.
            let u = 1.0 / self.weights.len() as f64;
            self.weights.fill(u);
            return;
        }
        for w in &mut self.weights {
            *w /= total;
        }
    }

    /// Systematic (low-variance) resampling.
    fn resample(&mut self) {
        let n = self.particles.len();
        let step = 1.0 / n as f64;
        let start = self.rng.next_f64() * step;
        let mut new = Vec::with_capacity(n);
        let mut cum = self.weights[0];
        let mut i = 0;
        for k in 0..n {
            let u = start + k as f64 * step;
            while u > cum && i + 1 < n {
                i += 1;
                cum += self.weights[i];
            }
            new.push(self.particles[i]);
        }
        self.particles = new;
        self.weights.fill(step);
        self.resamples += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{DriftModel, Performance, SensorModel};

    fn track(kernel: WeightFn, seed: u64) -> (f64, f64) {
        let schedule = EventSchedule::uniform(20, 8.0);
        let mut rng = SplitMix64::new(seed);
        let perf = Performance::simulate(
            &schedule,
            DriftModel { rate0: 1.1, ..DriftModel::default() },
            SensorModel::default(),
            0.1,
            &mut rng,
        );
        let mut f = ScheduleFilter::new(
            schedule,
            FilterConfig { kernel, ..FilterConfig::default() },
            seed ^ 0xABCD,
        );
        let mut se = 0.0;
        for (t, (&truth, &obs)) in perf.truth.iter().zip(&perf.observations).enumerate() {
            f.step(perf.dt, obs);
            let _ = t;
            let e = f.estimate() - truth;
            se += e * e;
        }
        ((se / perf.len() as f64).sqrt(), f.rate_estimate())
    }

    #[test]
    fn tracks_drifting_performance() {
        let (rmse, rate) = track(WeightFn::Gaussian, 1);
        assert!(rmse < 3.0, "rmse {rmse}");
        // The performance runs ~10% fast; the filter should notice.
        assert!(rate > 1.02, "rate estimate {rate} should exceed 1.0");
    }

    #[test]
    fn fast_kernel_is_almost_as_accurate() {
        let mut g = 0.0;
        let mut t = 0.0;
        for seed in 0..5 {
            g += track(WeightFn::Gaussian, seed).0;
            t += track(WeightFn::Triangular, seed).0;
        }
        assert!(t < g * 1.5, "triangular rmse {t} vs gaussian {g} (5-seed sums)");
    }

    #[test]
    fn weights_stay_normalized() {
        let schedule = EventSchedule::uniform(5, 10.0);
        let mut f = ScheduleFilter::new(schedule, FilterConfig::default(), 3);
        for k in 0..5 {
            f.step(0.1, Observation::Event { id: k });
            let s: f64 = f.weights.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "weights sum {s}");
        }
    }

    #[test]
    fn ess_bounds() {
        let schedule = EventSchedule::uniform(5, 10.0);
        let f = ScheduleFilter::new(schedule, FilterConfig::default(), 4);
        let ess = f.effective_sample_size();
        assert!((ess - f.n_particles() as f64).abs() < 1e-6, "uniform weights -> ESS = N");
    }

    #[test]
    fn out_of_range_observation_is_ignored() {
        let schedule = EventSchedule::uniform(3, 10.0);
        let mut f = ScheduleFilter::new(schedule, FilterConfig::default(), 5);
        f.step(0.1, Observation::Event { id: 99 });
        assert_eq!(f.kernel_evals(), 0);
    }

    #[test]
    fn silence_costs_no_kernel_evals() {
        let schedule = EventSchedule::uniform(3, 10.0);
        let mut f = ScheduleFilter::new(schedule, FilterConfig::default(), 6);
        for _ in 0..100 {
            f.step(0.1, Observation::Silence);
        }
        assert_eq!(f.kernel_evals(), 0);
        // But positions still advance.
        assert!(f.estimate() > 5.0);
    }

    #[test]
    fn filter_is_deterministic() {
        let a = track(WeightFn::Rational, 7);
        let b = track(WeightFn::Rational, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn resampling_fires_under_degeneracy() {
        let schedule = EventSchedule::uniform(10, 5.0);
        let cfg = FilterConfig { sigma: 0.3, ..FilterConfig::default() };
        let mut f = ScheduleFilter::new(schedule, cfg, 8);
        for k in 0..10 {
            for _ in 0..40 {
                f.step(0.1, Observation::Silence);
            }
            f.step(0.1, Observation::Event { id: k });
        }
        assert!(f.resamples() > 0, "tight kernel should trigger resampling");
    }

    #[test]
    #[should_panic(expected = "at least one particle")]
    fn zero_particles_panics() {
        let cfg = FilterConfig { n_particles: 0, ..FilterConfig::default() };
        ScheduleFilter::new(EventSchedule::uniform(2, 5.0), cfg, 0);
    }
}
