//! Harnessed experiments E2.2a (weighting comparison) and E2.2b (baseline
//! comparison), plus the shared tracking-run helper the benches reuse.

use crate::baseline::{BaselineConfig, BaselineFilter};
use crate::filter::{FilterConfig, ScheduleFilter};
use crate::schedule::{DriftModel, EventSchedule, Performance, SensorModel};
use crate::weighting::WeightFn;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::{derive_seed, SplitMix64};

/// Result of one tracking run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackResult {
    /// Root-mean-square position error over the performance.
    pub rmse: f64,
    /// Absolute error at the final tick.
    pub final_error: f64,
    /// Kernel evaluations performed (deterministic cost proxy).
    pub kernel_evals: u64,
}

/// Standard workload for the §2.2 experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of scheduled events.
    pub k_events: usize,
    /// Nominal spacing between events (seconds).
    pub spacing: f64,
    /// Performance tempo (1.0 = on schedule).
    pub rate0: f64,
    /// Simulation tick.
    pub dt: f64,
}

impl Default for Workload {
    fn default() -> Self {
        Self { k_events: 25, spacing: 8.0, rate0: 1.12, dt: 0.1 }
    }
}

/// Runs the schedule-aware filter over one simulated performance.
pub fn run_tracking(
    workload: Workload,
    kernel: WeightFn,
    n_particles: usize,
    seed: u64,
) -> TrackResult {
    let schedule = EventSchedule::uniform(workload.k_events, workload.spacing);
    let mut rng = SplitMix64::new(derive_seed(seed, "performance"));
    let perf = Performance::simulate(
        &schedule,
        DriftModel { rate0: workload.rate0, ..DriftModel::default() },
        SensorModel::default(),
        workload.dt,
        &mut rng,
    );
    let cfg = FilterConfig { kernel, n_particles, ..FilterConfig::default() };
    let mut filter = ScheduleFilter::new(schedule, cfg, derive_seed(seed, "filter"));
    let mut se = 0.0;
    let mut last = 0.0;
    for (&truth, &obs) in perf.truth.iter().zip(&perf.observations) {
        filter.step(perf.dt, obs);
        last = (filter.estimate() - truth).abs();
        se += last * last;
    }
    TrackResult {
        rmse: (se / perf.len().max(1) as f64).sqrt(),
        final_error: last,
        kernel_evals: filter.kernel_evals(),
    }
}

/// Runs the typical (baseline) filter over the same performance shape.
pub fn run_baseline(workload: Workload, n_particles: usize, seed: u64) -> TrackResult {
    let schedule = EventSchedule::uniform(workload.k_events, workload.spacing);
    let mut rng = SplitMix64::new(derive_seed(seed, "performance"));
    let perf = Performance::simulate(
        &schedule,
        DriftModel { rate0: workload.rate0, ..DriftModel::default() },
        SensorModel::default(),
        workload.dt,
        &mut rng,
    );
    let cfg = BaselineConfig { n_particles, ..BaselineConfig::default() };
    let mut filter = BaselineFilter::new(schedule, cfg, derive_seed(seed, "filter"));
    let mut se = 0.0;
    let mut last = 0.0;
    let mut evals = 0u64;
    for (&truth, &obs) in perf.truth.iter().zip(&perf.observations) {
        if matches!(obs, crate::schedule::Observation::Event { .. }) {
            evals += n_particles as u64;
        }
        filter.step(perf.dt, obs);
        last = (filter.estimate() - truth).abs();
        se += last * last;
    }
    TrackResult {
        rmse: (se / perf.len().max(1) as f64).sqrt(),
        final_error: last,
        kernel_evals: evals,
    }
}

/// E2.2a: accuracy of each weighting kernel, averaged over trials.
///
/// Records `rmse_<kernel>` per kernel plus `rmse_ratio_triangular`
/// (triangular / gaussian) — the paper claims "almost as accurate", i.e. a
/// ratio near 1.
pub struct WeightingExperiment;

impl Experiment for WeightingExperiment {
    fn name(&self) -> &str {
        "pf/weighting"
    }

    fn run(&self, ctx: &mut RunContext) {
        let trials = ctx.int("trials", 8) as u64;
        let n_particles = ctx.int("particles", 256) as usize;
        let workload = Workload::default();
        let mut rmse_gaussian = 0.0;
        for kernel in WeightFn::all() {
            let mut sum = 0.0;
            for t in 0..trials {
                let seed = derive_seed(ctx.seed(), &format!("trial{t}"));
                sum += run_tracking(workload, kernel, n_particles, seed).rmse;
            }
            let mean = sum / trials as f64;
            ctx.record(&format!("rmse_{}", kernel.name()), mean);
            ctx.record(
                &format!("transcendental_{}", kernel.name()),
                if kernel.uses_transcendentals() { 1.0 } else { 0.0 },
            );
            if kernel == WeightFn::Gaussian {
                rmse_gaussian = mean;
            }
        }
        let tri = ctx.trail().metric_value("rmse_triangular").unwrap_or(f64::NAN);
        ctx.record("rmse_ratio_triangular", tri / rmse_gaussian);
    }
}

/// E2.2b: schedule-aware filter vs the typical filter, on- and off-tempo.
pub struct BaselineExperiment;

impl Experiment for BaselineExperiment {
    fn run(&self, ctx: &mut RunContext) {
        let trials = ctx.int("trials", 8) as u64;
        let n_particles = ctx.int("particles", 256) as usize;
        for (tag, rate0) in [("ontempo", 1.0), ("drift", 1.15)] {
            let workload = Workload { rate0, ..Workload::default() };
            let (mut ours, mut base) = (0.0, 0.0);
            for t in 0..trials {
                let seed = derive_seed(ctx.seed(), &format!("{tag}.{t}"));
                ours += run_tracking(workload, WeightFn::Gaussian, n_particles, seed).rmse;
                base += run_baseline(workload, n_particles, seed).rmse;
            }
            ctx.record(&format!("rmse_ours_{tag}"), ours / trials as f64);
            ctx.record(&format!("rmse_baseline_{tag}"), base / trials as f64);
        }
    }

    fn name(&self) -> &str {
        "pf/baseline"
    }
}

/// Registers E2.2a and E2.2b.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.2a",
        "Section 2.2",
        "fast weighting vs Gaussian weighting accuracy",
        Params::new().with_int("trials", 8).with_int("particles", 256),
        Box::new(WeightingExperiment),
    );
    reg.register(
        "E2.2b",
        "Section 2.2",
        "schedule-aware filter vs typical particle filter",
        Params::new().with_int("trials", 8).with_int("particles", 256),
        Box::new(BaselineExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    #[test]
    fn weighting_experiment_shows_near_parity() {
        let rec = run_once(&WeightingExperiment, 42, Params::new().with_int("trials", 6));
        let ratio = rec.metric("rmse_ratio_triangular").unwrap();
        assert!(ratio < 1.6, "triangular should be almost as accurate as gaussian; ratio {ratio}");
        assert_eq!(rec.metric("transcendental_gaussian"), Some(1.0));
        assert_eq!(rec.metric("transcendental_triangular"), Some(0.0));
    }

    #[test]
    fn baseline_experiment_shows_drift_win() {
        let rec = run_once(&BaselineExperiment, 42, Params::new().with_int("trials", 6));
        let ours = rec.metric("rmse_ours_drift").unwrap();
        let base = rec.metric("rmse_baseline_drift").unwrap();
        assert!(ours < base, "schedule-aware ({ours}) must beat baseline ({base}) under drift");
    }

    #[test]
    fn experiments_are_deterministic() {
        let p = Params::new().with_int("trials", 2).with_int("particles", 64);
        assert_deterministic(&WeightingExperiment, 7, &p);
        assert_deterministic(&BaselineExperiment, 7, &p);
    }

    #[test]
    fn tracking_result_fields_consistent() {
        let r = run_tracking(Workload::default(), WeightFn::Rational, 128, 3);
        assert!(r.rmse >= 0.0 && r.rmse.is_finite());
        assert!(r.final_error >= 0.0);
        assert!(r.kernel_evals > 0);
    }

    #[test]
    fn registry_ids() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E2.2a").is_some());
        assert!(reg.get("E2.2b").is_some());
    }
}
