//! Particle weighting functions.
//!
//! The §2.2 headline result: "we developed a fast weighting function that,
//! according to our experiments, is much faster and almost as accurate as
//! the typical Gaussian weighting function, which may be preferred in
//! applications that demand low latency or frequent updates."
//!
//! The Gaussian kernel costs one `exp` per particle per update; the fast
//! kernels below are a handful of multiply/compare operations. The
//! `pf_weighting` bench measures the wall-clock gap; experiment E2.2a
//! measures the accuracy gap; the `ablate_weighting` bench sweeps the
//! kernel family.

/// A likelihood kernel `w(d)` over the discrepancy `d` between a particle's
/// implied event time and the observed event's nominal time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightFn {
    /// `exp(-d² / 2σ²)` — the "typical" kernel.
    Gaussian,
    /// `max(0, 1 - |d| / 3σ)` — compact support, no transcendentals.
    Triangular,
    /// `1 / (1 + (d/σ)²)` — heavy-tailed, no transcendentals.
    Rational,
    /// `(1 - (d/3σ)²)² on |d|<3σ, else 0` — the Epanechnikov-squared
    /// (biweight) kernel; compact support, smoother than triangular.
    Biweight,
}

impl WeightFn {
    /// Evaluates the kernel at discrepancy `d` with bandwidth `sigma`.
    ///
    /// All kernels satisfy `w(0) = 1`, are even in `d`, and are
    /// non-increasing in `|d|`.
    #[inline]
    pub fn eval(self, d: f64, sigma: f64) -> f64 {
        debug_assert!(sigma > 0.0, "bandwidth must be positive");
        match self {
            WeightFn::Gaussian => (-d * d / (2.0 * sigma * sigma)).exp(),
            WeightFn::Triangular => {
                let z = d.abs() / (3.0 * sigma);
                (1.0 - z).max(0.0)
            }
            WeightFn::Rational => {
                let z = d / sigma;
                1.0 / (1.0 + z * z)
            }
            WeightFn::Biweight => {
                let z = d / (3.0 * sigma);
                let q = 1.0 - z * z;
                if q <= 0.0 {
                    0.0
                } else {
                    q * q
                }
            }
        }
    }

    /// Whether the kernel needs transcendental function evaluations — the
    /// deterministic cost proxy recorded by experiment E2.2a (wall-clock is
    /// measured separately by criterion, since timing is environment).
    pub fn uses_transcendentals(self) -> bool {
        matches!(self, WeightFn::Gaussian)
    }

    /// All kernels, for sweeps.
    pub fn all() -> [WeightFn; 4] {
        [WeightFn::Gaussian, WeightFn::Triangular, WeightFn::Rational, WeightFn::Biweight]
    }

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WeightFn::Gaussian => "gaussian",
            WeightFn::Triangular => "triangular",
            WeightFn::Rational => "rational",
            WeightFn::Biweight => "biweight",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_at_zero() {
        for k in WeightFn::all() {
            assert!((k.eval(0.0, 1.0) - 1.0).abs() < 1e-12, "{}", k.name());
        }
    }

    #[test]
    fn even_and_nonincreasing() {
        for k in WeightFn::all() {
            let mut prev = k.eval(0.0, 2.0);
            for i in 1..100 {
                let d = i as f64 * 0.1;
                let w = k.eval(d, 2.0);
                assert!((w - k.eval(-d, 2.0)).abs() < 1e-12, "{} not even", k.name());
                assert!(w <= prev + 1e-12, "{} increased at {d}", k.name());
                prev = w;
            }
        }
    }

    #[test]
    fn compact_support_kernels_vanish() {
        assert_eq!(WeightFn::Triangular.eval(3.01, 1.0), 0.0);
        assert_eq!(WeightFn::Biweight.eval(3.01, 1.0), 0.0);
        assert!(WeightFn::Gaussian.eval(3.01, 1.0) > 0.0);
        assert!(WeightFn::Rational.eval(3.01, 1.0) > 0.0);
    }

    #[test]
    fn gaussian_matches_closed_form() {
        let w = WeightFn::Gaussian.eval(1.0, 1.0);
        assert!((w - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn fast_kernels_approximate_gaussian_shape() {
        // Within one sigma, triangular and rational stay within 0.25 of
        // the Gaussian — close enough that weighting decisions rarely flip.
        for i in 0..=10 {
            let d = i as f64 * 0.1;
            let g = WeightFn::Gaussian.eval(d, 1.0);
            for k in [WeightFn::Triangular, WeightFn::Rational, WeightFn::Biweight] {
                assert!((k.eval(d, 1.0) - g).abs() < 0.25, "{} deviates at {d}", k.name());
            }
        }
    }

    #[test]
    fn cost_proxy() {
        assert!(WeightFn::Gaussian.uses_transcendentals());
        assert!(!WeightFn::Triangular.uses_transcendentals());
        assert!(!WeightFn::Rational.uses_transcendentals());
        assert!(!WeightFn::Biweight.uses_transcendentals());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            WeightFn::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
