//! `treu-core` — the reproducibility and artifact-evaluation harness.
//!
//! The TREU paper's central thesis is that *trust fundamentally depends on
//! reproducibility*: "a person must be able to take an existing scientific
//! result or a pre-existing software component, test it, and see if they can
//! reproduce the published specifications or claims." This crate turns that
//! thesis into infrastructure. Every experiment in the workspace runs
//! through it:
//!
//! * [`experiment`] — seeded, parameterized experiment runs with per-
//!   component RNG streams. Identical seeds produce bitwise-identical
//!   results, and [`experiment::assert_deterministic`] verifies it.
//! * [`provenance`] — an append-only trail of everything a run did
//!   (parameters read, RNG streams opened, metrics recorded), with a stable
//!   fingerprint so two runs can be compared byte-for-byte.
//! * [`environment`] — capture of the host environment, the part of a
//!   result that is *not* controlled by the seed and must be disclosed.
//! * [`artifact`] — machine-checkable artifact specifications, modelling
//!   the §2.1 finding that "authors conceive of research artifacts as
//!   distinct from the documentation that explains them": both halves are
//!   first-class and completeness is checked for each separately.
//! * [`badge`] — ACM-style badge evaluation (Available / Functional /
//!   Results Reproduced) computed from an artifact spec plus run evidence.
//! * [`attest`] — in-toto-style attestation: each pipeline step (run →
//!   verify → badge) emits a MAC-sealed **link** naming its materials and
//!   products as FNV-1a content addresses, chained into a Merkle DAG
//!   rooted in a **layout** document; `treu attest verify` walks the
//!   chain and pinpoints the first step whose products were tampered.
//! * [`registry`] — the per-experiment index required by DESIGN.md: every
//!   table/figure id maps to a runnable entry.
//! * [`study`] — the human-centered-computing substrate for §2.1: diary
//!   study instruments, interview protocols and pilot-session revision
//!   tracking.
//! * [`sweep`] — parameter-grid sweeps with per-point derived seeds.
//! * [`exec`] — the deterministic parallel executor: fans seeds, sweeps
//!   and registry batches over self-scheduling scoped workers and merges
//!   in canonical order, so results are bitwise-identical for every
//!   `--jobs` value. Supervised variants catch panics, enforce per-run
//!   deadlines and retry under a deterministic backoff, quarantining (not
//!   aborting on) runs that exhaust their budget.
//! * [`fault`] — seeded, content-addressed fault injection: a
//!   [`fault::FaultPlan`] deterministically panics, delays, corrupts or
//!   transiently fails runs by `(id, seed, attempt)`, so the supervisor's
//!   failure handling is itself a reproducible experiment.
//! * [`cache`] — the content-addressed run cache: completed runs persist
//!   under `hash(id, params, seed)` validated by a code+env fingerprint,
//!   so re-verification recomputes nothing that has not changed.
//! * [`trace`] — deterministic run-trace observability: every supervised
//!   run emits ordered span events (claim → attempts → fault/backoff →
//!   cache → verdict) merged index-ordered into a content-addressed JSONL
//!   trace whose hash is schedule-independent; timestamps live in a
//!   separate non-hashed sidecar.
//! * [`svc`] — the crash-tolerant sharded verification service: `treu
//!   worker` subprocesses speak a length-prefixed JSONL protocol, a
//!   supervising coordinator shards work across them with heartbeats,
//!   exactly-once shard requeue, seeded respawn backoff and graceful
//!   degradation to in-process execution — with fingerprints and trace
//!   addresses bitwise-identical at every topology and kill schedule.
//! * [`aggregate`] — multi-seed metric summaries (the distributional view
//!   reliability claims need).
//! * [`report`] — plain-text table rendering shared by the survey crate and
//!   the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod artifact;
pub mod attest;
pub mod badge;
pub mod cache;
pub mod environment;
pub mod exec;
pub mod experiment;
pub mod fault;
pub mod hash;
pub mod provenance;
pub mod registry;
pub mod report;
pub mod study;
pub mod svc;
pub mod sweep;
pub mod trace;

pub use attest::{AttestKey, AttestStore, ChainReport, Layout, Link, LinkDraft};
pub use cache::{CacheStats, RunCache};
pub use exec::{
    DenyPolicy, ExecReport, Executor, FailureKind, RunFailure, RunOutcome, SupervisePolicy,
    VerifyReport,
};
pub use experiment::{Experiment, RunContext, RunRecord};
pub use fault::{FaultKind, FaultPlan, FaultyExperiment, KillPlan};
pub use provenance::Trail;
pub use registry::ExperimentRegistry;
pub use svc::{SvcConfig, SvcStats, WorkerPool};
pub use trace::{BatchTrace, RunTrace, TraceCounters, TraceEvent};
