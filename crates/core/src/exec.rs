//! Deterministic parallel experiment execution.
//!
//! The repo's whole point is that a result you cannot re-run bitwise is a
//! result you cannot trust — but if verification is slow, people skip it
//! (the §3 "result collection takes too long" failure mode). This module
//! removes the speed excuse without touching the guarantee: an
//! [`Executor`] fans multi-seed runs, parameter sweeps, and registry-wide
//! batches out over `crossbeam::scope` worker chunks and merges results
//! back in canonical (input) order.
//!
//! The determinism contract: every run owns its own
//! [`crate::experiment::RunContext`], all randomness is derived from
//! per-run seeds, and merge order is input order — never completion order
//! — so fingerprints, rendered tables, and aggregate summaries are
//! **bitwise-identical for every job count**. Only `wall_seconds` (which
//! is environment, not result, and is excluded from trails and
//! fingerprints) may differ. The workspace conformance and property tests
//! enforce this for every registered experiment id across jobs ∈ {1, 2, 8}.
//!
//! Observability: the `_report` variants return an [`ExecReport`] with
//! per-run wall seconds, total vs critical-path time, and the measured
//! speedup with its implied Amdahl serial fraction
//! ([`treu_math::scaling`]), so the parallelism is itself a measured,
//! reportable experiment — the paper's §4 performance-measurement lesson
//! applied to the harness.

use crate::experiment::{run_once, Experiment, Params, RunRecord};
use crate::registry::ExperimentRegistry;
use crate::sweep::{grid_points, Axis, SweepPoint};
use std::time::Instant;
use treu_math::parallel::{default_threads, par_map_into};
use treu_math::scaling::amdahl_speedup;

/// Deterministic parallel executor with a fixed worker count.
#[derive(Debug, Clone)]
pub struct Executor {
    jobs: usize,
}

impl Default for Executor {
    /// One worker per available hardware thread.
    fn default() -> Self {
        Self::new(default_threads())
    }
}

impl Executor {
    /// Executor with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// Single-worker executor: runs everything inline, in order.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The executor's core primitive: applies `f` to every index in
    /// `0..n` across the configured workers and returns results in index
    /// order. Scheduling never influences output order or content.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        par_map_into(n, self.jobs, f)
    }

    /// Parallel form of [`crate::experiment::run_seeds`]: one record per
    /// seed, in seed order, bitwise-identical to the sequential version.
    pub fn run_seeds<E>(&self, exp: &E, seeds: &[u64], params: &Params) -> Vec<RunRecord>
    where
        E: Experiment + Sync + ?Sized,
    {
        self.map_indexed(seeds.len(), |i| run_once(exp, seeds[i], params.clone()))
    }

    /// [`Executor::run_seeds`] plus an [`ExecReport`] for the batch.
    pub fn run_seeds_report<E>(
        &self,
        exp: &E,
        seeds: &[u64],
        params: &Params,
    ) -> (Vec<RunRecord>, ExecReport)
    where
        E: Experiment + Sync + ?Sized,
    {
        // treu-lint: allow(wall-clock, reason = "batch timing reported outside the fingerprint")
        let start = Instant::now();
        let records = self.run_seeds(exp, seeds, params);
        let report = ExecReport::from_labelled(
            self.jobs,
            records.iter().map(|r| (format!("seed {}", r.seed), r.wall_seconds)),
            start.elapsed().as_secs_f64(),
        );
        (records, report)
    }

    /// Parallel form of [`crate::sweep::sweep`]: the full cartesian grid
    /// in canonical (odometer) order, bitwise-identical to the sequential
    /// version.
    pub fn sweep<E>(&self, exp: &E, base: &Params, axes: &[Axis], seed: u64) -> Vec<SweepPoint>
    where
        E: Experiment + Sync + ?Sized,
    {
        let grid = grid_points(base, axes, seed);
        self.map_indexed(grid.len(), |i| {
            let gp = &grid[i];
            SweepPoint {
                assignment: gp.assignment.clone(),
                record: run_once(exp, gp.seed, gp.params.clone()),
            }
        })
    }

    /// Runs every registered experiment at its default parameters,
    /// returning `(id, record)` pairs in registry (id) order.
    pub fn run_all(&self, reg: &ExperimentRegistry, seed: u64) -> Vec<(String, RunRecord)> {
        self.run_all_report(reg, seed).0
    }

    /// [`Executor::run_all`] plus an [`ExecReport`] for the batch.
    pub fn run_all_report(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
    ) -> (Vec<(String, RunRecord)>, ExecReport) {
        let entries: Vec<&str> = reg.iter().map(|(id, _)| id).collect();
        // treu-lint: allow(wall-clock, reason = "batch timing reported outside the fingerprint")
        let start = Instant::now();
        let records = self.map_indexed(entries.len(), |i| {
            let id = entries[i];
            let rec = reg.run(id, seed).expect("id comes from the registry's own iterator");
            (id.to_string(), rec)
        });
        let report = ExecReport::from_labelled(
            self.jobs,
            records.iter().map(|(id, r)| (id.clone(), r.wall_seconds)),
            start.elapsed().as_secs_f64(),
        );
        (records, report)
    }

    /// The parallel form of [`crate::experiment::assert_deterministic`]:
    /// runs `exp` twice concurrently with the same seed and panics unless
    /// the two trails are bitwise-identical. Returns the shared
    /// fingerprint on success.
    pub fn assert_deterministic<E>(&self, exp: &E, seed: u64, params: &Params) -> u64
    where
        E: Experiment + Sync + ?Sized,
    {
        let runs = self.map_indexed(2, |_| run_once(exp, seed, params.clone()));
        assert_eq!(
            runs[0].trail,
            runs[1].trail,
            "experiment '{}' is not deterministic for seed {seed} under concurrent re-execution",
            exp.name()
        );
        runs[0].fingerprint()
    }

    /// Verifies every registered experiment: each id is run twice,
    /// concurrently with everything else, and the two trails are
    /// cross-checked. Uses each entry's default parameters.
    pub fn verify_all(&self, reg: &ExperimentRegistry, seed: u64) -> VerifyReport {
        self.verify_all_with(reg, seed, |_, defaults| defaults)
    }

    /// [`Executor::verify_all`] with a parameter override hook: `params`
    /// receives each id and its registered defaults and returns the
    /// parameters to verify at (the conformance tests lighten heavy
    /// experiments this way).
    pub fn verify_all_with(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
        params: impl Fn(&str, Params) -> Params + Sync,
    ) -> VerifyReport {
        let jobs: Vec<(&str, Params)> =
            reg.iter().map(|(id, e)| (id, params(id, e.defaults.clone()))).collect();
        // treu-lint: allow(wall-clock, reason = "verification timing reported outside the fingerprint")
        let start = Instant::now();
        // Both replicas of an id are independent tasks, so they run
        // concurrently whenever jobs >= 2.
        let runs = self.map_indexed(jobs.len() * 2, |i| {
            let (id, p) = &jobs[i / 2];
            reg.run_with(id, seed, p.clone()).expect("id comes from the registry's own iterator")
        });
        let outcomes = jobs
            .iter()
            .zip(runs.chunks_exact(2))
            .map(|((id, _), pair)| VerifyOutcome {
                id: id.to_string(),
                fingerprint: pair[0].fingerprint(),
                reproduced: pair[0].trail == pair[1].trail,
            })
            .collect();
        VerifyReport { jobs: self.jobs, outcomes, wall_seconds: start.elapsed().as_secs_f64() }
    }
}

/// One experiment's verification outcome.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// Experiment id.
    pub id: String,
    /// Fingerprint of the first replica.
    pub fingerprint: u64,
    /// True when both replicas produced bitwise-identical trails.
    pub reproduced: bool,
}

/// The result of a registry-wide verification pass.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Worker count used.
    pub jobs: usize,
    /// Per-id outcomes, in registry (id) order.
    pub outcomes: Vec<VerifyOutcome>,
    /// Wall-clock seconds for the whole pass.
    pub wall_seconds: f64,
}

impl VerifyReport {
    /// True when every experiment reproduced.
    pub fn all_reproduced(&self) -> bool {
        self.outcomes.iter().all(|o| o.reproduced)
    }

    /// Ids that failed to reproduce.
    pub fn violations(&self) -> Vec<&str> {
        self.outcomes.iter().filter(|o| !o.reproduced).map(|o| o.id.as_str()).collect()
    }

    /// Renders one line per id plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            if o.reproduced {
                out.push_str(&format!(
                    "{:<10} REPRODUCED (fingerprint {:#018x})\n",
                    o.id, o.fingerprint
                ));
            } else {
                out.push_str(&format!("{:<10} MISMATCH — run is not deterministic\n", o.id));
            }
        }
        out.push_str(&format!(
            "{}/{} reproduced in {:.3}s with {} job(s)\n",
            self.outcomes.iter().filter(|o| o.reproduced).count(),
            self.outcomes.len(),
            self.wall_seconds,
            self.jobs
        ));
        out
    }
}

/// Wall-clock accounting for one run inside a batch.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Display label (seed, id, or grid tag).
    pub label: String,
    /// Wall seconds of that run alone.
    pub wall_seconds: f64,
}

/// Timing report for a parallel batch: where the time went, how well the
/// fan-out paid off, and what Amdahl's law implies about pushing further.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Worker count used.
    pub jobs: usize,
    /// Per-run timings, in canonical order.
    pub runs: Vec<RunTiming>,
    /// Measured wall seconds for the whole batch.
    pub wall_seconds: f64,
}

impl ExecReport {
    /// Builds a report from labelled per-run wall times plus the measured
    /// batch wall time.
    pub fn from_labelled(
        jobs: usize,
        runs: impl IntoIterator<Item = (String, f64)>,
        wall_seconds: f64,
    ) -> Self {
        Self {
            jobs,
            runs: runs
                .into_iter()
                .map(|(label, wall_seconds)| RunTiming { label, wall_seconds })
                .collect(),
            wall_seconds,
        }
    }

    /// Total CPU-seconds across runs — the sequential cost.
    pub fn total_seconds(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_seconds).sum()
    }

    /// The longest single run — no schedule can beat this.
    pub fn critical_path_seconds(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_seconds).fold(0.0, f64::max)
    }

    /// Measured speedup: sequential cost over measured batch wall time.
    pub fn speedup(&self) -> f64 {
        self.total_seconds() / self.wall_seconds.max(1e-12)
    }

    /// The serial fraction Amdahl's law implies for the measured speedup
    /// at this worker count (0 = perfect scaling, 1 = none). With one job
    /// or one run there is no parallelism to attribute, so 1.0.
    pub fn serial_fraction(&self) -> f64 {
        let t = self.jobs.min(self.runs.len().max(1)) as f64;
        if t <= 1.0 {
            return 1.0;
        }
        let s = self.speedup().max(1e-12);
        // S = 1 / (f + (1-f)/t)  =>  f = (1/S - 1/t) / (1 - 1/t)
        ((1.0 / s - 1.0 / t) / (1.0 - 1.0 / t)).clamp(0.0, 1.0)
    }

    /// Projected speedup at `threads` workers under the fitted serial
    /// fraction — the [`treu_math::scaling`] Amdahl hook.
    pub fn projected_speedup(&self, threads: usize) -> f64 {
        amdahl_speedup(self.serial_fraction(), threads)
    }

    /// Renders the accounting: per-run lines, then totals and the scaling
    /// estimate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            out.push_str(&format!("  run    {:<24} {:>9.4}s\n", r.label, r.wall_seconds));
        }
        out.push_str(&format!(
            "  total {:.4}s over {} run(s); critical path {:.4}s; wall {:.4}s with {} job(s)\n",
            self.total_seconds(),
            self.runs.len(),
            self.critical_path_seconds(),
            self.wall_seconds,
            self.jobs
        ));
        out.push_str(&format!(
            "  speedup {:.2}x (implied Amdahl serial fraction {:.3}; projected {:.2}x at {} threads)\n",
            self.speedup(),
            self.serial_fraction(),
            self.projected_speedup(2 * self.jobs.max(1)),
            2 * self.jobs.max(1)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{assert_deterministic, run_seeds, RunContext};
    use crate::sweep::sweep;

    struct Noisy;
    impl Experiment for Noisy {
        fn name(&self) -> &str {
            "noisy"
        }
        fn run(&self, ctx: &mut RunContext) {
            let n = ctx.int("n", 40) as usize;
            let mut rng = ctx.rng("draws");
            let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
            ctx.record("mean", mean);
            ctx.record("n", n as f64);
        }
    }

    fn trails(records: &[RunRecord]) -> Vec<u64> {
        records.iter().map(|r| r.fingerprint()).collect()
    }

    #[test]
    fn run_seeds_matches_sequential_for_every_job_count() {
        let seeds: Vec<u64> = (0..13).collect();
        let params = Params::new().with_int("n", 64);
        let seq = run_seeds(&Noisy, &seeds, &params);
        for jobs in [1, 2, 3, 8, 32] {
            let par = Executor::new(jobs).run_seeds(&Noisy, &seeds, &params);
            assert_eq!(trails(&seq), trails(&par), "jobs={jobs}");
            for (a, b) in seq.iter().zip(par.iter()) {
                assert_eq!(a.trail, b.trail, "jobs={jobs}");
                assert_eq!(a.seed, b.seed, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn sweep_matches_sequential_for_every_job_count() {
        let axes = [Axis::ints("n", &[8, 16, 32]), Axis::floats("unused", &[0.5, 1.5])];
        let base = Params::new();
        let seq = sweep(&Noisy, &base, &axes, 2023);
        for jobs in [1, 2, 7] {
            let par = Executor::new(jobs).sweep(&Noisy, &base, &axes, 2023);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(par.iter()) {
                assert_eq!(a.assignment, b.assignment, "jobs={jobs}");
                assert_eq!(a.record.trail, b.record.trail, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn executor_assert_deterministic_agrees_with_sequential() {
        let params = Params::new().with_int("n", 32);
        let fp_seq = assert_deterministic(&Noisy, 9, &params);
        let fp_par = Executor::new(4).assert_deterministic(&Noisy, 9, &params);
        assert_eq!(fp_seq, fp_par);
    }

    struct NonDet(std::sync::atomic::AtomicU64);
    impl Experiment for NonDet {
        fn name(&self) -> &str {
            "nondet"
        }
        fn run(&self, ctx: &mut RunContext) {
            let c = self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            ctx.record("counter", c as f64);
        }
    }

    #[test]
    #[should_panic(expected = "not deterministic")]
    fn concurrent_nondeterminism_is_caught() {
        let exp = NonDet(std::sync::atomic::AtomicU64::new(0));
        Executor::new(2).assert_deterministic(&exp, 1, &Params::new());
    }

    fn small_registry() -> ExperimentRegistry {
        let mut reg = ExperimentRegistry::new();
        reg.register("A", "x", "noisy a", Params::new().with_int("n", 16), Box::new(Noisy));
        reg.register("B", "y", "noisy b", Params::new().with_int("n", 24), Box::new(Noisy));
        reg.register("C", "z", "noisy c", Params::new().with_int("n", 8), Box::new(Noisy));
        reg
    }

    #[test]
    fn run_all_is_in_id_order_and_job_count_invariant() {
        let reg = small_registry();
        let base = Executor::sequential().run_all(&reg, 7);
        assert_eq!(base.iter().map(|(id, _)| id.as_str()).collect::<Vec<_>>(), vec!["A", "B", "C"]);
        for jobs in [2, 5] {
            let par = Executor::new(jobs).run_all(&reg, 7);
            for ((ida, a), (idb, b)) in base.iter().zip(par.iter()) {
                assert_eq!(ida, idb);
                assert_eq!(a.trail, b.trail, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn verify_all_passes_deterministic_registry() {
        let reg = small_registry();
        for jobs in [1, 4] {
            let report = Executor::new(jobs).verify_all(&reg, 3);
            assert!(report.all_reproduced(), "jobs={jobs}");
            assert!(report.violations().is_empty());
            assert_eq!(report.outcomes.len(), 3);
            let rendered = report.render();
            assert!(rendered.contains("3/3 reproduced"));
            assert!(rendered.contains("REPRODUCED"));
        }
    }

    #[test]
    fn verify_all_flags_nondeterminism_and_exit_is_nonzero_worthy() {
        let mut reg = small_registry();
        reg.register(
            "Z-bad",
            "w",
            "broken",
            Params::new(),
            Box::new(NonDet(std::sync::atomic::AtomicU64::new(0))),
        );
        let report = Executor::new(4).verify_all(&reg, 3);
        assert!(!report.all_reproduced());
        assert_eq!(report.violations(), vec!["Z-bad"]);
        assert!(report.render().contains("MISMATCH"));
    }

    #[test]
    fn verify_all_with_overrides_params() {
        let reg = small_registry();
        let report = Executor::new(2).verify_all_with(&reg, 5, |_, d| d.with_int("n", 4));
        assert!(report.all_reproduced());
    }

    #[test]
    fn report_accounts_time_and_fits_amdahl() {
        let report = ExecReport::from_labelled(
            4,
            [("a".to_string(), 1.0), ("b".to_string(), 1.0), ("c".to_string(), 2.0)],
            2.0,
        );
        assert_eq!(report.total_seconds(), 4.0);
        assert_eq!(report.critical_path_seconds(), 2.0);
        assert!((report.speedup() - 2.0).abs() < 1e-9);
        let f = report.serial_fraction();
        assert!((0.0..=1.0).contains(&f));
        // Perfect scaling at t=3 effective workers would be 3x; measured
        // 2x implies a nonzero serial fraction.
        assert!(f > 0.0);
        // The projection reproduces the measurement at the effective
        // worker count by construction.
        let t = report.jobs.min(report.runs.len());
        assert!((report.projected_speedup(t) - report.speedup()).abs() < 1e-9);
        let rendered = report.render();
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("speedup"));
    }

    #[test]
    fn sequential_report_has_unit_serial_fraction() {
        let report = ExecReport::from_labelled(1, [("a".to_string(), 1.0)], 1.0);
        assert_eq!(report.serial_fraction(), 1.0);
        assert_eq!(report.projected_speedup(8), 1.0);
    }

    #[test]
    fn run_seeds_report_labels_every_seed() {
        let (records, report) =
            Executor::new(2).run_seeds_report(&Noisy, &[3, 1, 4], &Params::new());
        assert_eq!(records.len(), 3);
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.runs[0].label, "seed 3");
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn map_indexed_preserves_order_under_oversubscription() {
        let v = Executor::new(64).map_indexed(5, |i| i * i);
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }
}
