//! Deterministic parallel experiment execution.
//!
//! The repo's whole point is that a result you cannot re-run bitwise is a
//! result you cannot trust — but if verification is slow, people skip it
//! (the §3 "result collection takes too long" failure mode). This module
//! removes the speed excuse without touching the guarantee: an
//! [`Executor`] fans multi-seed runs, parameter sweeps, and registry-wide
//! batches out over `crossbeam::scope` worker chunks and merges results
//! back in canonical (input) order.
//!
//! The determinism contract: every run owns its own
//! [`crate::experiment::RunContext`], all randomness is derived from
//! per-run seeds, and merge order is input order — never completion order
//! — so fingerprints, rendered tables, and aggregate summaries are
//! **bitwise-identical for every job count**. Only `wall_seconds` (which
//! is environment, not result, and is excluded from trails and
//! fingerprints) may differ. The workspace conformance and property tests
//! enforce this for every registered experiment id across jobs ∈ {1, 2, 8}.
//!
//! Scheduling is **dynamic**: workers claim index chunks from a shared
//! atomic counter ([`treu_math::parallel::par_map_dynamic`]) instead of
//! being handed fixed contiguous bands, so one expensive run (the §3
//! "one job hogs the GPU" shape) no longer strands its band-mates behind
//! it while other workers idle. Out-of-order compute plus index-ordered
//! merge keeps the output bitwise-identical to sequential regardless of
//! which worker computed what.
//!
//! Observability: the `_report` variants return an [`ExecReport`] with
//! per-run wall seconds, total vs critical-path time, per-worker busy
//! time (load-imbalance ratio, utilization), and the measured speedup
//! with its implied Amdahl serial fraction ([`treu_math::scaling`]) —
//! fitted from measured per-worker busy time when available, not batch
//! wall time alone — so the parallelism is itself a measured, reportable
//! experiment: the paper's §4 performance-measurement lesson applied to
//! the harness.
//!
//! Batches can additionally run through a content-addressed
//! [`RunCache`] (`*_cached` variants): runs whose key — experiment id,
//! params, seed, code+env fingerprint — is already stored are replayed
//! from disk instead of recomputed, making re-verification near-free.
//!
//! **Supervision.** Registry batches are *supervised*: every run executes
//! under `std::panic::catch_unwind`, optionally bounded by a per-run
//! deadline (a scoped watchdog waits on a channel with a timeout — the
//! verdict lands at the deadline, the straggler is joined cooperatively),
//! and failed attempts retry under the deterministic backoff schedule in
//! [`crate::fault::backoff_millis`] up to a [`SupervisePolicy`] budget.
//! A run that exhausts its budget is **quarantined**, not fatal: the rest
//! of the batch completes, the [`VerifyReport`] carries a per-run failure
//! taxonomy ([`FailureKind`]), and the exit decision is deferred to a
//! [`DenyPolicy`]. Injected chaos (a [`FaultPlan`]) flows through the
//! same path, so the §3 "finish the batch and report what broke" story is
//! a tested property, not a hope.

use crate::cache::{Lookup, RunCache};
use crate::experiment::{run_once, Experiment, Params, RunRecord};
use crate::fault::{backoff_millis, FaultPlan, FaultyExperiment};
use crate::registry::ExperimentRegistry;
use crate::sweep::{grid_points, Axis, SweepPoint};
use crate::trace::{
    AttemptOutcome, BatchTrace, CacheResult, RunTrace, TraceCounters, TraceEvent, WorkerTiming,
};
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};
use treu_math::parallel::{adaptive_chunk, default_threads, par_map_dynamic_stats, SchedStats};
use treu_math::scaling::amdahl_speedup;

/// Deterministic parallel executor with a fixed worker count.
#[derive(Debug, Clone)]
pub struct Executor {
    jobs: usize,
    tracing: bool,
}

impl Default for Executor {
    /// One worker per available hardware thread.
    fn default() -> Self {
        Self::new(default_threads())
    }
}

impl Executor {
    /// Executor with `jobs` workers (clamped to at least 1). Trace
    /// collection is on by default — the stream is a handful of enum
    /// pushes per run, well under the < 2% overhead budget exec_bench
    /// enforces.
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1), tracing: true }
    }

    /// Single-worker executor: runs everything inline, in order.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Enables or disables trace collection for the batch methods.
    /// Disabled, the supervised paths skip every event push and reports
    /// carry an empty [`BatchTrace`] — the baseline exec_bench measures
    /// overhead against.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Whether trace collection is enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The executor's core primitive: applies `f` to every index in
    /// `0..n` across the configured workers — dynamic self-scheduling,
    /// results in index order. Scheduling never influences output order
    /// or content.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_indexed_stats(n, f).0
    }

    /// [`Executor::map_indexed`] plus the scheduler's per-worker
    /// [`SchedStats`] (busy seconds, chunks claimed, items computed).
    pub fn map_indexed_stats<T, F>(&self, n: usize, f: F) -> (Vec<T>, SchedStats)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        par_map_dynamic_stats(n, self.jobs, adaptive_chunk(n, self.jobs), f)
    }

    /// Parallel form of [`crate::experiment::run_seeds`]: one record per
    /// seed, in seed order, bitwise-identical to the sequential version.
    pub fn run_seeds<E>(&self, exp: &E, seeds: &[u64], params: &Params) -> Vec<RunRecord>
    where
        E: Experiment + Sync + ?Sized,
    {
        self.map_indexed(seeds.len(), |i| run_once(exp, seeds[i], params.clone()))
    }

    /// [`Executor::run_seeds`] plus an [`ExecReport`] for the batch.
    pub fn run_seeds_report<E>(
        &self,
        exp: &E,
        seeds: &[u64],
        params: &Params,
    ) -> (Vec<RunRecord>, ExecReport)
    where
        E: Experiment + Sync + ?Sized,
    {
        // treu-lint: allow(wall-clock, reason = "batch timing reported outside the fingerprint")
        let start = Instant::now();
        let (records, sched) =
            self.map_indexed_stats(seeds.len(), |i| run_once(exp, seeds[i], params.clone()));
        let report = ExecReport::from_labelled(
            self.jobs,
            records.iter().map(|r| (format!("seed {}", r.seed), r.wall_seconds)),
            start.elapsed().as_secs_f64(),
        )
        .with_workers(&sched);
        (records, report)
    }

    /// Parallel form of [`crate::sweep::sweep`]: the full cartesian grid
    /// in canonical (odometer) order, bitwise-identical to the sequential
    /// version.
    pub fn sweep<E>(&self, exp: &E, base: &Params, axes: &[Axis], seed: u64) -> Vec<SweepPoint>
    where
        E: Experiment + Sync + ?Sized,
    {
        let grid = grid_points(base, axes, seed);
        self.map_indexed(grid.len(), |i| {
            let gp = &grid[i];
            SweepPoint {
                assignment: gp.assignment.clone(),
                record: run_once(exp, gp.seed, gp.params.clone()),
            }
        })
    }

    /// Runs every registered experiment at its default parameters,
    /// returning `(id, record)` pairs in registry (id) order.
    pub fn run_all(&self, reg: &ExperimentRegistry, seed: u64) -> Vec<(String, RunRecord)> {
        self.run_all_report(reg, seed).0
    }

    /// [`Executor::run_all`] plus an [`ExecReport`] for the batch.
    pub fn run_all_report(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
    ) -> (Vec<(String, RunRecord)>, ExecReport) {
        self.run_all_report_cached(reg, seed, None)
    }

    /// [`Executor::run_all_report`] through an optional [`RunCache`]:
    /// ids whose `(id, defaults, seed)` key is cached under the current
    /// code+env fingerprint are replayed from disk; only the misses are
    /// dispatched to workers, and their records are stored after the
    /// batch. Results are identical to the uncached call (the cache
    /// round-trips trails bitwise); a cached record's `wall_seconds` is
    /// its original compute cost.
    pub fn run_all_report_cached(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
        cache: Option<&RunCache>,
    ) -> (Vec<(String, RunRecord)>, ExecReport) {
        let entries: Vec<(&str, &Params)> = reg.iter().map(|(id, e)| (id, &e.defaults)).collect();
        // treu-lint: allow(wall-clock, reason = "batch timing reported outside the fingerprint")
        let start = Instant::now();
        let mut traces: Vec<RunTrace> =
            entries.iter().map(|(id, _)| RunTrace::new(id, seed)).collect();
        let mut slots: Vec<Option<RunRecord>> = entries
            .iter()
            .zip(traces.iter_mut())
            .map(|((id, p), rt)| match cache {
                None => None,
                Some(c) => {
                    let found = c.lookup_classified(id, seed, p);
                    if self.tracing {
                        rt.push(
                            TraceEvent::Cache { result: cache_result(&found) },
                            start.elapsed().as_secs_f64(),
                        );
                    }
                    match found {
                        Lookup::Hit(rec) => Some(rec),
                        _ => None,
                    }
                }
            })
            .collect();
        let cached_runs = slots.iter().filter(|s| s.is_some()).count();
        let misses: Vec<usize> = (0..entries.len()).filter(|&i| slots[i].is_none()).collect();
        let tracing = self.tracing;
        let (computed, sched) = self.map_indexed_stats(misses.len(), |k| {
            let (id, _) = entries[misses[k]];
            let mut rt = tracing.then(|| RunTrace::new(id, seed));
            if let Some(rt) = rt.as_mut() {
                rt.push(TraceEvent::Claim { replica: 0 }, start.elapsed().as_secs_f64());
                rt.push(
                    TraceEvent::AttemptStart { replica: 0, attempt: 0 },
                    start.elapsed().as_secs_f64(),
                );
            }
            let rec = reg.run(id, seed).expect("id comes from the registry's own iterator");
            if let Some(rt) = rt.as_mut() {
                rt.push(
                    TraceEvent::AttemptEnd { replica: 0, attempt: 0, outcome: AttemptOutcome::Ok },
                    start.elapsed().as_secs_f64(),
                );
            }
            (rec, rt)
        });
        for (k, (rec, rt)) in computed.into_iter().enumerate() {
            let i = misses[k];
            if let Some(rt) = rt {
                traces[i].absorb(rt);
            }
            if let Some(c) = cache {
                let (id, p) = entries[i];
                if c.store(id, seed, p, &rec).is_ok() && tracing {
                    traces[i].push(TraceEvent::CacheStored, start.elapsed().as_secs_f64());
                }
            }
            slots[i] = Some(rec);
        }
        let records: Vec<(String, RunRecord)> = entries
            .iter()
            .zip(slots)
            .map(|((id, _), rec)| (id.to_string(), rec.expect("every slot filled above")))
            .collect();
        let wall = start.elapsed().as_secs_f64();
        let report = ExecReport::from_labelled(
            self.jobs,
            records.iter().map(|(id, r)| (id.clone(), r.wall_seconds)),
            wall,
        )
        .with_workers(&sched)
        .with_cached(cached_runs)
        .with_trace(batch_trace("run", seed, traces, self.jobs, wall, &sched));
        (records, report)
    }

    /// The parallel form of [`crate::experiment::assert_deterministic`]:
    /// runs `exp` twice concurrently with the same seed and panics unless
    /// the two trails are bitwise-identical. Returns the shared
    /// fingerprint on success.
    pub fn assert_deterministic<E>(&self, exp: &E, seed: u64, params: &Params) -> u64
    where
        E: Experiment + Sync + ?Sized,
    {
        let runs = self.map_indexed(2, |_| run_once(exp, seed, params.clone()));
        assert_eq!(
            runs[0].trail,
            runs[1].trail,
            "experiment '{}' is not deterministic for seed {seed} under concurrent re-execution",
            exp.name()
        );
        runs[0].fingerprint()
    }

    /// Verifies every registered experiment: each id is run twice,
    /// concurrently with everything else, and the two trails are
    /// cross-checked. Uses each entry's default parameters.
    pub fn verify_all(&self, reg: &ExperimentRegistry, seed: u64) -> VerifyReport {
        self.verify_all_with(reg, seed, |_, defaults| defaults)
    }

    /// [`Executor::verify_all`] with a parameter override hook: `params`
    /// receives each id and its registered defaults and returns the
    /// parameters to verify at (the conformance tests lighten heavy
    /// experiments this way).
    pub fn verify_all_with(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
        params: impl Fn(&str, Params) -> Params + Sync,
    ) -> VerifyReport {
        self.verify_all_cached_with(reg, seed, None, params)
    }

    /// [`Executor::verify_all`] through an optional [`RunCache`].
    pub fn verify_all_cached(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
        cache: Option<&RunCache>,
    ) -> VerifyReport {
        self.verify_all_cached_with(reg, seed, cache, |_, defaults| defaults)
    }

    /// The general verification pass: parameter override hook plus an
    /// optional [`RunCache`].
    ///
    /// A cache hit means the id was previously run (and, for entries this
    /// pass wrote, cross-checked) under the *same code+env fingerprint*,
    /// so its outcome is reported as reproduced-from-cache without
    /// recomputation — re-verification of an unchanged artifact costs
    /// ~zero. Misses run twice concurrently, are cross-checked, and the
    /// first replica is stored on success. [`VerifyReport::recomputed`]
    /// counts the ids that actually ran.
    pub fn verify_all_cached_with(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
        cache: Option<&RunCache>,
        params: impl Fn(&str, Params) -> Params + Sync,
    ) -> VerifyReport {
        self.verify_all_supervised_with(reg, seed, cache, &SupervisePolicy::default(), None, params)
    }

    /// Runs every registered experiment under supervision: panics are
    /// caught, attempts retry per `policy`, and exhausted runs come back
    /// as [`RunOutcome::Failed`] instead of aborting the batch. An
    /// optional [`FaultPlan`] injects deterministic chaos on the way in.
    pub fn run_all_supervised(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
        policy: &SupervisePolicy,
        plan: Option<&FaultPlan>,
    ) -> (Vec<(String, RunOutcome)>, ExecReport) {
        let entries: Vec<_> = reg.iter().collect();
        // treu-lint: allow(wall-clock, reason = "batch timing reported outside the fingerprint")
        let start = Instant::now();
        let tracing = self.tracing;
        let (results, sched) = self.map_indexed_stats(entries.len(), |i| {
            let (id, e) = entries[i];
            let mut rt = tracing.then(|| RunTrace::new(id, seed));
            if let Some(rt) = rt.as_mut() {
                rt.push(TraceEvent::Claim { replica: 0 }, start.elapsed().as_secs_f64());
            }
            let out = run_supervised_traced(
                e.runner(),
                id,
                seed,
                &e.defaults,
                policy,
                plan,
                0,
                rt.as_mut().map(|rt| (rt, start)),
            );
            (out, rt)
        });
        let mut traces = Vec::with_capacity(entries.len());
        let mut pairs: Vec<(String, RunOutcome)> = Vec::with_capacity(entries.len());
        for ((id, _), (out, rt)) in entries.iter().zip(results) {
            traces.push(rt.unwrap_or_else(|| RunTrace::new(id, seed)));
            pairs.push((id.to_string(), out));
        }
        let failed = pairs.iter().filter(|(_, o)| !o.is_ok()).count();
        let wall = start.elapsed().as_secs_f64();
        let report = ExecReport::from_labelled(
            self.jobs,
            pairs.iter().filter_map(|(id, o)| o.record().map(|r| (id.clone(), r.wall_seconds))),
            wall,
        )
        .with_workers(&sched)
        .with_failed(failed)
        .with_trace(batch_trace("run", seed, traces, self.jobs, wall, &sched));
        (pairs, report)
    }

    /// [`Executor::verify_all`] under full supervision — this is the
    /// general pass every other verify method funnels into.
    ///
    /// Each non-cached id runs as two supervised replicas; both must
    /// succeed and agree bitwise to count as reproduced. Failures carry a
    /// taxonomy: a panic or deadline that survives the retry budget is
    /// quarantined as such, replica disagreement is
    /// [`FailureKind::Nondeterministic`], and when a *corrupt cache
    /// entry* preceded the recompute the outcome is tagged
    /// [`FailureKind::CorruptCache`] on failure (or marked self-healed on
    /// success). The batch always completes; gating is the caller's
    /// [`DenyPolicy`] decision.
    pub fn verify_all_supervised_with(
        &self,
        reg: &ExperimentRegistry,
        seed: u64,
        cache: Option<&RunCache>,
        policy: &SupervisePolicy,
        plan: Option<&FaultPlan>,
        params: impl Fn(&str, Params) -> Params + Sync,
    ) -> VerifyReport {
        let jobs: Vec<(&str, Params, &crate::registry::Entry)> =
            reg.iter().map(|(id, e)| (id, params(id, e.defaults.clone()), e)).collect();
        // treu-lint: allow(wall-clock, reason = "verification timing reported outside the fingerprint")
        let start = Instant::now();
        let mut traces: Vec<RunTrace> =
            jobs.iter().map(|(id, _, _)| RunTrace::new(id, seed)).collect();
        let looked: Vec<Lookup> = jobs
            .iter()
            .zip(traces.iter_mut())
            .map(|((id, p, _), rt)| {
                let found = match cache {
                    Some(c) => c.lookup_classified(id, seed, p),
                    None => Lookup::Miss,
                };
                if self.tracing && cache.is_some() {
                    rt.push(
                        TraceEvent::Cache { result: cache_result(&found) },
                        start.elapsed().as_secs_f64(),
                    );
                }
                found
            })
            .collect();
        let misses: Vec<usize> =
            (0..jobs.len()).filter(|&i| !matches!(looked[i], Lookup::Hit(_))).collect();
        let tracing = self.tracing;
        // Both replicas of a missed id are independent tasks, so they run
        // concurrently whenever jobs >= 2. Each replica records into its
        // own local buffer (no shared state on the hot path); buffers are
        // merged below in fixed (id, replica) order, which is what keeps
        // the rendered stream schedule-independent.
        let (runs, sched) = self.map_indexed_stats(misses.len() * 2, |i| {
            let (id, p, e) = &jobs[misses[i / 2]];
            let replica = (i % 2) as u32;
            let mut rt = tracing.then(|| RunTrace::new(id, seed));
            if let Some(rt) = rt.as_mut() {
                rt.push(TraceEvent::Claim { replica }, start.elapsed().as_secs_f64());
            }
            let out = run_supervised_traced(
                e.runner(),
                id,
                seed,
                p,
                policy,
                plan,
                replica,
                rt.as_mut().map(|rt| (rt, start)),
            );
            (out, rt)
        });
        let recomputed = misses.len();
        let mut fresh = runs.into_iter();
        let outcomes = jobs
            .iter()
            .zip(looked)
            .enumerate()
            .map(|(i, ((id, p, _), found))| match found {
                Lookup::Hit(rec) => {
                    let outcome = VerifyOutcome {
                        id: id.to_string(),
                        fingerprint: rec.fingerprint(),
                        reproduced: true,
                        cached: true,
                        attempts: 1,
                        healed_corruption: false,
                        failure: None,
                    };
                    if tracing && cache.is_some() {
                        traces[i].push(
                            TraceEvent::Verdict {
                                reproduced: true,
                                cached: true,
                                attempts: 1,
                                fingerprint: outcome.fingerprint,
                                failure: None,
                            },
                            start.elapsed().as_secs_f64(),
                        );
                    }
                    outcome
                }
                not_hit => {
                    let was_corrupt = matches!(not_hit, Lookup::Corrupt);
                    let (oa, ta) = fresh.next().expect("two fresh runs per miss");
                    let (ob, tb) = fresh.next().expect("two fresh runs per miss");
                    if let Some(t) = ta {
                        traces[i].absorb(t);
                    }
                    if let Some(t) = tb {
                        traces[i].absorb(t);
                    }
                    cross_check(
                        id,
                        seed,
                        p,
                        &[oa, ob],
                        cache,
                        was_corrupt,
                        tracing.then_some((&mut traces[i], start)),
                    )
                }
            })
            .collect();
        let wall = start.elapsed().as_secs_f64();
        let trace = batch_trace("verify", seed, traces, self.jobs, wall, &sched);
        let counters = trace.counters();
        VerifyReport { jobs: self.jobs, outcomes, wall_seconds: wall, recomputed, trace, counters }
    }
}

/// Maps a cache [`Lookup`] classification onto its trace-event mirror.
pub(crate) fn cache_result(found: &Lookup) -> CacheResult {
    match found {
        Lookup::Hit(_) => CacheResult::Hit,
        Lookup::Miss => CacheResult::Miss,
        Lookup::Stale => CacheResult::Stale,
        Lookup::Corrupt => CacheResult::Corrupt,
    }
}

/// Assembles per-run traces plus the scheduler's timing into a
/// [`BatchTrace`] (worker loads and wall time go to the sidecar only).
pub(crate) fn batch_trace(
    kind: &str,
    seed: u64,
    runs: Vec<RunTrace>,
    jobs: usize,
    wall_seconds: f64,
    sched: &SchedStats,
) -> BatchTrace {
    BatchTrace {
        kind: kind.to_string(),
        seed,
        runs,
        jobs,
        wall_seconds,
        workers: sched
            .busy_seconds
            .iter()
            .zip(&sched.chunks_claimed)
            .zip(&sched.items)
            .map(|((&busy_seconds, &chunks), &items)| WorkerTiming { busy_seconds, chunks, items })
            .collect(),
    }
}

/// Cross-checks one id's two supervised replicas into a [`VerifyOutcome`],
/// recording store/heal/verdict events into the run's trace when one is
/// threaded through.
pub(crate) fn cross_check(
    id: &str,
    seed: u64,
    params: &Params,
    pair: &[RunOutcome],
    cache: Option<&RunCache>,
    was_corrupt: bool,
    mut tracer: Option<(&mut RunTrace, Instant)>,
) -> VerifyOutcome {
    let outcome = match (&pair[0], &pair[1]) {
        (
            RunOutcome::Ok { record: a, attempts: aa },
            RunOutcome::Ok { record: b, attempts: ab },
        ) => {
            let reproduced = a.trail == b.trail;
            let attempts = (*aa).max(*ab);
            if reproduced {
                if let Some(c) = cache {
                    if c.store(id, seed, params, a).is_ok() {
                        emit(&mut tracer, TraceEvent::CacheStored);
                    }
                }
                if was_corrupt {
                    emit(&mut tracer, TraceEvent::CacheHealed);
                }
            }
            let failure = (!reproduced).then(|| RunFailure {
                taxonomy: if was_corrupt {
                    FailureKind::CorruptCache
                } else {
                    FailureKind::Nondeterministic
                },
                attempts,
                last_error: "verification replicas produced different trails".to_string(),
            });
            VerifyOutcome {
                id: id.to_string(),
                fingerprint: a.fingerprint(),
                reproduced,
                cached: false,
                attempts,
                healed_corruption: was_corrupt && reproduced,
                failure,
            }
        }
        _ => {
            let f = pair
                .iter()
                .find_map(|o| match o {
                    RunOutcome::Failed(f) => Some(f.clone()),
                    RunOutcome::Ok { .. } => None,
                })
                .expect("a non-Ok pair contains a failure");
            let fingerprint =
                pair.iter().find_map(RunOutcome::record).map(RunRecord::fingerprint).unwrap_or(0);
            let taxonomy = if was_corrupt { FailureKind::CorruptCache } else { f.taxonomy };
            VerifyOutcome {
                id: id.to_string(),
                fingerprint,
                reproduced: false,
                cached: false,
                attempts: f.attempts,
                healed_corruption: false,
                failure: Some(RunFailure { taxonomy, ..f }),
            }
        }
    };
    emit(
        &mut tracer,
        TraceEvent::Verdict {
            reproduced: outcome.reproduced,
            cached: false,
            attempts: outcome.attempts,
            fingerprint: outcome.fingerprint,
            failure: outcome.failure.as_ref().map(|f| f.taxonomy.name()),
        },
    );
    outcome
}

/// Pushes `event` into the tracer's run buffer, stamped with the elapsed
/// time since the batch epoch. A `None` tracer costs one branch.
pub(crate) fn emit(tracer: &mut Option<(&mut RunTrace, Instant)>, event: TraceEvent) {
    if let Some((rt, epoch)) = tracer.as_mut() {
        rt.push(event, epoch.elapsed().as_secs_f64());
    }
}

/// Retry and deadline budget for supervised execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SupervisePolicy {
    /// Retries after the first attempt (0 = one attempt only).
    pub retries: u32,
    /// Per-attempt wall-clock deadline; `None` disarms the watchdog.
    pub deadline: Option<Duration>,
}

impl SupervisePolicy {
    /// A policy with `retries` retries and no deadline.
    pub fn new(retries: u32) -> Self {
        Self { retries, deadline: None }
    }

    /// Arms the per-attempt watchdog (non-positive `secs` disarms it).
    pub fn with_deadline_secs(mut self, secs: f64) -> Self {
        self.deadline = (secs > 0.0).then(|| Duration::from_secs_f64(secs));
        self
    }
}

/// Why a supervised run failed — the report's failure taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The run panicked on every attempt in the budget.
    Panicked,
    /// The run exceeded its per-attempt deadline on every attempt.
    TimedOut,
    /// Verification replicas completed but produced different trails.
    Nondeterministic,
    /// A cached entry failed read-time checksum verification and the
    /// recomputation could not re-establish a verified result.
    CorruptCache,
}

impl FailureKind {
    /// Stable taxonomy label, as rendered in `QUARANTINED(..)` lines.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panicked => "Panicked",
            FailureKind::TimedOut => "TimedOut",
            FailureKind::Nondeterministic => "Nondeterministic",
            FailureKind::CorruptCache => "CorruptCache",
        }
    }
}

/// A quarantined run: taxonomy, attempts spent, and the last error text.
#[derive(Debug, Clone, PartialEq)]
pub struct RunFailure {
    /// What class of failure exhausted the budget.
    pub taxonomy: FailureKind,
    /// Attempts consumed (retries + 1 when exhausted).
    pub attempts: u32,
    /// The last attempt's error (panic message or deadline report).
    pub last_error: String,
}

/// The outcome of one supervised run.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run completed; `attempts` counts tries including the final
    /// successful one (1 = clean first try).
    Ok {
        /// The completed record.
        record: RunRecord,
        /// Attempts consumed, including the successful one.
        attempts: u32,
    },
    /// The run exhausted its budget and was quarantined.
    Failed(RunFailure),
}

impl RunOutcome {
    /// The completed record, if any.
    pub fn record(&self) -> Option<&RunRecord> {
        match self {
            RunOutcome::Ok { record, .. } => Some(record),
            RunOutcome::Failed(_) => None,
        }
    }

    /// Attempts consumed either way.
    pub fn attempts(&self) -> u32 {
        match self {
            RunOutcome::Ok { attempts, .. } => *attempts,
            RunOutcome::Failed(f) => f.attempts,
        }
    }

    /// True on success.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunOutcome::Ok { .. })
    }
}

/// When a report's findings should flip the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyPolicy {
    /// Never gate: report and exit 0.
    None,
    /// Gate on warnings and errors: any quarantine/mismatch, any run that
    /// needed retries to pass, any self-healed cache corruption.
    Warn,
    /// Gate on errors only: quarantined or mismatched runs.
    Error,
}

impl DenyPolicy {
    /// Parses `none|warn|error`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(DenyPolicy::None),
            "warn" => Some(DenyPolicy::Warn),
            "error" => Some(DenyPolicy::Error),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            DenyPolicy::None => "none",
            DenyPolicy::Warn => "warn",
            DenyPolicy::Error => "error",
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// One supervised attempt: catch panics, optionally bound by a deadline.
#[allow(clippy::too_many_arguments)]
fn attempt_once<E>(
    exp: &E,
    id: &str,
    seed: u64,
    params: &Params,
    deadline: Option<Duration>,
    plan: Option<&FaultPlan>,
    attempt: u32,
    replica: u32,
) -> Result<RunRecord, (FailureKind, String)>
where
    E: Experiment + Sync + ?Sized,
{
    let run = || {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match plan {
            Some(p) => {
                run_once(&FaultyExperiment::new(exp, p, id, attempt, replica), seed, params.clone())
            }
            None => run_once(exp, seed, params.clone()),
        }))
        .map_err(|payload| (FailureKind::Panicked, panic_message(payload.as_ref())))
    };
    match deadline {
        None => run(),
        Some(limit) => {
            // Watchdog: the attempt runs on a scoped thread while this
            // thread waits on the channel with a timeout. The verdict is
            // rendered *at* the deadline; the straggler is joined
            // cooperatively when the scope closes (injected delays are
            // bounded, so the join is too — a kill would need unsafe or
            // process isolation, both out of contract here).
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::scope(|s| {
                // treu-lint: allow(wall-clock, reason = "deadline budget accounting; never part of a result")
                let attempt_start = Instant::now();
                s.spawn(move || {
                    let _ = tx.send(run());
                });
                match await_deadline(&rx, attempt_start, limit) {
                    Ok(res) => res,
                    Err(_) => Err((
                        FailureKind::TimedOut,
                        format!("exceeded per-run deadline of {:.3}s", limit.as_secs_f64()),
                    )),
                }
            })
        }
    }
}

/// Waits on `rx` for at most `limit` measured from the logical attempt
/// start `start` — *not* from each call to `recv_timeout`. Re-arming a
/// wait with the full deadline after a spurious wakeup lets the
/// effective budget drift arbitrarily past `limit`; this loop always
/// re-arms with the remaining budget, so the total wait is bounded by
/// `limit` no matter how often the wait is interrupted.
///
/// Returns `Err(true)` when the sender disconnected without a value and
/// `Err(false)` on deadline exhaustion. Shared by the per-attempt
/// watchdog above and reused as the supervision discipline for the
/// service coordinator's per-worker watchdog.
pub(crate) fn await_deadline<T>(
    rx: &std::sync::mpsc::Receiver<T>,
    start: Instant,
    limit: Duration,
) -> Result<T, bool> {
    use std::sync::mpsc::RecvTimeoutError;
    loop {
        let remaining = limit.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            return Err(false);
        }
        match rx.recv_timeout(remaining) {
            Ok(v) => return Ok(v),
            Err(RecvTimeoutError::Disconnected) => return Err(true),
            // A wakeup short of the budget: recompute the remainder from
            // the attempt epoch and keep waiting.
            Err(RecvTimeoutError::Timeout) => continue,
        }
    }
}

/// Runs one experiment under a [`SupervisePolicy`]: panics are caught,
/// failed attempts retry after the deterministic
/// [`crate::fault::backoff_millis`] pause, and an exhausted budget yields
/// a quarantined [`RunOutcome::Failed`] instead of propagating.
///
/// `plan` (when present) wraps the experiment in a [`FaultyExperiment`]
/// for attempt-aware chaos injection; `replica` distinguishes
/// verification replicas so injected trail corruption cannot hide by
/// corrupting both replicas identically.
pub fn run_supervised<E>(
    exp: &E,
    id: &str,
    seed: u64,
    params: &Params,
    policy: &SupervisePolicy,
    plan: Option<&FaultPlan>,
    replica: u32,
) -> RunOutcome
where
    E: Experiment + Sync + ?Sized,
{
    run_supervised_traced(exp, id, seed, params, policy, plan, replica, None)
}

/// [`run_supervised`] with span recording: every attempt boundary,
/// injected fault and backoff pause is pushed into the caller's
/// [`RunTrace`] (stamped relative to the epoch `Instant`). With `tracer`
/// `None` the event path costs one branch per site — this *is*
/// [`run_supervised`].
#[allow(clippy::too_many_arguments)]
pub fn run_supervised_traced<E>(
    exp: &E,
    id: &str,
    seed: u64,
    params: &Params,
    policy: &SupervisePolicy,
    plan: Option<&FaultPlan>,
    replica: u32,
    mut tracer: Option<(&mut RunTrace, Instant)>,
) -> RunOutcome
where
    E: Experiment + Sync + ?Sized,
{
    let mut last = (FailureKind::Panicked, String::new());
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            let millis = backoff_millis(attempt, id, seed);
            emit(&mut tracer, TraceEvent::Backoff { replica, attempt, millis });
            std::thread::sleep(Duration::from_millis(millis));
        }
        emit(&mut tracer, TraceEvent::AttemptStart { replica, attempt });
        if tracer.is_some() {
            if let Some(kind) = plan.and_then(|p| p.fault_at(id, seed, attempt)) {
                emit(&mut tracer, TraceEvent::Fault { replica, attempt, kind: kind.label() });
            }
        }
        match attempt_once(exp, id, seed, params, policy.deadline, plan, attempt, replica) {
            Ok(record) => {
                emit(
                    &mut tracer,
                    TraceEvent::AttemptEnd { replica, attempt, outcome: AttemptOutcome::Ok },
                );
                emit(
                    &mut tracer,
                    TraceEvent::Outcome {
                        replica,
                        ok: true,
                        attempts: attempt + 1,
                        taxonomy: None,
                    },
                );
                return RunOutcome::Ok { record, attempts: attempt + 1 };
            }
            Err(e) => {
                let outcome = match e.0 {
                    FailureKind::TimedOut => AttemptOutcome::TimedOut,
                    _ => AttemptOutcome::Panicked,
                };
                emit(&mut tracer, TraceEvent::AttemptEnd { replica, attempt, outcome });
                last = e;
            }
        }
    }
    emit(
        &mut tracer,
        TraceEvent::Outcome {
            replica,
            ok: false,
            attempts: policy.retries + 1,
            taxonomy: Some(last.0.name()),
        },
    );
    RunOutcome::Failed(RunFailure {
        taxonomy: last.0,
        attempts: policy.retries + 1,
        last_error: last.1,
    })
}

/// One experiment's verification outcome.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// Experiment id.
    pub id: String,
    /// Fingerprint of the first replica.
    pub fingerprint: u64,
    /// True when both replicas produced bitwise-identical trails.
    pub reproduced: bool,
    /// True when the outcome was served from the run cache (previously
    /// verified under the same code+env fingerprint) without recompute.
    pub cached: bool,
    /// Attempts the slower replica needed (1 = clean first try; cached
    /// outcomes are always 1).
    pub attempts: u32,
    /// True when a corrupt cache entry was detected, invalidated, and the
    /// recompute re-established a verified result (self-healed).
    pub healed_corruption: bool,
    /// The failure, when the id did not reproduce.
    pub failure: Option<RunFailure>,
}

/// The result of a registry-wide verification pass.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Worker count used.
    pub jobs: usize,
    /// Per-id outcomes, in registry (id) order.
    pub outcomes: Vec<VerifyOutcome>,
    /// Wall-clock seconds for the whole pass.
    pub wall_seconds: f64,
    /// Ids that were actually (re)computed this pass — with a warm cache
    /// this is zero.
    pub recomputed: usize,
    /// The pass's merged event trace (empty when tracing was disabled).
    pub trace: BatchTrace,
    /// Aggregate counters folded from [`VerifyReport::trace`] — the
    /// report and the trace are two views of the same event stream.
    pub counters: TraceCounters,
}

impl VerifyReport {
    /// True when every experiment reproduced.
    pub fn all_reproduced(&self) -> bool {
        self.outcomes.iter().all(|o| o.reproduced)
    }

    /// Ids that failed to reproduce.
    pub fn violations(&self) -> Vec<&str> {
        self.outcomes.iter().filter(|o| !o.reproduced).map(|o| o.id.as_str()).collect()
    }

    /// Outcomes served from the cache.
    pub fn cached_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cached).count()
    }

    /// Outcomes quarantined by the supervisor: the run *could not
    /// complete* (panic, deadline, corrupt cache) — as opposed to
    /// completing with mismatched replicas, which is a plain
    /// determinism violation.
    pub fn quarantined(&self) -> Vec<&VerifyOutcome> {
        self.outcomes
            .iter()
            .filter(|o| {
                o.failure.as_ref().is_some_and(|f| f.taxonomy != FailureKind::Nondeterministic)
            })
            .collect()
    }

    /// Outcomes that reproduced only after retries.
    pub fn retried(&self) -> Vec<&VerifyOutcome> {
        self.outcomes.iter().filter(|o| o.reproduced && o.attempts > 1).collect()
    }

    /// Outcomes whose corrupt cache entry was self-healed.
    pub fn healed(&self) -> Vec<&VerifyOutcome> {
        self.outcomes.iter().filter(|o| o.healed_corruption).collect()
    }

    /// True when this report should flip the exit code under `policy`:
    /// `Error` gates on any non-reproduced id; `Warn` additionally gates
    /// on runs that needed retries or self-healed cache corruption;
    /// `None` never gates.
    pub fn exceeds(&self, policy: DenyPolicy) -> bool {
        match policy {
            DenyPolicy::None => false,
            DenyPolicy::Error => !self.all_reproduced(),
            DenyPolicy::Warn => {
                !self.all_reproduced() || !self.retried().is_empty() || !self.healed().is_empty()
            }
        }
    }

    /// Renders one line per id plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            if o.reproduced {
                let mut suffix = String::new();
                if o.healed_corruption {
                    suffix.push_str(" [healed corrupt cache entry]");
                }
                if o.attempts > 1 {
                    suffix.push_str(&format!(" [after {} attempts]", o.attempts));
                }
                out.push_str(&format!(
                    "{:<10} REPRODUCED{} (fingerprint {:#018x}){}\n",
                    o.id,
                    if o.cached { " [cached]" } else { "" },
                    o.fingerprint,
                    suffix
                ));
            } else if let Some(f) =
                o.failure.as_ref().filter(|f| f.taxonomy != FailureKind::Nondeterministic)
            {
                out.push_str(&format!(
                    "{:<10} QUARANTINED({}) after {} attempt(s): {}\n",
                    o.id,
                    f.taxonomy.name(),
                    f.attempts,
                    f.last_error
                ));
            } else {
                out.push_str(&format!("{:<10} MISMATCH — run is not deterministic\n", o.id));
            }
        }
        out.push_str(&format!(
            "{}/{} reproduced in {:.3}s with {} job(s)\n",
            self.outcomes.iter().filter(|o| o.reproduced).count(),
            self.outcomes.len(),
            self.wall_seconds,
            self.jobs
        ));
        if self.cached_count() > 0 {
            out.push_str(&format!(
                "{} from cache, {} recomputed\n",
                self.cached_count(),
                self.recomputed
            ));
        }
        let quarantined = self.quarantined();
        if !quarantined.is_empty() {
            out.push_str(&format!(
                "{} quarantined: {}\n",
                quarantined.len(),
                quarantined.iter().map(|o| o.id.as_str()).collect::<Vec<_>>().join(", ")
            ));
        }
        if self.counters.events > 0 {
            out.push_str(&self.counters.render_line());
        }
        out
    }
}

/// Wall-clock accounting for one run inside a batch.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Display label (seed, id, or grid tag).
    pub label: String,
    /// Wall seconds of that run alone.
    pub wall_seconds: f64,
}

/// One worker's measured load inside a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerLoad {
    /// Seconds spent inside the claim loop (compute + negligible claim
    /// overhead).
    pub busy_seconds: f64,
    /// Chunks claimed from the shared counter.
    pub chunks: usize,
    /// Items computed.
    pub items: usize,
}

/// Timing report for a parallel batch: where the time went, how well the
/// fan-out paid off, and what Amdahl's law implies about pushing further.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Worker count used.
    pub jobs: usize,
    /// Per-run timings, in canonical order.
    pub runs: Vec<RunTiming>,
    /// Measured wall seconds for the whole batch.
    pub wall_seconds: f64,
    /// Per-worker load, in worker-spawn order; empty when the batch did
    /// not go through the dynamic scheduler's stats path.
    pub workers: Vec<WorkerLoad>,
    /// Runs served from the run cache (their [`RunTiming`] carries the
    /// original compute cost, not this batch's).
    pub cached_runs: usize,
    /// Runs that exhausted their supervision budget and were quarantined
    /// (they contribute no [`RunTiming`]).
    pub failed_runs: usize,
    /// The batch's merged event trace (empty when tracing was disabled or
    /// the batch did not go through a traced path).
    pub trace: BatchTrace,
    /// Aggregate counters folded from [`ExecReport::trace`].
    pub counters: TraceCounters,
}

impl ExecReport {
    /// Builds a report from labelled per-run wall times plus the measured
    /// batch wall time.
    pub fn from_labelled(
        jobs: usize,
        runs: impl IntoIterator<Item = (String, f64)>,
        wall_seconds: f64,
    ) -> Self {
        Self {
            jobs,
            runs: runs
                .into_iter()
                .map(|(label, wall_seconds)| RunTiming { label, wall_seconds })
                .collect(),
            wall_seconds,
            workers: Vec::new(),
            cached_runs: 0,
            failed_runs: 0,
            trace: BatchTrace::empty("batch", 0),
            counters: TraceCounters::default(),
        }
    }

    /// Attaches the dynamic scheduler's per-worker load accounting.
    pub fn with_workers(mut self, sched: &SchedStats) -> Self {
        self.workers = sched
            .busy_seconds
            .iter()
            .zip(&sched.chunks_claimed)
            .zip(&sched.items)
            .map(|((&busy_seconds, &chunks), &items)| WorkerLoad { busy_seconds, chunks, items })
            .collect();
        self
    }

    /// Records how many runs were served from the cache.
    pub fn with_cached(mut self, cached_runs: usize) -> Self {
        self.cached_runs = cached_runs;
        self
    }

    /// Records how many runs were quarantined by the supervisor.
    pub fn with_failed(mut self, failed_runs: usize) -> Self {
        self.failed_runs = failed_runs;
        self
    }

    /// Attaches the batch's merged event trace and folds its counters.
    pub fn with_trace(mut self, trace: BatchTrace) -> Self {
        self.counters = trace.counters();
        self.trace = trace;
        self
    }

    /// Total CPU-seconds across runs — the sequential cost.
    pub fn total_seconds(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_seconds).sum()
    }

    /// The longest single run — no schedule can beat this.
    pub fn critical_path_seconds(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_seconds).fold(0.0, f64::max)
    }

    /// Sum of per-worker busy seconds (0.0 when no worker stats).
    pub fn total_busy_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_seconds).sum()
    }

    /// Load-imbalance ratio: busiest over least-busy worker. 1.0 when
    /// fewer than two workers reported, or when nobody did measurable
    /// work (e.g. every run quarantined) — always finite.
    pub fn imbalance_ratio(&self) -> f64 {
        if self.workers.len() < 2 {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.busy_seconds).fold(0.0, f64::max);
        let min = self.workers.iter().map(|w| w.busy_seconds).fold(f64::INFINITY, f64::min);
        // A worker with ~zero busy seconds did no measurable work — a
        // fully-cached batch, or more workers than items. max over ~0 is
        // scheduling noise, not imbalance; the old `min.max(1e-9)` floor
        // turned it into a ~1e9 "ratio".
        if max <= 0.0 || !min.is_finite() || min <= 1e-9 {
            return 1.0;
        }
        let ratio = max / min;
        if ratio.is_finite() {
            ratio
        } else {
            1.0
        }
    }

    /// True when every run in the batch was served from the run cache —
    /// nothing was computed, so busy/wall ratios describe replay, not
    /// work.
    pub fn all_cached(&self) -> bool {
        !self.runs.is_empty() && self.cached_runs >= self.runs.len()
    }

    /// Worker utilization: busy seconds over `workers × wall` (1.0 = no
    /// idle time anywhere). Falls back to run-time accounting when no
    /// worker stats are attached.
    pub fn utilization(&self) -> f64 {
        // A fully-cached batch computed nothing, but its RunTimings carry
        // the runs' *original* costs — dividing those by this batch's
        // near-zero wall time reported utilization far above 100%.
        if self.all_cached() {
            return 0.0;
        }
        let wall = self.wall_seconds.max(1e-12);
        let (busy, lanes) = if self.workers.is_empty() {
            (self.total_seconds(), self.jobs.max(1) as f64)
        } else {
            (self.total_busy_seconds(), self.workers.len() as f64)
        };
        (busy / (lanes * wall)).clamp(0.0, 1.0)
    }

    /// Measured speedup: sequential cost over measured batch wall time.
    /// 1.0 (not 0 or NaN) when there is nothing to account — an empty
    /// batch or one where every run was quarantined.
    pub fn speedup(&self) -> f64 {
        let total = self.total_seconds();
        if self.runs.is_empty() || total <= 0.0 {
            return 1.0;
        }
        total / self.wall_seconds.max(1e-12)
    }

    /// The serial fraction Amdahl's law implies for the measured batch
    /// (0 = perfect scaling, 1 = none).
    ///
    /// When per-worker busy times are attached, the fit uses what was
    /// *measured at the workers*: speedup = total busy seconds over batch
    /// wall time, at the spawned worker count — so scheduler idle time
    /// (imbalance) shows up as serial fraction instead of hiding inside
    /// batch wall time. Without worker stats it falls back to the
    /// per-run-sum estimate. With one effective lane there is no
    /// parallelism to attribute, so 1.0.
    pub fn serial_fraction(&self) -> f64 {
        let (s, t) = if self.workers.len() >= 2 {
            (self.total_busy_seconds() / self.wall_seconds.max(1e-12), self.workers.len() as f64)
        } else if self.workers.len() == 1 {
            return 1.0;
        } else {
            (self.speedup(), self.jobs.min(self.runs.len().max(1)) as f64)
        };
        if t <= 1.0 || !s.is_finite() {
            return 1.0;
        }
        let s = s.max(1e-12);
        // S = 1 / (f + (1-f)/t)  =>  f = (1/S - 1/t) / (1 - 1/t)
        ((1.0 / s - 1.0 / t) / (1.0 - 1.0 / t)).clamp(0.0, 1.0)
    }

    /// Projected speedup at `threads` workers under the fitted serial
    /// fraction — the [`treu_math::scaling`] Amdahl hook.
    pub fn projected_speedup(&self, threads: usize) -> f64 {
        amdahl_speedup(self.serial_fraction(), threads)
    }

    /// Renders the accounting: per-run lines, per-worker load, then
    /// totals and the scaling estimate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            out.push_str(&format!("  run    {:<24} {:>9.4}s\n", r.label, r.wall_seconds));
        }
        for (w, load) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "  worker {:<3} busy {:>9.4}s  {:>4} chunk(s)  {:>4} item(s)\n",
                w, load.busy_seconds, load.chunks, load.items
            ));
        }
        out.push_str(&format!(
            "  total {:.4}s over {} run(s); critical path {:.4}s; wall {:.4}s with {} job(s)\n",
            self.total_seconds(),
            self.runs.len(),
            self.critical_path_seconds(),
            self.wall_seconds,
            self.jobs
        ));
        if !self.workers.is_empty() {
            if self.all_cached() {
                out.push_str(&format!(
                    "  load: utilization — (all cached), {} worker(s) idle\n",
                    self.workers.len()
                ));
            } else {
                out.push_str(&format!(
                    "  load: utilization {:.1}%, imbalance max/min {:.2} over {} worker(s)\n",
                    100.0 * self.utilization(),
                    self.imbalance_ratio(),
                    self.workers.len()
                ));
            }
        }
        if self.cached_runs > 0 {
            out.push_str(&format!(
                "  cache: {} of {} run(s) served from the run cache\n",
                self.cached_runs,
                self.runs.len()
            ));
        }
        if self.failed_runs > 0 {
            out.push_str(&format!(
                "  quarantined: {} run(s) exhausted their supervision budget\n",
                self.failed_runs
            ));
        }
        if self.counters.events > 0 {
            out.push_str(&self.counters.render_line());
        }
        out.push_str(&format!(
            "  speedup {:.2}x (implied Amdahl serial fraction {:.3}{}; projected {:.2}x at {} threads)\n",
            self.speedup(),
            self.serial_fraction(),
            if self.workers.len() >= 2 { " from per-worker busy time" } else { "" },
            self.projected_speedup(2 * self.jobs.max(1)),
            2 * self.jobs.max(1)
        ));
        out
    }
}

/// Nearest-rank (ceil) quantile over an ascending-sorted sample.
///
/// The rank is `ceil(q * n)` clamped to `1..=n`, so `q = 0.99` answers
/// "the smallest value at or above which 99% of samples sit". The
/// tempting truncating form `(n * 99) / 100` is an off-by-one below 100
/// samples — at `n = 3` it indexes the *median* instead of the maximum —
/// which is exactly the kind of silent small-sample skew a
/// reproducibility report cannot afford. Shared by the soak harness and
/// [`TenantLedger::p99_latency_rounds`].
pub fn quantile_ceil_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Per-tenant accounting for a sustained multi-tenant run.
///
/// Latencies are **logical**: measured in dispatch rounds (a pure count
/// of scheduler iterations), never wall time, so fairness numbers are
/// part of the reproducible record like everything else.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantStats {
    /// Submissions enqueued for this tenant.
    pub submitted: u64,
    /// Submissions served (from cache or computed).
    pub served: u64,
    /// Served from the run cache.
    pub cache_hits: u64,
    /// Served by computing (supervised execution).
    pub computed: u64,
    /// Worst service latency, in dispatch rounds (1 = served in the
    /// round it became eligible).
    pub max_latency_rounds: u64,
    /// Sum of service latencies, for the mean.
    pub total_latency_rounds: u64,
}

impl TenantStats {
    /// Mean service latency in rounds (0 when nothing served yet).
    pub fn mean_latency_rounds(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_latency_rounds as f64 / self.served as f64
        }
    }
}

/// Deterministic per-tenant ledger: a `BTreeMap` keyed by tenant id, so
/// iteration, rendering and hashing are canonical.
#[derive(Debug, Clone, Default)]
pub struct TenantLedger {
    tenants: BTreeMap<u64, TenantStats>,
    // Pooled across tenants ([`TenantStats`] stays `Copy`); one entry per
    // served submission, in service order.
    latencies: Vec<u64>,
}

impl TenantLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one enqueued submission.
    pub fn note_submitted(&mut self, tenant: u64) {
        self.tenants.entry(tenant).or_default().submitted += 1;
    }

    /// Records one served submission with its logical latency.
    pub fn note_served(&mut self, tenant: u64, latency_rounds: u64, from_cache: bool) {
        let t = self.tenants.entry(tenant).or_default();
        t.served += 1;
        if from_cache {
            t.cache_hits += 1;
        } else {
            t.computed += 1;
        }
        t.max_latency_rounds = t.max_latency_rounds.max(latency_rounds);
        t.total_latency_rounds += latency_rounds;
        self.latencies.push(latency_rounds);
    }

    /// This tenant's stats (zeroed when unknown).
    pub fn get(&self, tenant: u64) -> TenantStats {
        self.tenants.get(&tenant).copied().unwrap_or_default()
    }

    /// Tenants in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &TenantStats)> {
        self.tenants.iter().map(|(t, s)| (*t, s))
    }

    /// Number of tenants seen.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant has been recorded.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The worst per-tenant maximum latency — the fairness headline: with
    /// quotas on, a hot tenant's backlog raises *its own* number, not
    /// everyone else's.
    pub fn worst_latency_rounds(&self) -> u64 {
        self.tenants.values().map(|t| t.max_latency_rounds).max().unwrap_or(0)
    }

    /// Ceil-rank p99 of service latency pooled across all tenants (0 when
    /// nothing served). At small n this is the maximum, never a smaller
    /// rank — see [`quantile_ceil_rank`].
    pub fn p99_latency_rounds(&self) -> u64 {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        quantile_ceil_rank(&sorted, 0.99)
    }

    /// Per-tenant table for reports.
    pub fn render(&self) -> String {
        let mut out = String::from("  tenant      served    hits  computed  mean-lat  max-lat\n");
        for (tenant, t) in self.iter() {
            out.push_str(&format!(
                "  {:<10} {:>7} {:>7} {:>9} {:>9.2} {:>8}\n",
                format!("t{tenant}"),
                t.served,
                t.cache_hits,
                t.computed,
                t.mean_latency_rounds(),
                t.max_latency_rounds
            ));
        }
        out
    }
}

/// A deterministic weighted-round-robin dispatch queue: per-tenant FIFO
/// sub-queues, drained in rounds that interleave tenants so one hot
/// tenant can never occupy more than its quota of any round.
///
/// Scheduling is a pure function of queue state — tenants are visited in
/// ascending id order, one item per tenant per rotation, rotations
/// repeat up to the quota — so every schedule replays bitwise and the
/// soak's eviction/trace determinism can stand on top of it.
#[derive(Debug, Clone)]
pub struct FairQueue<T> {
    queues: BTreeMap<u64, VecDeque<T>>,
    quota: usize,
}

impl<T> FairQueue<T> {
    /// A queue granting each tenant up to `quota` slots per round
    /// (`quota` is clamped to at least 1).
    pub fn new(quota: usize) -> Self {
        Self { queues: BTreeMap::new(), quota: quota.max(1) }
    }

    /// The per-round per-tenant slot quota.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Enqueues `item` at the back of `tenant`'s FIFO.
    pub fn push(&mut self, tenant: u64, item: T) {
        self.queues.entry(tenant).or_default().push_back(item);
    }

    /// Total queued items across tenants.
    pub fn len(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// True when every tenant's queue is drained.
    pub fn is_empty(&self) -> bool {
        self.queues.values().all(VecDeque::is_empty)
    }

    /// Drains the next dispatch round: up to `capacity` items, at most
    /// `quota` per tenant, interleaved one-per-tenant in ascending id
    /// order so the quota cut never biases toward low tenant ids.
    /// Returns `(tenant, item)` pairs in dispatch order.
    pub fn next_round(&mut self, capacity: usize) -> Vec<(u64, T)> {
        let mut round = Vec::new();
        for _rotation in 0..self.quota {
            if round.len() >= capacity {
                break;
            }
            let mut progressed = false;
            let tenants: Vec<u64> = self.queues.keys().copied().collect();
            for tenant in tenants {
                if round.len() >= capacity {
                    break;
                }
                if let Some(q) = self.queues.get_mut(&tenant) {
                    if let Some(item) = q.pop_front() {
                        round.push((tenant, item));
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        self.queues.retain(|_, q| !q.is_empty());
        round
    }
}

/// Flattens a submission-order tenant sequence into fair dispatch order:
/// the order [`FairQueue`] with the given `quota` and unbounded round
/// capacity would serve it. Returns indices into `tenants`. Exposed so
/// fairness is testable as a pure permutation, independent of the soak.
pub fn fair_interleave(tenants: &[u64], quota: usize) -> Vec<usize> {
    let mut q = FairQueue::new(quota);
    for (i, &t) in tenants.iter().enumerate() {
        q.push(t, i);
    }
    let mut order = Vec::with_capacity(tenants.len());
    while !q.is_empty() {
        order.extend(q.next_round(usize::MAX).into_iter().map(|(_, i)| i));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{assert_deterministic, run_seeds, RunContext};
    use crate::sweep::sweep;

    struct Noisy;
    impl Experiment for Noisy {
        fn name(&self) -> &str {
            "noisy"
        }
        fn run(&self, ctx: &mut RunContext) {
            let n = ctx.int("n", 40) as usize;
            let mut rng = ctx.rng("draws");
            let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
            ctx.record("mean", mean);
            ctx.record("n", n as f64);
        }
    }

    fn trails(records: &[RunRecord]) -> Vec<u64> {
        records.iter().map(|r| r.fingerprint()).collect()
    }

    #[test]
    fn run_seeds_matches_sequential_for_every_job_count() {
        let seeds: Vec<u64> = (0..13).collect();
        let params = Params::new().with_int("n", 64);
        let seq = run_seeds(&Noisy, &seeds, &params);
        for jobs in [1, 2, 3, 8, 32] {
            let par = Executor::new(jobs).run_seeds(&Noisy, &seeds, &params);
            assert_eq!(trails(&seq), trails(&par), "jobs={jobs}");
            for (a, b) in seq.iter().zip(par.iter()) {
                assert_eq!(a.trail, b.trail, "jobs={jobs}");
                assert_eq!(a.seed, b.seed, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn sweep_matches_sequential_for_every_job_count() {
        let axes = [Axis::ints("n", &[8, 16, 32]), Axis::floats("unused", &[0.5, 1.5])];
        let base = Params::new();
        let seq = sweep(&Noisy, &base, &axes, 2023);
        for jobs in [1, 2, 7] {
            let par = Executor::new(jobs).sweep(&Noisy, &base, &axes, 2023);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(par.iter()) {
                assert_eq!(a.assignment, b.assignment, "jobs={jobs}");
                assert_eq!(a.record.trail, b.record.trail, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn executor_assert_deterministic_agrees_with_sequential() {
        let params = Params::new().with_int("n", 32);
        let fp_seq = assert_deterministic(&Noisy, 9, &params);
        let fp_par = Executor::new(4).assert_deterministic(&Noisy, 9, &params);
        assert_eq!(fp_seq, fp_par);
    }

    struct NonDet(std::sync::atomic::AtomicU64);
    impl Experiment for NonDet {
        fn name(&self) -> &str {
            "nondet"
        }
        fn run(&self, ctx: &mut RunContext) {
            let c = self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            ctx.record("counter", c as f64);
        }
    }

    #[test]
    #[should_panic(expected = "not deterministic")]
    fn concurrent_nondeterminism_is_caught() {
        let exp = NonDet(std::sync::atomic::AtomicU64::new(0));
        Executor::new(2).assert_deterministic(&exp, 1, &Params::new());
    }

    fn small_registry() -> ExperimentRegistry {
        let mut reg = ExperimentRegistry::new();
        reg.register("A", "x", "noisy a", Params::new().with_int("n", 16), Box::new(Noisy));
        reg.register("B", "y", "noisy b", Params::new().with_int("n", 24), Box::new(Noisy));
        reg.register("C", "z", "noisy c", Params::new().with_int("n", 8), Box::new(Noisy));
        reg
    }

    #[test]
    fn run_all_is_in_id_order_and_job_count_invariant() {
        let reg = small_registry();
        let base = Executor::sequential().run_all(&reg, 7);
        assert_eq!(base.iter().map(|(id, _)| id.as_str()).collect::<Vec<_>>(), vec!["A", "B", "C"]);
        for jobs in [2, 5] {
            let par = Executor::new(jobs).run_all(&reg, 7);
            for ((ida, a), (idb, b)) in base.iter().zip(par.iter()) {
                assert_eq!(ida, idb);
                assert_eq!(a.trail, b.trail, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn verify_all_passes_deterministic_registry() {
        let reg = small_registry();
        for jobs in [1, 4] {
            let report = Executor::new(jobs).verify_all(&reg, 3);
            assert!(report.all_reproduced(), "jobs={jobs}");
            assert!(report.violations().is_empty());
            assert_eq!(report.outcomes.len(), 3);
            let rendered = report.render();
            assert!(rendered.contains("3/3 reproduced"));
            assert!(rendered.contains("REPRODUCED"));
        }
    }

    #[test]
    fn verify_all_flags_nondeterminism_and_exit_is_nonzero_worthy() {
        let mut reg = small_registry();
        reg.register(
            "Z-bad",
            "w",
            "broken",
            Params::new(),
            Box::new(NonDet(std::sync::atomic::AtomicU64::new(0))),
        );
        let report = Executor::new(4).verify_all(&reg, 3);
        assert!(!report.all_reproduced());
        assert_eq!(report.violations(), vec!["Z-bad"]);
        assert!(report.render().contains("MISMATCH"));
    }

    #[test]
    fn verify_all_with_overrides_params() {
        let reg = small_registry();
        let report = Executor::new(2).verify_all_with(&reg, 5, |_, d| d.with_int("n", 4));
        assert!(report.all_reproduced());
    }

    #[test]
    fn report_accounts_time_and_fits_amdahl() {
        let report = ExecReport::from_labelled(
            4,
            [("a".to_string(), 1.0), ("b".to_string(), 1.0), ("c".to_string(), 2.0)],
            2.0,
        );
        assert_eq!(report.total_seconds(), 4.0);
        assert_eq!(report.critical_path_seconds(), 2.0);
        assert!((report.speedup() - 2.0).abs() < 1e-9);
        let f = report.serial_fraction();
        assert!((0.0..=1.0).contains(&f));
        // Perfect scaling at t=3 effective workers would be 3x; measured
        // 2x implies a nonzero serial fraction.
        assert!(f > 0.0);
        // The projection reproduces the measurement at the effective
        // worker count by construction.
        let t = report.jobs.min(report.runs.len());
        assert!((report.projected_speedup(t) - report.speedup()).abs() < 1e-9);
        let rendered = report.render();
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("speedup"));
    }

    #[test]
    fn sequential_report_has_unit_serial_fraction() {
        let report = ExecReport::from_labelled(1, [("a".to_string(), 1.0)], 1.0);
        assert_eq!(report.serial_fraction(), 1.0);
        assert_eq!(report.projected_speedup(8), 1.0);
    }

    #[test]
    fn run_seeds_report_labels_every_seed() {
        let (records, report) =
            Executor::new(2).run_seeds_report(&Noisy, &[3, 1, 4], &Params::new());
        assert_eq!(records.len(), 3);
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.runs[0].label, "seed 3");
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn map_indexed_preserves_order_under_oversubscription() {
        let v = Executor::new(64).map_indexed(5, |i| i * i);
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn map_indexed_stats_reports_worker_load() {
        let (v, sched) = Executor::new(4).map_indexed_stats(40, |i| i + 1);
        assert_eq!(v, (1..=40).collect::<Vec<_>>());
        assert!(sched.workers >= 1 && sched.workers <= 4);
        assert_eq!(sched.items.iter().sum::<usize>(), 40);
    }

    #[test]
    fn report_with_workers_fits_amdahl_from_busy_time() {
        // Two workers, each busy 1.0s, wall 1.0s: S = 2 at t = 2 ⇒ f = 0
        // (perfect scaling), regardless of what the per-run sums say.
        let sched = SchedStats {
            workers: 2,
            chunk: 1,
            busy_seconds: vec![1.0, 1.0],
            chunks_claimed: vec![2, 2],
            items: vec![2, 2],
        };
        let report =
            ExecReport::from_labelled(2, [("a".to_string(), 0.5), ("b".to_string(), 0.5)], 1.0)
                .with_workers(&sched);
        assert!((report.total_busy_seconds() - 2.0).abs() < 1e-12);
        assert!(report.serial_fraction() < 1e-9, "balanced busy time ⇒ zero serial fraction");
        assert!((report.utilization() - 1.0).abs() < 1e-9);
        assert!((report.imbalance_ratio() - 1.0).abs() < 1e-9);

        // One hot worker, one idle: S = 1.1/1.0 at t = 2 ⇒ large f.
        let skew = SchedStats {
            workers: 2,
            chunk: 1,
            busy_seconds: vec![1.0, 0.1],
            chunks_claimed: vec![3, 1],
            items: vec![3, 1],
        };
        let hot = ExecReport::from_labelled(2, [("a".to_string(), 1.1)], 1.0).with_workers(&skew);
        assert!(hot.serial_fraction() > 0.5, "imbalance must surface as serial fraction");
        assert!((hot.imbalance_ratio() - 10.0).abs() < 1e-9);
        let rendered = hot.render();
        assert!(rendered.contains("worker 0"));
        assert!(rendered.contains("utilization"));
        assert!(rendered.contains("from per-worker busy time"));
    }

    #[test]
    fn single_worker_stats_mean_unit_serial_fraction() {
        let sched = SchedStats {
            workers: 1,
            chunk: 4,
            busy_seconds: vec![1.0],
            chunks_claimed: vec![1],
            items: vec![4],
        };
        let report =
            ExecReport::from_labelled(1, [("a".to_string(), 1.0)], 1.0).with_workers(&sched);
        assert_eq!(report.serial_fraction(), 1.0);
    }

    fn cache_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("treu-exec-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn run_all_cached_is_bitwise_identical_and_free_on_rerun() {
        use crate::cache::RunCache;
        let reg = small_registry();
        let dir = cache_dir("runall");
        let cache = RunCache::open(&dir).unwrap();
        let exec = Executor::new(2);
        let plain = exec.run_all(&reg, 7);
        let (cold, cold_report) = exec.run_all_report_cached(&reg, 7, Some(&cache));
        assert_eq!(cold_report.cached_runs, 0);
        for ((ida, a), (idb, b)) in plain.iter().zip(cold.iter()) {
            assert_eq!(ida, idb);
            assert_eq!(a.trail, b.trail, "cold cached batch must match the uncached batch");
        }
        let (warm, warm_report) = exec.run_all_report_cached(&reg, 7, Some(&cache));
        assert_eq!(warm_report.cached_runs, reg.len(), "second pass is fully cached");
        for ((ida, a), (idb, b)) in plain.iter().zip(warm.iter()) {
            assert_eq!(ida, idb);
            assert_eq!(a.trail, b.trail, "cache replay must round-trip trails bitwise");
        }
        assert!(warm_report.render().contains("served from the run cache"));
        // Regression: an all-hit batch has zero-busy workers — that must
        // read as unit imbalance and an "all cached" load line, not an
        // astronomically large max/min ratio.
        assert_eq!(warm_report.imbalance_ratio(), 1.0);
        assert!(warm_report.utilization() <= 1.0);
        assert_eq!(warm_report.counters.cache_hits, reg.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_cached_recomputes_nothing_on_a_warm_cache() {
        use crate::cache::RunCache;
        let reg = small_registry();
        let dir = cache_dir("verify");
        let exec = Executor::new(4);
        let cold_cache = RunCache::open(&dir).unwrap();
        let cold = exec.verify_all_cached(&reg, 3, Some(&cold_cache));
        assert!(cold.all_reproduced());
        assert_eq!(cold.recomputed, reg.len());
        assert_eq!(cold.cached_count(), 0);
        assert_eq!(cold_cache.stats().misses, reg.len() as u64);

        let warm_cache = RunCache::open(&dir).unwrap();
        let warm = exec.verify_all_cached(&reg, 3, Some(&warm_cache));
        assert!(warm.all_reproduced());
        assert_eq!(warm.recomputed, 0, "warm cache must recompute zero experiments");
        assert_eq!(warm.cached_count(), reg.len());
        assert_eq!(warm_cache.stats().hits, reg.len() as u64, "hit count equals experiment count");
        // Fingerprints replayed from cache equal the cold pass bitwise.
        for (a, b) in cold.outcomes.iter().zip(warm.outcomes.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.fingerprint, b.fingerprint);
        }
        assert!(warm.render().contains("[cached]"));
        assert!(warm.render().contains("from cache, 0 recomputed"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_does_not_cache_nondeterministic_runs() {
        use crate::cache::RunCache;
        let mut reg = small_registry();
        reg.register(
            "Z-bad",
            "w",
            "broken",
            Params::new(),
            Box::new(NonDet(std::sync::atomic::AtomicU64::new(0))),
        );
        let dir = cache_dir("nondet");
        let cache = RunCache::open(&dir).unwrap();
        let first = Executor::new(2).verify_all_cached(&reg, 3, Some(&cache));
        assert_eq!(first.violations(), vec!["Z-bad"]);
        // A second pass must re-run (and re-flag) the broken id: failures
        // are never served from the cache.
        let cache2 = RunCache::open(&dir).unwrap();
        let second = Executor::new(2).verify_all_cached(&reg, 3, Some(&cache2));
        assert_eq!(second.violations(), vec!["Z-bad"]);
        assert_eq!(second.recomputed, 1);
        assert_eq!(second.cached_count(), reg.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_report_stats_are_finite_and_sane() {
        // Zero successful runs (everything quarantined, or nothing ran):
        // the accounting must stay finite and neutral, not NaN or 0x.
        let report = ExecReport::from_labelled(4, std::iter::empty(), 0.0).with_failed(3);
        assert_eq!(report.speedup(), 1.0);
        assert_eq!(report.serial_fraction(), 1.0);
        assert_eq!(report.imbalance_ratio(), 1.0);
        assert_eq!(report.utilization(), 0.0);
        assert!(report.speedup().is_finite());
        assert!(report.projected_speedup(8).is_finite());
        let rendered = report.render();
        assert!(rendered.contains("quarantined: 3 run(s)"));
        assert!(!rendered.contains("NaN") && !rendered.contains("inf"));

        // An idle worker next to a busy one must not blow the ratio up
        // to 1e12 — clamped finite.
        let skew = SchedStats {
            workers: 2,
            chunk: 1,
            busy_seconds: vec![1.0, 0.0],
            chunks_claimed: vec![1, 0],
            items: vec![1, 0],
        };
        let lop = ExecReport::from_labelled(2, [("a".to_string(), 1.0)], 1.0).with_workers(&skew);
        assert!(lop.imbalance_ratio().is_finite());
        assert!(lop.serial_fraction().is_finite());
    }

    #[test]
    fn zero_busy_workers_report_unit_imbalance_not_huge_ratios() {
        // Regression: an all-cache-hit batch leaves every worker with ~0
        // busy seconds. The old `min.max(1e-9)` floor reported a ~1e9
        // "imbalance" for the busy/idle pair below instead of treating
        // near-zero busy time as no-signal.
        let idle = SchedStats {
            workers: 2,
            chunk: 1,
            busy_seconds: vec![0.0, 0.0],
            chunks_claimed: vec![0, 0],
            items: vec![0, 0],
        };
        let all_idle = ExecReport::from_labelled(2, std::iter::empty(), 0.01).with_workers(&idle);
        assert_eq!(all_idle.imbalance_ratio(), 1.0);
        let near = SchedStats {
            workers: 2,
            chunk: 1,
            busy_seconds: vec![1.0, 1e-12],
            chunks_claimed: vec![1, 1],
            items: vec![1, 1],
        };
        let lop = ExecReport::from_labelled(2, [("a".to_string(), 1.0)], 1.0).with_workers(&near);
        assert_eq!(lop.imbalance_ratio(), 1.0, "sub-nanosecond busy time is noise, not load");
    }

    #[test]
    fn fully_cached_batch_renders_all_cached_and_clamps_utilization() {
        // A warm-cache batch's RunTimings carry the original compute
        // costs (here 5s against a 1ms wall): utilization must not report
        // >100%, and the load line must say "all cached" instead of
        // manufacturing a percentage out of replay time.
        let sched = SchedStats {
            workers: 2,
            chunk: 1,
            busy_seconds: vec![0.0, 0.0],
            chunks_claimed: vec![0, 0],
            items: vec![0, 0],
        };
        let report =
            ExecReport::from_labelled(2, [("a".to_string(), 2.0), ("b".to_string(), 3.0)], 0.001)
                .with_workers(&sched)
                .with_cached(2);
        assert!(report.all_cached());
        assert_eq!(report.utilization(), 0.0);
        assert!(report.utilization() <= 1.0);
        let rendered = report.render();
        assert!(rendered.contains("— (all cached)"), "{rendered}");
        assert!(!rendered.contains("utilization 1"), "{rendered}");
    }

    struct AlwaysPanics;
    impl Experiment for AlwaysPanics {
        fn name(&self) -> &str {
            "always-panics"
        }
        fn run(&self, _ctx: &mut RunContext) {
            panic!("permanent failure in the experiment body");
        }
    }

    struct Slow;
    impl Experiment for Slow {
        fn name(&self) -> &str {
            "slow"
        }
        fn run(&self, ctx: &mut RunContext) {
            std::thread::sleep(std::time::Duration::from_millis(300));
            ctx.record("done", 1.0);
        }
    }

    #[test]
    fn supervised_run_retries_transient_faults_to_success() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::transient(11, 1.0);
        let budget = plan.max_transient_attempts();
        assert!(budget >= 1);
        let policy = SupervisePolicy::new(budget);
        let out = run_supervised(&Noisy, "A", 7, &Params::new(), &policy, Some(&plan), 0);
        let clean = run_supervised(&Noisy, "A", 7, &Params::new(), &policy, None, 0);
        match (&out, &clean) {
            (
                RunOutcome::Ok { record: faulted, attempts },
                RunOutcome::Ok { record: baseline, .. },
            ) => {
                assert_eq!(
                    faulted.trail, baseline.trail,
                    "transient faults must not perturb the converged trail"
                );
                let expected = plan.first_clean_attempt("A", 7).unwrap() + 1;
                assert_eq!(*attempts, expected);
            }
            _ => panic!("both runs must converge within the advertised budget"),
        }
    }

    #[test]
    fn supervised_run_quarantines_permanent_panics() {
        let policy = SupervisePolicy::new(2);
        let out = run_supervised(&AlwaysPanics, "P", 1, &Params::new(), &policy, None, 0);
        match out {
            RunOutcome::Failed(f) => {
                assert_eq!(f.taxonomy, FailureKind::Panicked);
                assert_eq!(f.attempts, 3, "retries + 1 attempts consumed");
                assert!(f.last_error.contains("permanent failure"));
            }
            RunOutcome::Ok { .. } => panic!("a permanent panic cannot succeed"),
        }
    }

    #[test]
    fn supervised_run_enforces_the_deadline() {
        let policy = SupervisePolicy::new(0).with_deadline_secs(0.02);
        let out = run_supervised(&Slow, "S", 1, &Params::new(), &policy, None, 0);
        match out {
            RunOutcome::Failed(f) => {
                assert_eq!(f.taxonomy, FailureKind::TimedOut);
                assert!(f.last_error.contains("deadline"));
            }
            RunOutcome::Ok { .. } => panic!("a 300ms run cannot beat a 20ms deadline"),
        }
        // A generous deadline lets the same run through untouched.
        let ok = run_supervised(
            &Slow,
            "S",
            1,
            &Params::new(),
            &SupervisePolicy::new(0).with_deadline_secs(10.0),
            None,
            0,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn verify_quarantines_the_broken_id_and_completes_the_rest() {
        let mut reg = small_registry();
        reg.register("Z-panic", "w", "broken", Params::new(), Box::new(AlwaysPanics));
        let policy = SupervisePolicy::new(1);
        for jobs in [1, 4] {
            let report = Executor::new(jobs).verify_all_supervised_with(
                &reg,
                3,
                None,
                &policy,
                None,
                |_, d| d,
            );
            assert_eq!(report.outcomes.len(), 4, "jobs={jobs}: the batch completes");
            let ok: Vec<_> =
                report.outcomes.iter().filter(|o| o.reproduced).map(|o| o.id.as_str()).collect();
            assert_eq!(ok, vec!["A", "B", "C"], "jobs={jobs}");
            let q = report.quarantined();
            assert_eq!(q.len(), 1, "jobs={jobs}");
            assert_eq!(q[0].id, "Z-panic");
            let f = q[0].failure.as_ref().unwrap();
            assert_eq!(f.taxonomy, FailureKind::Panicked);
            assert_eq!(f.attempts, 2);
            let rendered = report.render();
            assert!(rendered.contains("QUARANTINED(Panicked)"), "jobs={jobs}:\n{rendered}");
            assert!(rendered.contains("3/4 reproduced"), "jobs={jobs}");
            assert!(rendered.contains("1 quarantined: Z-panic"), "jobs={jobs}");
            // Gate decision is the policy's, not the report's.
            assert!(report.exceeds(DenyPolicy::Error));
            assert!(report.exceeds(DenyPolicy::Warn));
            assert!(!report.exceeds(DenyPolicy::None));
        }
    }

    #[test]
    fn verify_tags_retried_runs_and_warn_policy_gates_them() {
        use crate::fault::FaultPlan;
        let reg = small_registry();
        let plan = FaultPlan::transient(5, 1.0);
        let policy = SupervisePolicy::new(plan.max_transient_attempts());
        let faulted = Executor::new(2).verify_all_supervised_with(
            &reg,
            3,
            None,
            &policy,
            Some(&plan),
            |_, d| d,
        );
        assert!(faulted.all_reproduced(), "transient faults within budget must reproduce");
        assert!(!faulted.retried().is_empty(), "rate-1.0 transient plan must force retries");
        let clean = Executor::new(2).verify_all(&reg, 3);
        for (a, b) in faulted.outcomes.iter().zip(clean.outcomes.iter()) {
            assert_eq!(a.fingerprint, b.fingerprint, "{}: chaos must converge to clean", a.id);
        }
        assert!(faulted.exceeds(DenyPolicy::Warn), "retries are warn-worthy");
        assert!(!faulted.exceeds(DenyPolicy::Error), "but not errors");
        assert!(faulted.render().contains("attempts]"));
    }

    #[test]
    fn run_all_supervised_reports_failures_without_aborting() {
        let mut reg = small_registry();
        reg.register("Z-panic", "w", "broken", Params::new(), Box::new(AlwaysPanics));
        let (pairs, report) =
            Executor::new(2).run_all_supervised(&reg, 7, &SupervisePolicy::new(0), None);
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs.iter().filter(|(_, o)| o.is_ok()).count(), 3);
        assert_eq!(report.failed_runs, 1);
        assert_eq!(report.runs.len(), 3, "quarantined runs contribute no timing");
        let base = Executor::sequential().run_all(&small_registry(), 7);
        for ((id, out), (bid, brec)) in pairs.iter().filter(|(_, o)| o.is_ok()).zip(base.iter()) {
            assert_eq!(id, bid);
            assert_eq!(out.record().unwrap().trail, brec.trail);
        }
    }

    #[test]
    fn deny_policy_parses_and_names_round_trip() {
        for p in [DenyPolicy::None, DenyPolicy::Warn, DenyPolicy::Error] {
            assert_eq!(DenyPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(DenyPolicy::parse("loud"), None);
    }

    #[test]
    fn fair_queue_interleaves_and_caps_a_hot_tenant_per_round() {
        let mut q = FairQueue::new(2);
        // Tenant 1 floods; tenants 2 and 3 trickle.
        for i in 0..8 {
            q.push(1, format!("hot-{i}"));
        }
        q.push(2, "a".to_string());
        q.push(3, "b".to_string());
        let round = q.next_round(16);
        // Rotation 1 visits 1,2,3; rotation 2 has only tenant 1 left.
        let tenants: Vec<u64> = round.iter().map(|(t, _)| *t).collect();
        assert_eq!(tenants, vec![1, 2, 3, 1], "one per tenant per rotation, quota 2");
        assert_eq!(round[0].1, "hot-0");
        assert_eq!(round[3].1, "hot-1", "per-tenant FIFO order is preserved");
        assert_eq!(tenants.iter().filter(|&&t| t == 1).count(), 2, "quota caps the flood");
        assert_eq!(q.len(), 6, "the rest of the flood waits its turn");
        // Capacity cuts mid-rotation without losing items.
        let cut = q.next_round(1);
        assert_eq!(cut.len(), 1);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn fair_queue_rounds_replay_bitwise() {
        let build = || {
            let mut q = FairQueue::new(3);
            for i in 0..40u64 {
                q.push(i % 5, i);
            }
            q
        };
        let drain = |mut q: FairQueue<u64>| {
            let mut order = Vec::new();
            while !q.is_empty() {
                order.extend(q.next_round(7));
            }
            order
        };
        assert_eq!(drain(build()), drain(build()), "scheduling is pure queue state");
    }

    #[test]
    fn fair_interleave_is_a_permutation_that_bounds_starvation() {
        // Submission order: 12 from tenant 9, then one each from 1 and 2.
        let mut tenants = vec![9u64; 12];
        tenants.extend([1, 2]);
        let order = fair_interleave(&tenants, 1);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..tenants.len()).collect::<Vec<_>>(), "permutation");
        // With quota 1 the light tenants are served in the very first
        // rotation, despite arriving last.
        assert!(order[..3].contains(&12), "tenant 1's lone item is up front: {order:?}");
        assert!(order[..3].contains(&13), "tenant 2's lone item is up front: {order:?}");
        // Degenerate inputs stay total.
        assert!(fair_interleave(&[], 4).is_empty());
        assert_eq!(fair_interleave(&[5], 0).len(), 1, "quota clamps to 1");
    }

    #[test]
    fn tenant_ledger_accounts_and_renders_canonically() {
        let mut ledger = TenantLedger::new();
        for t in [3u64, 1, 1, 2] {
            ledger.note_submitted(t);
        }
        ledger.note_served(1, 1, true);
        ledger.note_served(1, 5, false);
        ledger.note_served(2, 2, false);
        ledger.note_served(3, 1, true);
        assert_eq!(ledger.len(), 3);
        let t1 = ledger.get(1);
        assert_eq!((t1.submitted, t1.served, t1.cache_hits, t1.computed), (2, 2, 1, 1));
        assert_eq!(t1.max_latency_rounds, 5);
        assert_eq!(t1.mean_latency_rounds(), 3.0);
        assert_eq!(ledger.worst_latency_rounds(), 5);
        let ids: Vec<u64> = ledger.iter().map(|(t, _)| t).collect();
        assert_eq!(ids, vec![1, 2, 3], "iteration is ascending tenant id");
        let table = ledger.render();
        assert!(table.contains("t1"), "{table}");
        assert!(table.contains("max-lat"), "{table}");
        assert_eq!(ledger.get(99), TenantStats::default(), "unknown tenants read as zero");
    }

    #[test]
    fn quantile_ceil_rank_never_undershoots_small_samples() {
        assert_eq!(quantile_ceil_rank(&[], 0.99), 0);
        assert_eq!(quantile_ceil_rank(&[7], 0.99), 7);

        // n = 3: ceil rank is ceil(2.97) = 3 → the maximum. The truncating
        // form (3 * 99) / 100 = 2 would index the *median* — the exact
        // off-by-one this function exists to rule out.
        let three = [1u64, 2, 3];
        assert_eq!(quantile_ceil_rank(&three, 0.99), 3);
        assert_eq!((three.len() * 99) / 100, 2, "the truncating rank lands on the median");

        // n = 99: ceil(98.01) = 99 → still the maximum; truncation gives 98.
        let n99: Vec<u64> = (1..=99).collect();
        assert_eq!(quantile_ceil_rank(&n99, 0.99), 99);
        assert_eq!((n99.len() * 99) / 100, 98);

        // n = 100: ceil(99.0) = 99 → first index where the two agree.
        let n100: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_ceil_rank(&n100, 0.99), 99);
        assert_eq!(quantile_ceil_rank(&n100, 0.50), 50);
        assert_eq!(quantile_ceil_rank(&n100, 1.0), 100);
        assert_eq!(quantile_ceil_rank(&n100, 0.0), 1, "rank clamps to at least 1");
    }

    #[test]
    fn tenant_ledger_p99_is_ceil_rank_over_pooled_latencies() {
        let mut ledger = TenantLedger::new();
        assert_eq!(ledger.p99_latency_rounds(), 0, "empty ledger reads as zero");
        // Three served submissions across two tenants: p99 must be the
        // pooled maximum (9), not the median a truncating rank would pick.
        ledger.note_served(1, 2, true);
        ledger.note_served(2, 9, false);
        ledger.note_served(1, 4, false);
        assert_eq!(ledger.p99_latency_rounds(), 9);
        assert_eq!(ledger.worst_latency_rounds(), 9);
    }

    #[test]
    fn await_deadline_measures_from_the_logical_attempt_start() {
        use std::sync::mpsc::channel;

        // A pre-aged epoch: the budget is already spent, so the watchdog
        // must report expiry immediately instead of re-arming with the
        // full deadline (the drift bug this helper replaces). No sleeps —
        // the test is deterministic and immune to slow machines.
        let (_tx, rx) = channel::<()>();
        let limit = Duration::from_millis(50);
        // treu-lint: allow(wall-clock, reason = "test exercises the real deadline clock")
        let aged = Instant::now().checked_sub(Duration::from_secs(1)).expect("clock is past 1s");
        // treu-lint: allow(wall-clock, reason = "test exercises the real deadline clock")
        let before = Instant::now();
        assert_eq!(await_deadline(&rx, aged, limit), Err(false), "budget already exhausted");
        assert!(
            before.elapsed() < Duration::from_millis(40),
            "an exhausted budget must not re-arm the full deadline"
        );

        // Disconnection is surfaced distinctly from expiry.
        let (tx2, rx2) = channel::<u32>();
        drop(tx2);
        // treu-lint: allow(wall-clock, reason = "test exercises the real deadline clock")
        assert_eq!(await_deadline(&rx2, Instant::now(), limit), Err(true));

        // A value beats the deadline.
        let (tx3, rx3) = channel::<u32>();
        tx3.send(7).unwrap();
        // treu-lint: allow(wall-clock, reason = "test exercises the real deadline clock")
        assert_eq!(await_deadline(&rx3, Instant::now(), limit), Ok(7));
    }
}
