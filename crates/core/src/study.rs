//! Human-centered-computing study substrate (paper §2.1).
//!
//! The Artifact Evaluation project had students pilot *study materials* —
//! diary-study questions and semi-structured interview protocols — and
//! revise them based on pilot feedback. This module models those
//! instruments and the revision loop: materials are versioned, pilot
//! sessions attach clarity/comprehensiveness ratings and comments to
//! individual items, and a revision pass produces the next version with a
//! change log. The paper's own outcome ("students substantially revised the
//! materials, improving their validity and utility") becomes a checkable
//! property: validity scores are non-decreasing across revisions applied
//! from pilot feedback.

/// An individual prompt in a study instrument.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Stable item identifier.
    pub id: String,
    /// The text shown to participants.
    pub prompt: String,
}

/// The kind of instrument, mirroring the §2.1 materials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Daily diary-study questionnaire (piloted in Qualtrics in the paper).
    DiaryStudy,
    /// Semi-structured interview protocol (conducted over Zoom).
    InterviewProtocol,
}

/// A versioned study instrument.
#[derive(Debug, Clone, PartialEq)]
pub struct Instrument {
    /// Instrument kind.
    pub kind: InstrumentKind,
    /// Version number, starting at 1.
    pub version: u32,
    /// Items, in presentation order.
    pub items: Vec<Item>,
    /// Change log lines accumulated across revisions.
    pub changelog: Vec<String>,
}

impl Instrument {
    /// Creates version 1 of an instrument from `(id, prompt)` pairs.
    pub fn new(kind: InstrumentKind, items: &[(&str, &str)]) -> Self {
        Self {
            kind,
            version: 1,
            items: items
                .iter()
                .map(|(id, p)| Item { id: id.to_string(), prompt: p.to_string() })
                .collect(),
            changelog: Vec::new(),
        }
    }

    /// Looks up an item by id.
    pub fn item(&self, id: &str) -> Option<&Item> {
        self.items.iter().find(|i| i.id == id)
    }
}

/// Per-item feedback from one pilot participant.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemFeedback {
    /// Item id the feedback refers to.
    pub item_id: String,
    /// Clarity rating 1–5.
    pub clarity: u8,
    /// Comprehensiveness rating 1–5 (does it capture what it should?).
    pub comprehensiveness: u8,
    /// Optional rewording suggestion.
    pub suggestion: Option<String>,
}

/// One pilot session: a participant works through the instrument and
/// leaves per-item feedback. The paper ran four such sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct PilotSession {
    /// Pilot participant label (anonymized).
    pub participant: String,
    /// Instrument version piloted.
    pub instrument_version: u32,
    /// Collected feedback.
    pub feedback: Vec<ItemFeedback>,
}

/// Aggregated validity score of an instrument given pilot feedback:
/// mean of clarity and comprehensiveness over all feedback items, on 1–5.
///
/// Returns `None` when there is no feedback to aggregate.
pub fn validity_score(sessions: &[PilotSession]) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for s in sessions {
        for f in &s.feedback {
            sum += f64::from(f.clarity) + f64::from(f.comprehensiveness);
            n += 2;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Applies pilot feedback to produce the next instrument version.
///
/// Revision policy (a distillation of what the REU students did):
/// * any item whose *mean clarity* across sessions is below `threshold`
///   and that has at least one suggestion is reworded to the first
///   suggestion offered;
/// * items below threshold with no suggestion are flagged in the changelog
///   for manual attention but kept verbatim;
/// * all other items pass through unchanged.
pub fn revise(instrument: &Instrument, sessions: &[PilotSession], threshold: f64) -> Instrument {
    let mut next = instrument.clone();
    next.version += 1;
    for item in &mut next.items {
        let mut ratings = Vec::new();
        let mut suggestion = None;
        for s in sessions {
            if s.instrument_version != instrument.version {
                continue;
            }
            for f in &s.feedback {
                if f.item_id == item.id {
                    ratings.push(f64::from(f.clarity));
                    if suggestion.is_none() {
                        suggestion = f.suggestion.clone();
                    }
                }
            }
        }
        if ratings.is_empty() {
            continue;
        }
        let mean = ratings.iter().sum::<f64>() / ratings.len() as f64;
        if mean < threshold {
            match suggestion {
                Some(s) => {
                    next.changelog.push(format!(
                        "v{}: reworded '{}' (mean clarity {mean:.1})",
                        next.version, item.id
                    ));
                    item.prompt = s;
                }
                None => next.changelog.push(format!(
                    "v{}: '{}' flagged (mean clarity {mean:.1}), no suggestion",
                    next.version, item.id
                )),
            }
        }
    }
    next
}

/// The default TREU diary-study instrument, transcribed from the study
/// design the §2.1 students piloted: daily prompts about artifact-review
/// activity and obstacles.
pub fn default_diary_study() -> Instrument {
    Instrument::new(
        InstrumentKind::DiaryStudy,
        &[
            ("d1", "Which artifact did you work on today, and for how long?"),
            ("d2", "What were you trying to reproduce or verify?"),
            ("d3", "What obstacles did you encounter (missing docs, broken deps, hardware)?"),
            ("d4", "Did you contact the authors or other reviewers? What happened?"),
            ("d5", "How confident are you that the artifact supports its claims (1-5)?"),
        ],
    )
}

/// The default TREU interview protocol: semi-structured questions on how
/// reviewers evaluate artifacts and the sociotechnical factors involved.
pub fn default_interview_protocol() -> Instrument {
    Instrument::new(
        InstrumentKind::InterviewProtocol,
        &[
            ("q1", "Walk me through the last artifact you reviewed."),
            ("q2", "What does 'reproducible' mean to you in practice?"),
            ("q3", "How do you weigh code quality versus documentation quality?"),
            ("q4", "What rewards or costs shape whether you volunteer to review?"),
            ("q5", "When an artifact fails, how do you decide between 'broken' and 'I am misusing it'?"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pilot(version: u32, item: &str, clarity: u8, suggestion: Option<&str>) -> PilotSession {
        PilotSession {
            participant: "p".into(),
            instrument_version: version,
            feedback: vec![ItemFeedback {
                item_id: item.into(),
                clarity,
                comprehensiveness: 4,
                suggestion: suggestion.map(str::to_string),
            }],
        }
    }

    #[test]
    fn default_instruments_have_items() {
        assert_eq!(default_diary_study().items.len(), 5);
        assert_eq!(default_interview_protocol().items.len(), 5);
        assert!(default_diary_study().item("d3").is_some());
    }

    #[test]
    fn low_clarity_item_with_suggestion_is_reworded() {
        let v1 = default_diary_study();
        let sessions = vec![pilot(1, "d2", 1, Some("What claim were you testing today?"))];
        let v2 = revise(&v1, &sessions, 3.0);
        assert_eq!(v2.version, 2);
        assert_eq!(v2.item("d2").unwrap().prompt, "What claim were you testing today?");
        assert_eq!(v2.changelog.len(), 1);
        assert!(v2.changelog[0].contains("reworded 'd2'"));
    }

    #[test]
    fn low_clarity_without_suggestion_is_flagged_not_changed() {
        let v1 = default_diary_study();
        let original = v1.item("d4").unwrap().prompt.clone();
        let v2 = revise(&v1, &[pilot(1, "d4", 2, None)], 3.0);
        assert_eq!(v2.item("d4").unwrap().prompt, original);
        assert!(v2.changelog[0].contains("flagged"));
    }

    #[test]
    fn clear_items_pass_through() {
        let v1 = default_diary_study();
        let v2 = revise(&v1, &[pilot(1, "d1", 5, Some("ignored"))], 3.0);
        assert_eq!(v2.item("d1").unwrap().prompt, v1.item("d1").unwrap().prompt);
        assert!(v2.changelog.is_empty());
    }

    #[test]
    fn feedback_for_other_versions_is_ignored() {
        let v1 = default_diary_study();
        let v2 = revise(&v1, &[pilot(99, "d1", 1, Some("wrong version"))], 3.0);
        assert_eq!(v2.item("d1").unwrap().prompt, v1.item("d1").unwrap().prompt);
    }

    #[test]
    fn validity_improves_after_revision_from_feedback() {
        // Simulate the paper's four pilot sessions: v1 gets poor clarity on
        // two items; after revision, reworded items pilot better.
        let v1 = default_diary_study();
        let v1_sessions: Vec<PilotSession> = (0..4)
            .map(|i| PilotSession {
                participant: format!("p{i}"),
                instrument_version: 1,
                feedback: vec![
                    ItemFeedback {
                        item_id: "d2".into(),
                        clarity: 2,
                        comprehensiveness: 3,
                        suggestion: Some("What claim were you testing?".into()),
                    },
                    ItemFeedback {
                        item_id: "d3".into(),
                        clarity: 2,
                        comprehensiveness: 3,
                        suggestion: Some("List every blocker you hit.".into()),
                    },
                ],
            })
            .collect();
        let before = validity_score(&v1_sessions).unwrap();
        let v2 = revise(&v1, &v1_sessions, 3.0);
        let v2_sessions: Vec<PilotSession> = (0..4)
            .map(|i| PilotSession {
                participant: format!("p{i}"),
                instrument_version: 2,
                feedback: vec![
                    ItemFeedback {
                        item_id: "d2".into(),
                        clarity: 4,
                        comprehensiveness: 4,
                        suggestion: None,
                    },
                    ItemFeedback {
                        item_id: "d3".into(),
                        clarity: 5,
                        comprehensiveness: 4,
                        suggestion: None,
                    },
                ],
            })
            .collect();
        let after = validity_score(&v2_sessions).unwrap();
        assert!(after > before, "validity must improve: {before} -> {after}");
        assert_eq!(v2.changelog.len(), 2);
    }

    #[test]
    fn validity_none_without_feedback() {
        assert_eq!(validity_score(&[]), None);
    }
}
