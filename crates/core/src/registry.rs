//! The per-experiment index: ids → runnable experiments.
//!
//! DESIGN.md requires every table and figure in the paper to map to a
//! module and a regenerating target. [`ExperimentRegistry`] is the runtime
//! form of that index: crates register their experiments under stable ids
//! (`"T1"`, `"E2.10"`, ...) and callers can enumerate or run them by id.
//! The registry is also how the umbrella crate's examples expose "run
//! everything the paper reports" as a single loop.

use crate::exec::{Executor, VerifyReport};
use crate::experiment::{run_once, Experiment, Params, RunRecord};
use std::collections::BTreeMap;

/// A registered experiment: the paper location it reproduces, a
/// description, default parameters, and the boxed runner.
pub struct Entry {
    /// Paper location (e.g. `"Table 1"`, `"Section 2.10"`).
    pub location: String,
    /// One-line description of what is reproduced.
    pub description: String,
    /// Default parameters for a representative run.
    pub defaults: Params,
    runner: Box<dyn Experiment + Send + Sync>,
}

impl Entry {
    /// The underlying experiment's name.
    pub fn name(&self) -> &str {
        self.runner.name()
    }

    /// The boxed experiment itself — what the supervised executor wraps
    /// in adapters ([`crate::fault::FaultyExperiment`]) before running.
    pub fn runner(&self) -> &(dyn Experiment + Send + Sync) {
        self.runner.as_ref()
    }
}

/// Registry of experiments keyed by stable id.
#[derive(Default)]
pub struct ExperimentRegistry {
    entries: BTreeMap<String, Entry>,
}

impl ExperimentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an experiment under `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is already taken — duplicate ids would make the
    /// index ambiguous, which defeats its purpose.
    pub fn register(
        &mut self,
        id: &str,
        location: &str,
        description: &str,
        defaults: Params,
        runner: Box<dyn Experiment + Send + Sync>,
    ) {
        let prev = self.entries.insert(
            id.to_string(),
            Entry {
                location: location.to_string(),
                description: description.to_string(),
                defaults,
                runner,
            },
        );
        assert!(prev.is_none(), "duplicate experiment id '{id}'");
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(id, entry)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Entry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Looks up an entry.
    pub fn get(&self, id: &str) -> Option<&Entry> {
        self.entries.get(id)
    }

    /// Runs the experiment registered under `id` with its default
    /// parameters and the given seed.
    ///
    /// Returns `None` for unknown ids.
    pub fn run(&self, id: &str, seed: u64) -> Option<RunRecord> {
        let e = self.entries.get(id)?;
        Some(run_once(e.runner.as_ref(), seed, e.defaults.clone()))
    }

    /// Runs the experiment under `id` with explicit parameters.
    pub fn run_with(&self, id: &str, seed: u64, params: Params) -> Option<RunRecord> {
        let e = self.entries.get(id)?;
        Some(run_once(e.runner.as_ref(), seed, params))
    }

    /// Runs every registered experiment at its defaults through `exec`,
    /// returning `(id, record)` pairs in id order. Bitwise-identical for
    /// every executor job count (see [`crate::exec`]).
    pub fn run_all(&self, exec: &Executor, seed: u64) -> Vec<(String, RunRecord)> {
        exec.run_all(self, seed)
    }

    /// Verifies every registered experiment through `exec`: each id runs
    /// twice concurrently and the trails are cross-checked.
    pub fn verify_all(&self, exec: &Executor, seed: u64) -> VerifyReport {
        exec.verify_all(self, seed)
    }

    /// Renders the index as a plain-text table (id, location, description).
    pub fn render_index(&self) -> String {
        let mut out = String::from("id        location        description\n");
        for (id, e) in self.iter() {
            out.push_str(&format!("{:<9} {:<15} {}\n", id, e.location, e.description));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::RunContext;

    struct Dummy(&'static str);
    impl Experiment for Dummy {
        fn name(&self) -> &str {
            self.0
        }
        fn run(&self, ctx: &mut RunContext) {
            let n = ctx.int("n", 1);
            ctx.record("n_echo", n as f64);
        }
    }

    fn registry() -> ExperimentRegistry {
        let mut r = ExperimentRegistry::new();
        r.register(
            "T1",
            "Table 1",
            "goal table",
            Params::new().with_int("n", 9),
            Box::new(Dummy("t1")),
        );
        r.register("E2.2", "Section 2.2", "particle filter", Params::new(), Box::new(Dummy("pf")));
        r
    }

    #[test]
    fn register_and_run() {
        let r = registry();
        assert_eq!(r.len(), 2);
        let rec = r.run("T1", 5).unwrap();
        assert_eq!(rec.metric("n_echo"), Some(9.0));
        assert!(r.run("missing", 5).is_none());
    }

    #[test]
    fn run_with_overrides_defaults() {
        let r = registry();
        let rec = r.run_with("T1", 5, Params::new().with_int("n", 42)).unwrap();
        assert_eq!(rec.metric("n_echo"), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "duplicate experiment id")]
    fn duplicate_id_panics() {
        let mut r = registry();
        r.register("T1", "x", "y", Params::new(), Box::new(Dummy("dup")));
    }

    #[test]
    fn iteration_is_id_ordered() {
        let r = registry();
        let ids: Vec<&str> = r.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec!["E2.2", "T1"]);
    }

    #[test]
    fn index_render_lists_everything() {
        let s = registry().render_index();
        assert!(s.contains("T1"));
        assert!(s.contains("particle filter"));
    }
}
