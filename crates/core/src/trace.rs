//! Deterministic run-trace observability: spans, counters, JSONL events.
//!
//! Reproducing a run bitwise says *that* it happened the same way twice;
//! it does not say *what happened when* — which attempt a transient fault
//! consumed, when a cache entry self-healed, why a run was quarantined.
//! The practical-reproducibility work the ROADMAP tracks wants the runtime
//! path itself to be part of the inspectable record, so this module gives
//! every supervised run an ordered stream of span events (claim →
//! attempt(s) → fault/backoff → cache hit/miss/heal → verdict) collected
//! in a per-run ring buffer and merged **index-ordered** into one batch
//! trace.
//!
//! **Determinism contract.** The event stream itself obeys the same rule
//! as every other result in the workspace: it is a pure function of
//! `(registry, seed, policy, plan)`. Everything scheduling-dependent —
//! wall-clock timestamps, worker identities, the jobs count — is kept
//! *out* of [`BatchTrace::render_events`] and written to a separate
//! timing **sidecar** ([`BatchTrace::render_times`]) instead. The rendered
//! event stream is therefore bitwise-identical for every `--jobs` value,
//! and the trace file is **content-addressed**: its FNV-1a hash is its
//! filename (`trace-<hash>.jsonl`), so two machines that produced the
//! same execution story produce the same file at the same name, and
//! `treu trace --check` can detect a tampered or truncated trace the same
//! way the run cache detects a damaged entry.
//!
//! The format is line-oriented JSON (one object per line, no nesting)
//! written and parsed by hand — the workspace carries no serde — with a
//! header line, one descriptor line per run, and one line per event.
//! [`TraceCounters`] folds a batch's events into the aggregate counts the
//! reports print, so the report and the trace can never disagree.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Magic header value of the hashed event stream.
pub const TRACE_MAGIC: &str = "treu-trace v1";
/// Magic header value of the non-hashed timing sidecar.
pub const TIMES_MAGIC: &str = "treu-trace-times v1";
/// Default per-run ring-buffer capacity; a supervised verify run emits
/// roughly a dozen events, so drops only happen under pathological retry
/// storms — and are counted when they do.
pub const DEFAULT_RING_CAPACITY: usize = 512;

// The trace address is the canonical FNV-1a fold over the rendered event
// stream — the same hash the run cache and fault plan use.
use crate::hash::fnv64;

/// Minimal JSON string escaping for the hand-rolled writer.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape`] for the tiny parser.
pub(crate) fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Maps a failure-taxonomy label back onto the `&'static str` the
/// in-process supervisor emits (see `FailureKind::name`).
fn intern_taxonomy(s: &str) -> Option<&'static str> {
    match s {
        "Panicked" => Some("Panicked"),
        "TimedOut" => Some("TimedOut"),
        "Nondeterministic" => Some("Nondeterministic"),
        "CorruptCache" => Some("CorruptCache"),
        _ => None,
    }
}

/// What a classified cache lookup found — the trace-side mirror of
/// [`crate::cache::Lookup`], kept separate so this module stays free of
/// record payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheResult {
    /// Valid entry served without recompute.
    Hit,
    /// No entry at the address.
    Miss,
    /// Entry invalidated by a code+env fingerprint change.
    Stale,
    /// Entry failed read-time checksum verification (deleted on sight).
    Corrupt,
}

impl CacheResult {
    /// Stable event-stream label.
    pub fn name(self) -> &'static str {
        match self {
            CacheResult::Hit => "hit",
            CacheResult::Miss => "miss",
            CacheResult::Stale => "stale",
            CacheResult::Corrupt => "corrupt",
        }
    }
}

/// How one supervised attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt completed and produced a record.
    Ok,
    /// The attempt panicked (organic or injected).
    Panicked,
    /// The attempt exceeded its per-run deadline.
    TimedOut,
}

impl AttemptOutcome {
    /// Stable event-stream label.
    pub fn name(self) -> &'static str {
        match self {
            AttemptOutcome::Ok => "ok",
            AttemptOutcome::Panicked => "panicked",
            AttemptOutcome::TimedOut => "timed-out",
        }
    }
}

/// One span event in a run's execution story.
///
/// Every payload here is deterministic given `(registry, seed, policy,
/// plan)` — worker ids, timestamps and jobs counts are deliberately not
/// representable, which is what keeps the rendered stream bitwise-stable
/// across schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A worker claimed this run (one per replica).
    Claim {
        /// Verification replica index (0 for plain runs).
        replica: u32,
    },
    /// The run cache was consulted before dispatch.
    Cache {
        /// What the classified lookup found.
        result: CacheResult,
    },
    /// A supervised attempt started.
    AttemptStart {
        /// Verification replica index.
        replica: u32,
        /// Attempt number (0 = first try).
        attempt: u32,
    },
    /// The fault plan injected a fault into this attempt.
    Fault {
        /// Verification replica index.
        replica: u32,
        /// Attempt number the fault is active on.
        attempt: u32,
        /// Fault label, e.g. `transient-err(2)` or `delay(40ms)`.
        kind: String,
    },
    /// The deterministic backoff pause before a retry.
    Backoff {
        /// Verification replica index.
        replica: u32,
        /// The attempt about to run (1 = first retry).
        attempt: u32,
        /// Milliseconds slept, from [`crate::fault::backoff_millis`].
        millis: u64,
    },
    /// A supervised attempt ended.
    AttemptEnd {
        /// Verification replica index.
        replica: u32,
        /// Attempt number.
        attempt: u32,
        /// How it ended.
        outcome: AttemptOutcome,
    },
    /// The supervisor's final word on one replica.
    Outcome {
        /// Verification replica index.
        replica: u32,
        /// True when a record was produced within the budget.
        ok: bool,
        /// Attempts consumed (including the successful one).
        attempts: u32,
        /// Failure taxonomy name when quarantined.
        taxonomy: Option<&'static str>,
    },
    /// A verified record was stored into the run cache.
    CacheStored,
    /// A corrupt cache entry was invalidated and the recompute
    /// re-established a verified result.
    CacheHealed,
    /// The cross-check verdict for the run.
    Verdict {
        /// True when replicas agreed bitwise (or a valid cache entry
        /// stood in for recomputation).
        reproduced: bool,
        /// True when served from the run cache.
        cached: bool,
        /// Attempts the slower replica needed.
        attempts: u32,
        /// Fingerprint of the first replica (0 when none completed).
        fingerprint: u64,
        /// Failure taxonomy name when not reproduced.
        failure: Option<&'static str>,
    },
    /// Cluster simulator: failures drawn for one job.
    SimFailures {
        /// Failure count under the seeded failure model.
        failures: usize,
    },
    /// Cluster simulator: what recovery cost one job.
    SimRecovery {
        /// Recovery policy name (`restage` / `checkpoint`).
        policy: &'static str,
        /// Recovery overhead in milli-hours (integer so the rendered
        /// stream never depends on float formatting).
        overhead_millihours: u64,
    },
}

impl TraceEvent {
    /// Stable event name, as rendered in the `"ev"` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Claim { .. } => "claim",
            TraceEvent::Cache { .. } => "cache",
            TraceEvent::AttemptStart { .. } => "attempt-start",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Backoff { .. } => "backoff",
            TraceEvent::AttemptEnd { .. } => "attempt-end",
            TraceEvent::Outcome { .. } => "outcome",
            TraceEvent::CacheStored => "cache-stored",
            TraceEvent::CacheHealed => "cache-healed",
            TraceEvent::Verdict { .. } => "verdict",
            TraceEvent::SimFailures { .. } => "sim-failures",
            TraceEvent::SimRecovery { .. } => "sim-recovery",
        }
    }

    /// One self-contained JSON object for this event — the wire form the
    /// sharded service ships worker-side events in. Uses the exact same
    /// field renderer as the batch stream, so a worker-computed event
    /// rendered remotely is byte-identical to the same event rendered
    /// in-process.
    pub fn render_json(&self) -> String {
        let mut out = format!("{{\"ev\":\"{}\"", self.name());
        self.render_fields(&mut out);
        out.push('}');
        out
    }

    /// Parses one [`TraceEvent::render_json`] object back into an event.
    ///
    /// Taxonomy, failure, policy and outcome labels are **interned** onto
    /// the same `&'static str` values the in-process path uses — an
    /// unknown label yields `None` rather than an allocated impostor, so
    /// a parsed stream can never hash differently from a native one.
    pub fn parse_json(line: &str) -> Option<TraceEvent> {
        let replica = || ju64(line, "replica").map(|v| v as u32);
        let attempt = || ju64(line, "attempt").map(|v| v as u32);
        let boolean = |key: &str| match jraw(line, key) {
            Some("true") => Some(true),
            Some("false") => Some(false),
            _ => None,
        };
        match jstr(line, "ev")?.as_str() {
            "claim" => Some(TraceEvent::Claim { replica: replica()? }),
            "cache" => {
                let result = match jstr(line, "result")?.as_str() {
                    "hit" => CacheResult::Hit,
                    "miss" => CacheResult::Miss,
                    "stale" => CacheResult::Stale,
                    "corrupt" => CacheResult::Corrupt,
                    _ => return None,
                };
                Some(TraceEvent::Cache { result })
            }
            "attempt-start" => {
                Some(TraceEvent::AttemptStart { replica: replica()?, attempt: attempt()? })
            }
            "fault" => Some(TraceEvent::Fault {
                replica: replica()?,
                attempt: attempt()?,
                kind: jstr(line, "kind")?,
            }),
            "backoff" => Some(TraceEvent::Backoff {
                replica: replica()?,
                attempt: attempt()?,
                millis: ju64(line, "millis")?,
            }),
            "attempt-end" => {
                let outcome = match jstr(line, "outcome")?.as_str() {
                    "ok" => AttemptOutcome::Ok,
                    "panicked" => AttemptOutcome::Panicked,
                    "timed-out" => AttemptOutcome::TimedOut,
                    _ => return None,
                };
                Some(TraceEvent::AttemptEnd { replica: replica()?, attempt: attempt()?, outcome })
            }
            "outcome" => Some(TraceEvent::Outcome {
                replica: replica()?,
                ok: boolean("ok")?,
                attempts: ju64(line, "attempts")? as u32,
                taxonomy: match jstr(line, "taxonomy") {
                    None => None,
                    Some(t) => Some(intern_taxonomy(&t)?),
                },
            }),
            "cache-stored" => Some(TraceEvent::CacheStored),
            "cache-healed" => Some(TraceEvent::CacheHealed),
            "verdict" => Some(TraceEvent::Verdict {
                reproduced: boolean("reproduced")?,
                cached: boolean("cached")?,
                attempts: ju64(line, "attempts")? as u32,
                fingerprint: {
                    let raw = jstr(line, "fingerprint")?;
                    u64::from_str_radix(raw.strip_prefix("0x")?, 16).ok()?
                },
                failure: match jstr(line, "failure") {
                    None => None,
                    Some(f) => Some(intern_taxonomy(&f)?),
                },
            }),
            "sim-failures" => {
                Some(TraceEvent::SimFailures { failures: ju64(line, "failures")? as usize })
            }
            "sim-recovery" => Some(TraceEvent::SimRecovery {
                policy: match jstr(line, "policy")?.as_str() {
                    "restage" => "restage",
                    "checkpoint" => "checkpoint",
                    _ => return None,
                },
                overhead_millihours: ju64(line, "overhead_millihours")?,
            }),
            _ => None,
        }
    }

    /// Appends this event's payload fields (`,"k":v` pairs, fixed order).
    fn render_fields(&self, out: &mut String) {
        match self {
            TraceEvent::Claim { replica } => out.push_str(&format!(",\"replica\":{replica}")),
            TraceEvent::Cache { result } => {
                out.push_str(&format!(",\"result\":\"{}\"", result.name()));
            }
            TraceEvent::AttemptStart { replica, attempt } => {
                out.push_str(&format!(",\"replica\":{replica},\"attempt\":{attempt}"));
            }
            TraceEvent::Fault { replica, attempt, kind } => {
                out.push_str(&format!(
                    ",\"replica\":{replica},\"attempt\":{attempt},\"kind\":\"{}\"",
                    json_escape(kind)
                ));
            }
            TraceEvent::Backoff { replica, attempt, millis } => {
                out.push_str(&format!(
                    ",\"replica\":{replica},\"attempt\":{attempt},\"millis\":{millis}"
                ));
            }
            TraceEvent::AttemptEnd { replica, attempt, outcome } => {
                out.push_str(&format!(
                    ",\"replica\":{replica},\"attempt\":{attempt},\"outcome\":\"{}\"",
                    outcome.name()
                ));
            }
            TraceEvent::Outcome { replica, ok, attempts, taxonomy } => {
                out.push_str(&format!(
                    ",\"replica\":{replica},\"ok\":{ok},\"attempts\":{attempts}"
                ));
                if let Some(t) = taxonomy {
                    out.push_str(&format!(",\"taxonomy\":\"{t}\""));
                }
            }
            TraceEvent::CacheStored | TraceEvent::CacheHealed => {}
            TraceEvent::Verdict { reproduced, cached, attempts, fingerprint, failure } => {
                out.push_str(&format!(
                    ",\"reproduced\":{reproduced},\"cached\":{cached},\"attempts\":{attempts},\"fingerprint\":\"{fingerprint:#018x}\""
                ));
                if let Some(f) = failure {
                    out.push_str(&format!(",\"failure\":\"{f}\""));
                }
            }
            TraceEvent::SimFailures { failures } => {
                out.push_str(&format!(",\"failures\":{failures}"));
            }
            TraceEvent::SimRecovery { policy, overhead_millihours } => {
                out.push_str(&format!(
                    ",\"policy\":\"{policy}\",\"overhead_millihours\":{overhead_millihours}"
                ));
            }
        }
    }
}

/// One run's bounded event buffer: events in emission order with
/// batch-relative timestamps kept alongside (but never rendered into the
/// hashed stream).
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Experiment id (or synthetic label for non-registry runs).
    pub id: String,
    /// The run seed.
    pub seed: u64,
    events: Vec<(u64, TraceEvent, f64)>,
    next_seq: u64,
    capacity: usize,
    /// Events evicted because the ring was full — deterministic for a
    /// deterministic event stream, and reported in the run descriptor.
    pub dropped: u64,
}

impl RunTrace {
    /// A fresh trace with the [`DEFAULT_RING_CAPACITY`].
    pub fn new(id: &str, seed: u64) -> Self {
        Self::with_capacity(id, seed, DEFAULT_RING_CAPACITY)
    }

    /// A fresh trace holding at most `capacity` events (clamped to ≥ 1);
    /// the oldest event is evicted (and counted) when the ring is full.
    pub fn with_capacity(id: &str, seed: u64, capacity: usize) -> Self {
        Self {
            id: id.to_string(),
            seed,
            events: Vec::new(),
            next_seq: 0,
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event at `at_seconds` (batch-relative wall offset; goes
    /// only to the sidecar). Evicts the oldest event when full.
    pub fn push(&mut self, event: TraceEvent, at_seconds: f64) {
        if self.events.len() >= self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push((self.next_seq, event, at_seconds));
        self.next_seq += 1;
    }

    /// Moves every event of `other` (a replica-local buffer) into this
    /// trace, re-sequencing in arrival order — the index-ordered merge
    /// that keeps the stream schedule-independent.
    pub fn absorb(&mut self, other: RunTrace) {
        self.dropped += other.dropped;
        for (_, ev, at) in other.events {
            self.push(ev, at);
        }
    }

    /// The buffered `(seq, event, at_seconds)` triples, oldest first.
    pub fn events(&self) -> &[(u64, TraceEvent, f64)] {
        &self.events
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One worker's timing as recorded in the sidecar (never hashed).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerTiming {
    /// Seconds inside the claim loop.
    pub busy_seconds: f64,
    /// Chunks claimed.
    pub chunks: usize,
    /// Items computed.
    pub items: usize,
}

/// Aggregate counters folded from a batch's event stream — the single
/// source the reports print from, so report and trace cannot disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCounters {
    /// Runs in the batch.
    pub runs: usize,
    /// Total buffered events.
    pub events: u64,
    /// Events evicted from full rings.
    pub dropped: u64,
    /// Worker claims.
    pub claims: u64,
    /// Supervised attempts started.
    pub attempts: u64,
    /// Faults the plan injected.
    pub faults_injected: u64,
    /// Backoff pauses taken before retries.
    pub backoffs: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Cache entries invalidated by a fingerprint change.
    pub cache_stale: u64,
    /// Cache entries that failed checksum verification.
    pub cache_corrupt: u64,
    /// Verified records stored into the cache.
    pub cache_stores: u64,
    /// Corrupt entries that self-healed through recompute.
    pub cache_healed: u64,
    /// Replicas that completed within budget.
    pub completed: u64,
    /// Replicas that exhausted their budget (quarantined).
    pub quarantined: u64,
    /// Cross-check verdicts rendered.
    pub verdicts: u64,
    /// Verdicts that reproduced.
    pub reproduced: u64,
}

impl TraceCounters {
    /// One-line summary for report renders.
    pub fn render_line(&self) -> String {
        format!(
            "  trace: {} event(s) over {} run(s): {} attempt(s), {} fault(s) injected, {} backoff(s), {} cache hit(s), {} store(s){}\n",
            self.events,
            self.runs,
            self.attempts,
            self.faults_injected,
            self.backoffs,
            self.cache_hits,
            self.cache_stores,
            if self.dropped > 0 { format!(", {} dropped", self.dropped) } else { String::new() }
        )
    }
}

/// A whole batch's merged trace: the deterministic event stream plus the
/// scheduling-dependent timing data destined for the sidecar.
#[derive(Debug, Clone)]
pub struct BatchTrace {
    /// Batch kind (`run`, `verify`, `chaos`, `cluster-sim`).
    pub kind: String,
    /// The batch seed.
    pub seed: u64,
    /// Per-run traces, in canonical (input) order.
    pub runs: Vec<RunTrace>,
    /// Worker count used (sidecar only).
    pub jobs: usize,
    /// Batch wall seconds (sidecar only).
    pub wall_seconds: f64,
    /// Per-worker timing (sidecar only).
    pub workers: Vec<WorkerTiming>,
}

impl BatchTrace {
    /// An empty trace of the given kind.
    pub fn empty(kind: &str, seed: u64) -> Self {
        Self {
            kind: kind.to_string(),
            seed,
            runs: Vec::new(),
            jobs: 0,
            wall_seconds: 0.0,
            workers: Vec::new(),
        }
    }

    /// Renders the **deterministic** event stream: header, one descriptor
    /// line per run, one line per event. Contains no timestamps, worker
    /// ids or jobs counts — bitwise-identical for every schedule.
    pub fn render_events(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"trace\":\"{TRACE_MAGIC}\",\"kind\":\"{}\",\"seed\":{},\"runs\":{}}}\n",
            json_escape(&self.kind),
            self.seed,
            self.runs.len()
        ));
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str(&format!(
                "{{\"run\":{i},\"id\":\"{}\",\"seed\":{},\"events\":{},\"dropped\":{}}}\n",
                json_escape(&run.id),
                run.seed,
                run.len(),
                run.dropped
            ));
            for (seq, ev, _) in run.events() {
                out.push_str(&format!("{{\"run\":{i},\"seq\":{seq},\"ev\":\"{}\"", ev.name()));
                ev.render_fields(&mut out);
                out.push_str("}\n");
            }
        }
        out
    }

    /// FNV-1a hash of [`BatchTrace::render_events`] — the trace's content
    /// address and filename stem.
    pub fn content_hash(&self) -> u64 {
        fnv64(self.render_events().as_bytes())
    }

    /// Renders the **non-hashed** timing sidecar: jobs count, batch wall
    /// time, per-worker loads, and one `at` offset per event.
    pub fn render_times(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"times\":\"{TIMES_MAGIC}\",\"jobs\":{},\"wall_seconds\":{:.6},\"workers\":{}}}\n",
            self.jobs,
            self.wall_seconds,
            self.workers.len()
        ));
        for (w, t) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "{{\"worker\":{w},\"busy_seconds\":{:.6},\"chunks\":{},\"items\":{}}}\n",
                t.busy_seconds, t.chunks, t.items
            ));
        }
        for (i, run) in self.runs.iter().enumerate() {
            for (seq, _, at) in run.events() {
                out.push_str(&format!("{{\"run\":{i},\"seq\":{seq},\"at\":{at:.6}}}\n"));
            }
        }
        out
    }

    /// Folds the event stream into aggregate counters.
    pub fn counters(&self) -> TraceCounters {
        let mut c = TraceCounters { runs: self.runs.len(), ..TraceCounters::default() };
        for run in &self.runs {
            c.dropped += run.dropped;
            for (_, ev, _) in run.events() {
                c.events += 1;
                match ev {
                    TraceEvent::Claim { .. } => c.claims += 1,
                    TraceEvent::Cache { result } => match result {
                        CacheResult::Hit => c.cache_hits += 1,
                        CacheResult::Miss => c.cache_misses += 1,
                        CacheResult::Stale => c.cache_stale += 1,
                        CacheResult::Corrupt => c.cache_corrupt += 1,
                    },
                    TraceEvent::AttemptStart { .. } => c.attempts += 1,
                    TraceEvent::Fault { .. } => c.faults_injected += 1,
                    TraceEvent::Backoff { .. } => c.backoffs += 1,
                    TraceEvent::AttemptEnd { .. } => {}
                    TraceEvent::Outcome { ok, .. } => {
                        if *ok {
                            c.completed += 1;
                        } else {
                            c.quarantined += 1;
                        }
                    }
                    TraceEvent::CacheStored => c.cache_stores += 1,
                    TraceEvent::CacheHealed => c.cache_healed += 1,
                    TraceEvent::Verdict { reproduced, .. } => {
                        c.verdicts += 1;
                        if *reproduced {
                            c.reproduced += 1;
                        }
                    }
                    TraceEvent::SimFailures { .. } | TraceEvent::SimRecovery { .. } => {}
                }
            }
        }
        c
    }

    /// Content-addressed filename of the event stream.
    pub fn file_name(&self) -> String {
        format!("trace-{:016x}.jsonl", self.content_hash())
    }

    /// Sidecar filename next to [`BatchTrace::file_name`].
    pub fn times_file_name(&self) -> String {
        format!("trace-{:016x}.times.jsonl", self.content_hash())
    }

    /// Writes the event stream and its timing sidecar under `dir`
    /// (created if needed); returns the event-stream path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.render_events())?;
        std::fs::write(dir.join(self.times_file_name()), self.render_times())?;
        Ok(path)
    }
}

/// Extracts the raw (still-escaped, unquoted) value of `key` from one of
/// our single-line JSON objects.
pub(crate) fn jraw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // Escape-aware scan to the closing quote.
        let mut escaped = false;
        for (i, c) in stripped.char_indices() {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => return Some(&stripped[..i]),
                _ => {}
            }
        }
        None
    } else {
        let end = rest.find([',', '}'])?;
        Some(&rest[..end])
    }
}

/// String field (unescaped).
pub(crate) fn jstr(line: &str, key: &str) -> Option<String> {
    jraw(line, key).map(json_unescape)
}

/// Unsigned integer field.
pub(crate) fn ju64(line: &str, key: &str) -> Option<u64> {
    jraw(line, key)?.parse().ok()
}

/// Float field.
pub(crate) fn jf64(line: &str, key: &str) -> Option<f64> {
    jraw(line, key)?.parse().ok()
}

/// One run's descriptor line from a parsed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHeader {
    /// Run index within the batch.
    pub run: usize,
    /// Experiment id.
    pub id: String,
    /// Run seed.
    pub seed: u64,
    /// Event count.
    pub events: u64,
    /// Ring-buffer evictions.
    pub dropped: u64,
}

/// One event line from a parsed trace, with its payload kept as raw
/// key→value text (our writer emits flat objects only).
#[derive(Debug, Clone)]
pub struct EventLine {
    /// Run index.
    pub run: usize,
    /// Sequence number within the run.
    pub seq: u64,
    /// Event name.
    pub ev: String,
    /// The full source line, for field extraction.
    pub raw: String,
}

impl EventLine {
    /// String payload field.
    pub fn field(&self, key: &str) -> Option<String> {
        jstr(&self.raw, key)
    }

    /// Integer payload field.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        ju64(&self.raw, key)
    }
}

/// A parsed event stream.
#[derive(Debug, Clone)]
pub struct TraceFile {
    /// Batch kind.
    pub kind: String,
    /// Batch seed.
    pub seed: u64,
    /// Per-run descriptors, in run order.
    pub runs: Vec<RunHeader>,
    /// Event lines, in file order.
    pub events: Vec<EventLine>,
}

/// A parsed timing sidecar.
#[derive(Debug, Clone)]
pub struct TimesFile {
    /// Worker count used.
    pub jobs: usize,
    /// Batch wall seconds.
    pub wall_seconds: f64,
    /// Per-worker timing.
    pub workers: Vec<WorkerTiming>,
    /// Batch-relative offset of each `(run, seq)` event.
    pub at: BTreeMap<(usize, u64), f64>,
}

/// Parses a rendered event stream. Errors name the offending line.
pub fn parse_trace(text: &str) -> Result<TraceFile, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty trace file")?;
    if jstr(header, "trace").as_deref() != Some(TRACE_MAGIC) {
        return Err(format!("not a {TRACE_MAGIC} file: {header}"));
    }
    let kind = jstr(header, "kind").ok_or("trace header missing kind")?;
    let seed = ju64(header, "seed").ok_or("trace header missing seed")?;
    let mut runs = Vec::new();
    let mut events = Vec::new();
    for line in lines {
        let run =
            ju64(line, "run").ok_or_else(|| format!("line missing run index: {line}"))? as usize;
        if let Some(ev) = jstr(line, "ev") {
            let seq = ju64(line, "seq").ok_or_else(|| format!("event missing seq: {line}"))?;
            events.push(EventLine { run, seq, ev, raw: line.to_string() });
        } else {
            runs.push(RunHeader {
                run,
                id: jstr(line, "id").ok_or_else(|| format!("run descriptor missing id: {line}"))?,
                seed: ju64(line, "seed").unwrap_or(0),
                events: ju64(line, "events").unwrap_or(0),
                dropped: ju64(line, "dropped").unwrap_or(0),
            });
        }
    }
    Ok(TraceFile { kind, seed, runs, events })
}

/// Parses a timing sidecar.
pub fn parse_times(text: &str) -> Result<TimesFile, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty sidecar file")?;
    if jstr(header, "times").as_deref() != Some(TIMES_MAGIC) {
        return Err(format!("not a {TIMES_MAGIC} file: {header}"));
    }
    let jobs = ju64(header, "jobs").unwrap_or(0) as usize;
    let wall_seconds = jf64(header, "wall_seconds").unwrap_or(0.0);
    let mut workers = Vec::new();
    let mut at = BTreeMap::new();
    for line in lines {
        if line.contains("\"worker\":") {
            workers.push(WorkerTiming {
                busy_seconds: jf64(line, "busy_seconds").unwrap_or(0.0),
                chunks: ju64(line, "chunks").unwrap_or(0) as usize,
                items: ju64(line, "items").unwrap_or(0) as usize,
            });
        } else if let (Some(run), Some(seq), Some(t)) =
            (ju64(line, "run"), ju64(line, "seq"), jf64(line, "at"))
        {
            at.insert((run as usize, seq), t);
        }
    }
    Ok(TimesFile { jobs, wall_seconds, workers, at })
}

/// The content hash a trace file's name claims, when the name follows the
/// `trace-<16 hex>.jsonl` convention.
pub fn hash_from_file_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("trace-")?.strip_suffix(".jsonl")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Verifies a stored trace against its content address: recomputes the
/// FNV-1a hash of the file bytes and compares it with the hash embedded
/// in the filename. Returns the verified hash, or a description of the
/// mismatch / parse failure.
pub fn check_trace_file(path: &Path) -> Result<u64, String> {
    let claimed = hash_from_file_name(path)
        .ok_or_else(|| format!("{}: name is not trace-<hash>.jsonl", path.display()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let actual = fnv64(text.as_bytes());
    if actual != claimed {
        return Err(format!(
            "{}: content hash {actual:#018x} does not match address {claimed:#018x}",
            path.display()
        ));
    }
    parse_trace(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(actual)
}

/// Human description of one event line for the timeline renderer.
fn describe(ev: &EventLine) -> String {
    let rep = || ev.field_u64("replica").map(|r| format!(" replica {r}")).unwrap_or_default();
    let att = || ev.field_u64("attempt").map(|a| format!(" attempt {a}")).unwrap_or_default();
    match ev.ev.as_str() {
        "claim" => format!("claim{}", rep()),
        "cache" => format!("cache {}", ev.field("result").unwrap_or_default()),
        "attempt-start" => format!("attempt-start{}{}", rep(), att()),
        "fault" => format!("fault{}{} [{}]", rep(), att(), ev.field("kind").unwrap_or_default()),
        "backoff" => {
            format!("backoff{}{} ({}ms)", rep(), att(), ev.field_u64("millis").unwrap_or(0))
        }
        "attempt-end" => {
            format!("attempt-end{}{} → {}", rep(), att(), ev.field("outcome").unwrap_or_default())
        }
        "outcome" => {
            let ok = ev.field("ok").or_else(|| jraw(&ev.raw, "ok").map(str::to_string));
            let verdict = if ok.as_deref() == Some("true") { "ok" } else { "quarantined" };
            let tax = ev.field("taxonomy").map(|t| format!(" ({t})")).unwrap_or_default();
            format!(
                "outcome{} {verdict} after {} attempt(s){tax}",
                rep(),
                ev.field_u64("attempts").unwrap_or(0)
            )
        }
        "cache-stored" => "cache store".to_string(),
        "cache-healed" => "cache healed (corrupt entry recomputed)".to_string(),
        "verdict" => {
            let reproduced = jraw(&ev.raw, "reproduced").unwrap_or("false") == "true";
            let cached = jraw(&ev.raw, "cached").unwrap_or("false") == "true";
            let failure = ev.field("failure").map(|f| format!(" ({f})")).unwrap_or_default();
            format!(
                "verdict {}{}{failure}",
                if reproduced { "REPRODUCED" } else { "NOT REPRODUCED" },
                if cached { " [cached]" } else { "" }
            )
        }
        "sim-failures" => format!("{} simulated failure(s)", ev.field_u64("failures").unwrap_or(0)),
        "sim-recovery" => format!(
            "recovery via {} cost {:.3}h",
            ev.field("policy").unwrap_or_default(),
            ev.field_u64("overhead_millihours").unwrap_or(0) as f64 / 1000.0
        ),
        other => other.to_string(),
    }
}

/// Renders the per-run timeline. With a sidecar, each event carries its
/// batch-relative `+offset`; without one, order alone tells the story.
pub fn render_timeline(tf: &TraceFile, times: Option<&TimesFile>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} trace, seed {}, {} run(s){}\n",
        tf.kind,
        tf.seed,
        tf.runs.len(),
        times
            .map(|t| format!(", {} job(s), wall {:.3}s", t.jobs, t.wall_seconds))
            .unwrap_or_default()
    ));
    for header in &tf.runs {
        out.push_str(&format!(
            "run {:<3} {} (seed {}{})\n",
            header.run,
            header.id,
            header.seed,
            if header.dropped > 0 {
                format!(", {} event(s) dropped", header.dropped)
            } else {
                String::new()
            }
        ));
        for ev in tf.events.iter().filter(|e| e.run == header.run) {
            let offset = times
                .and_then(|t| t.at.get(&(ev.run, ev.seq)))
                .map(|at| format!("+{at:9.6}s  "))
                .unwrap_or_default();
            out.push_str(&format!("  {offset}{}\n", describe(ev)));
        }
    }
    out
}

/// Renders the per-worker utilization table from a sidecar.
pub fn render_worker_table(times: &TimesFile) -> String {
    let mut out = String::new();
    out.push_str("worker   busy(s)    chunks   items   utilization\n");
    let wall = times.wall_seconds.max(1e-12);
    for (w, t) in times.workers.iter().enumerate() {
        out.push_str(&format!(
            "{w:<6}  {:>9.4}  {:>7}  {:>6}   {:>10.1}%\n",
            t.busy_seconds,
            t.chunks,
            t.items,
            100.0 * (t.busy_seconds / wall).clamp(0.0, 1.0)
        ));
    }
    if times.workers.is_empty() {
        out.push_str("(no worker timing recorded)\n");
    }
    out
}

/// The top-N slowest attempt spans (attempt-start → attempt-end pairs,
/// matched per `(run, replica, attempt)` through the sidecar offsets).
pub fn render_slowest(tf: &TraceFile, times: &TimesFile, top: usize) -> String {
    let mut starts: BTreeMap<(usize, u64, u64), f64> = BTreeMap::new();
    let mut spans: Vec<(f64, usize, u64, u64)> = Vec::new();
    for ev in &tf.events {
        let key =
            (ev.run, ev.field_u64("replica").unwrap_or(0), ev.field_u64("attempt").unwrap_or(0));
        let Some(&at) = times.at.get(&(ev.run, ev.seq)) else { continue };
        match ev.ev.as_str() {
            "attempt-start" => {
                starts.insert(key, at);
            }
            "attempt-end" => {
                if let Some(t0) = starts.remove(&key) {
                    spans.push(((at - t0).max(0.0), key.0, key.1, key.2));
                }
            }
            _ => {}
        }
    }
    spans.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then((a.1, a.2, a.3).cmp(&(b.1, b.2, b.3)))
    });
    let mut out = String::new();
    out.push_str(&format!("top {} slowest attempt span(s):\n", top.min(spans.len())));
    for (rank, (dur, run, replica, attempt)) in spans.iter().take(top).enumerate() {
        let id = tf.runs.iter().find(|h| h.run == *run).map(|h| h.id.as_str()).unwrap_or("?");
        out.push_str(&format!(
            "  {:>2}. {id} replica {replica} attempt {attempt} — {dur:.6}s\n",
            rank + 1
        ));
    }
    if spans.is_empty() {
        out.push_str("  (no attempt spans with timing data)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchTrace {
        let mut a = RunTrace::new("A", 7);
        a.push(TraceEvent::Cache { result: CacheResult::Miss }, 0.001);
        a.push(TraceEvent::Claim { replica: 0 }, 0.002);
        a.push(TraceEvent::AttemptStart { replica: 0, attempt: 0 }, 0.003);
        a.push(
            TraceEvent::Fault { replica: 0, attempt: 0, kind: "transient-err(1)".to_string() },
            0.004,
        );
        a.push(
            TraceEvent::AttemptEnd { replica: 0, attempt: 0, outcome: AttemptOutcome::Panicked },
            0.005,
        );
        a.push(TraceEvent::Backoff { replica: 0, attempt: 1, millis: 3 }, 0.006);
        a.push(TraceEvent::AttemptStart { replica: 0, attempt: 1 }, 0.009);
        a.push(
            TraceEvent::AttemptEnd { replica: 0, attempt: 1, outcome: AttemptOutcome::Ok },
            0.012,
        );
        a.push(TraceEvent::Outcome { replica: 0, ok: true, attempts: 2, taxonomy: None }, 0.012);
        a.push(TraceEvent::CacheStored, 0.013);
        a.push(
            TraceEvent::Verdict {
                reproduced: true,
                cached: false,
                attempts: 2,
                fingerprint: 0xDEAD_BEEF,
                failure: None,
            },
            0.014,
        );
        let mut b = RunTrace::new("B", 7);
        b.push(TraceEvent::Cache { result: CacheResult::Hit }, 0.001);
        b.push(
            TraceEvent::Verdict {
                reproduced: true,
                cached: true,
                attempts: 1,
                fingerprint: 0xBEEF,
                failure: None,
            },
            0.002,
        );
        BatchTrace {
            kind: "verify".to_string(),
            seed: 7,
            runs: vec![a, b],
            jobs: 4,
            wall_seconds: 0.015,
            workers: vec![
                WorkerTiming { busy_seconds: 0.010, chunks: 2, items: 2 },
                WorkerTiming { busy_seconds: 0.004, chunks: 1, items: 1 },
            ],
        }
    }

    #[test]
    fn rendered_stream_excludes_schedule_and_hash_is_stable() {
        let t = sample();
        let rendered = t.render_events();
        assert!(!rendered.contains("\"at\""), "timestamps belong to the sidecar");
        assert!(!rendered.contains("jobs"), "jobs count belongs to the sidecar");
        assert!(!rendered.contains("worker"), "worker identity belongs to the sidecar");
        assert_eq!(t.content_hash(), t.content_hash());
        // The hash is a pure function of the event content: changing the
        // sidecar-only fields never moves the address.
        let mut retimed = t.clone();
        retimed.jobs = 1;
        retimed.wall_seconds = 99.0;
        retimed.workers.clear();
        assert_eq!(t.content_hash(), retimed.content_hash());
        // But the event content does.
        let mut other = t.clone();
        other.runs[0].push(TraceEvent::CacheHealed, 0.02);
        assert_ne!(t.content_hash(), other.content_hash());
    }

    #[test]
    fn counters_fold_the_event_stream() {
        let c = sample().counters();
        assert_eq!(c.runs, 2);
        assert_eq!(c.claims, 1);
        assert_eq!(c.attempts, 2);
        assert_eq!(c.faults_injected, 1);
        assert_eq!(c.backoffs, 1);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.cache_stores, 1);
        assert_eq!(c.completed, 1);
        assert_eq!(c.quarantined, 0);
        assert_eq!(c.verdicts, 2);
        assert_eq!(c.reproduced, 2);
        assert!(c.render_line().contains("2 attempt(s)"));
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut rt = RunTrace::with_capacity("R", 1, 3);
        for i in 0..5u32 {
            rt.push(TraceEvent::AttemptStart { replica: 0, attempt: i }, 0.0);
        }
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.dropped, 2);
        let seqs: Vec<u64> = rt.events().iter().map(|(s, _, _)| *s).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest events are evicted first");
    }

    #[test]
    fn absorb_merges_in_arrival_order_and_resequences() {
        let mut main = RunTrace::new("M", 1);
        main.push(TraceEvent::Cache { result: CacheResult::Miss }, 0.0);
        let mut replica = RunTrace::new("M", 1);
        replica.push(TraceEvent::Claim { replica: 1 }, 0.1);
        replica.push(TraceEvent::AttemptStart { replica: 1, attempt: 0 }, 0.2);
        main.absorb(replica);
        let seqs: Vec<u64> = main.events().iter().map(|(s, _, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn parse_round_trips_the_renderer() {
        let t = sample();
        let tf = parse_trace(&t.render_events()).unwrap();
        assert_eq!(tf.kind, "verify");
        assert_eq!(tf.seed, 7);
        assert_eq!(tf.runs.len(), 2);
        assert_eq!(tf.runs[0].id, "A");
        assert_eq!(tf.runs[0].events, 11);
        assert_eq!(tf.events.len(), 13);
        assert_eq!(tf.events[3].ev, "fault");
        assert_eq!(tf.events[3].field("kind").as_deref(), Some("transient-err(1)"));
        let times = parse_times(&t.render_times()).unwrap();
        assert_eq!(times.jobs, 4);
        assert_eq!(times.workers.len(), 2);
        assert!((times.at[&(0, 3)] - 0.004).abs() < 1e-9);
    }

    #[test]
    fn escaped_ids_survive_the_round_trip() {
        let mut rt = RunTrace::new("weird \"id\"\nwith\\escapes", 3);
        rt.push(TraceEvent::Claim { replica: 0 }, 0.0);
        let t = BatchTrace { runs: vec![rt], ..BatchTrace::empty("run", 3) };
        let tf = parse_trace(&t.render_events()).unwrap();
        assert_eq!(tf.runs[0].id, "weird \"id\"\nwith\\escapes");
    }

    #[test]
    fn write_check_detects_tampering() {
        let dir = std::env::temp_dir().join(format!("treu-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = sample();
        let path = t.write(&dir).unwrap();
        assert_eq!(hash_from_file_name(&path), Some(t.content_hash()));
        assert_eq!(check_trace_file(&path).unwrap(), t.content_hash());
        // Flip one byte: the content no longer matches the address.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("claim", "cla1m", 1)).unwrap();
        let err = check_trace_file(&path).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renderers_cover_timeline_workers_and_slowest() {
        let t = sample();
        let tf = parse_trace(&t.render_events()).unwrap();
        let times = parse_times(&t.render_times()).unwrap();
        let timeline = render_timeline(&tf, Some(&times));
        assert!(timeline.contains("run 0   A"));
        assert!(timeline.contains("fault replica 0 attempt 0 [transient-err(1)]"));
        assert!(timeline.contains("backoff replica 0 attempt 1 (3ms)"));
        assert!(timeline.contains("verdict REPRODUCED"));
        assert!(timeline.contains("[cached]"));
        assert!(timeline.contains("+"));
        let workers = render_worker_table(&times);
        assert!(workers.contains("utilization"));
        assert!(workers.contains("0.0100"));
        let slow = render_slowest(&tf, &times, 5);
        assert!(slow.contains("A replica 0 attempt"), "{slow}");
        // The attempt-1 span (0.009 → 0.012) and attempt-0 span
        // (0.003 → 0.005): the slower one ranks first.
        let first = slow.lines().nth(1).unwrap();
        assert!(first.contains("attempt 1"), "{slow}");
    }

    #[test]
    fn event_json_round_trips_every_variant_bitwise() {
        let events = vec![
            TraceEvent::Claim { replica: 1 },
            TraceEvent::Cache { result: CacheResult::Stale },
            TraceEvent::AttemptStart { replica: 0, attempt: 2 },
            TraceEvent::Fault { replica: 1, attempt: 0, kind: "delay(40ms) \"q\"".to_string() },
            TraceEvent::Backoff { replica: 0, attempt: 1, millis: 12 },
            TraceEvent::AttemptEnd { replica: 0, attempt: 1, outcome: AttemptOutcome::TimedOut },
            TraceEvent::Outcome { replica: 1, ok: false, attempts: 3, taxonomy: Some("TimedOut") },
            TraceEvent::Outcome { replica: 0, ok: true, attempts: 1, taxonomy: None },
            TraceEvent::CacheStored,
            TraceEvent::CacheHealed,
            TraceEvent::Verdict {
                reproduced: false,
                cached: false,
                attempts: 2,
                fingerprint: 0x0123_4567_89AB_CDEF,
                failure: Some("Nondeterministic"),
            },
            TraceEvent::Verdict {
                reproduced: true,
                cached: true,
                attempts: 1,
                fingerprint: 0,
                failure: None,
            },
            TraceEvent::SimFailures { failures: 3 },
            TraceEvent::SimRecovery { policy: "checkpoint", overhead_millihours: 250 },
        ];
        for ev in &events {
            let line = ev.render_json();
            let back =
                TraceEvent::parse_json(&line).unwrap_or_else(|| panic!("parse failed for {line}"));
            assert_eq!(&back, ev, "{line}");
            // Re-rendering the parsed event is byte-identical — the wire
            // cannot perturb the hashed stream.
            assert_eq!(back.render_json(), line);
        }
        // Unknown labels are rejected, never interned as impostors.
        assert!(TraceEvent::parse_json("{\"ev\":\"outcome\",\"replica\":0,\"ok\":true,\"attempts\":1,\"taxonomy\":\"Gremlins\"}").is_none());
        assert!(TraceEvent::parse_json("{\"ev\":\"no-such-event\"}").is_none());
    }

    #[test]
    fn sim_events_render_and_describe() {
        let mut rt = RunTrace::new("job0", 9);
        rt.push(TraceEvent::SimFailures { failures: 2 }, 0.0);
        rt.push(TraceEvent::SimRecovery { policy: "restage", overhead_millihours: 1500 }, 0.0);
        let t = BatchTrace { runs: vec![rt], ..BatchTrace::empty("cluster-sim", 9) };
        let tf = parse_trace(&t.render_events()).unwrap();
        let timeline = render_timeline(&tf, None);
        assert!(timeline.contains("2 simulated failure(s)"));
        assert!(timeline.contains("recovery via restage cost 1.500h"));
    }
}
