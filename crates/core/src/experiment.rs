//! Seeded, parameterized experiment execution.
//!
//! An [`Experiment`] is anything that can run against a [`RunContext`]. The
//! context is the *only* sanctioned source of randomness and the only sink
//! for results: components ask it for derived RNG streams by tag, read typed
//! parameters, and record metrics. Everything the context hands out or
//! receives is logged to a provenance [`Trail`], so a completed
//! [`RunRecord`] is a self-describing, fingerprintable account of the run.
//!
//! Determinism is a checkable property, not a hope:
//! [`assert_deterministic`] runs an experiment twice with the same seed and
//! panics unless the two trails are bit-identical.

use crate::provenance::Trail;
use std::collections::BTreeMap;
use std::time::Instant;
use treu_math::rng::{derive_seed, SplitMix64};

/// Typed parameter values for an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Integer parameter.
    Int(i64),
    /// Floating-point parameter.
    Float(f64),
    /// Textual parameter.
    Text(String),
    /// Boolean parameter.
    Bool(bool),
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Text(v) => write!(f, "{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// An ordered, named parameter set.
///
/// Backed by a `BTreeMap` so iteration (and therefore provenance and
/// fingerprints) is independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    map: BTreeMap<String, ParamValue>,
}

impl Params {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style integer parameter.
    pub fn with_int(mut self, key: &str, v: i64) -> Self {
        self.map.insert(key.to_string(), ParamValue::Int(v));
        self
    }

    /// Builder-style float parameter.
    pub fn with_float(mut self, key: &str, v: f64) -> Self {
        self.map.insert(key.to_string(), ParamValue::Float(v));
        self
    }

    /// Builder-style text parameter.
    pub fn with_text(mut self, key: &str, v: &str) -> Self {
        self.map.insert(key.to_string(), ParamValue::Text(v.to_string()));
        self
    }

    /// Builder-style boolean parameter.
    pub fn with_bool(mut self, key: &str, v: bool) -> Self {
        self.map.insert(key.to_string(), ParamValue::Bool(v));
        self
    }

    /// Looks up a raw value.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.map.get(key)
    }

    /// Iterates parameters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The live context handed to an experiment while it runs.
pub struct RunContext {
    seed: u64,
    params: Params,
    trail: Trail,
}

impl RunContext {
    /// Creates a context with a master seed and parameters. All parameters
    /// are logged to the trail up front, so the provenance of a run starts
    /// with its full configuration.
    pub fn new(seed: u64, params: Params) -> Self {
        let mut trail = Trail::new();
        trail.param("seed", seed);
        for (k, v) in params.iter() {
            trail.param(k, v);
        }
        Self { seed, params, trail }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Opens an independent RNG stream derived from the master seed and a
    /// tag; the derivation is logged.
    pub fn rng(&mut self, tag: &str) -> SplitMix64 {
        let s = derive_seed(self.seed, tag);
        self.trail.rng_stream(tag, s);
        SplitMix64::new(s)
    }

    /// Reads an integer parameter, falling back to `default`.
    pub fn int(&self, key: &str, default: i64) -> i64 {
        match self.params.get(key) {
            Some(ParamValue::Int(v)) => *v,
            _ => default,
        }
    }

    /// Reads a float parameter, falling back to `default`.
    pub fn float(&self, key: &str, default: f64) -> f64 {
        match self.params.get(key) {
            Some(ParamValue::Float(v)) => *v,
            Some(ParamValue::Int(v)) => *v as f64,
            _ => default,
        }
    }

    /// Reads a boolean parameter, falling back to `default`.
    pub fn bool(&self, key: &str, default: bool) -> bool {
        match self.params.get(key) {
            Some(ParamValue::Bool(v)) => *v,
            _ => default,
        }
    }

    /// Reads a text parameter, falling back to `default`.
    pub fn text(&self, key: &str, default: &str) -> String {
        match self.params.get(key) {
            Some(ParamValue::Text(v)) => v.clone(),
            _ => default.to_string(),
        }
    }

    /// Records a scalar result metric.
    pub fn record(&mut self, name: &str, value: f64) {
        self.trail.metric(name, value);
    }

    /// Records a free-form note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.trail.note(text);
    }

    /// Read-only view of the trail so far.
    pub fn trail(&self) -> &Trail {
        &self.trail
    }
}

/// A completed run: the trail plus wall-clock duration.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Experiment name.
    pub name: String,
    /// Master seed used.
    pub seed: u64,
    /// Full provenance trail.
    pub trail: Trail,
    /// Wall-clock duration of `Experiment::run` in seconds. Excluded from
    /// the fingerprint: timing is environment, not result.
    pub wall_seconds: f64,
}

impl RunRecord {
    /// Fingerprint of the run's trail (see [`Trail::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.trail.fingerprint()
    }

    /// Convenience metric lookup.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.trail.metric_value(name)
    }
}

/// Anything runnable under the harness.
pub trait Experiment {
    /// Stable, human-readable experiment name (used in registries and
    /// reports).
    fn name(&self) -> &str;

    /// Executes the experiment against the context. All randomness must
    /// come from `ctx.rng(..)` and all results must go to `ctx.record(..)`
    /// for the determinism guarantees to hold.
    fn run(&self, ctx: &mut RunContext);
}

/// Runs an experiment once and returns the record.
pub fn run_once<E: Experiment + ?Sized>(exp: &E, seed: u64, params: Params) -> RunRecord {
    let mut ctx = RunContext::new(seed, params);
    // treu-lint: allow(wall-clock, reason = "wall_seconds is advisory and excluded from the fingerprint")
    let start = Instant::now();
    exp.run(&mut ctx);
    let wall_seconds = start.elapsed().as_secs_f64();
    RunRecord { name: exp.name().to_string(), seed, trail: ctx.trail, wall_seconds }
}

/// Runs an experiment over several seeds, returning one record per seed.
pub fn run_seeds<E: Experiment + ?Sized>(
    exp: &E,
    seeds: &[u64],
    params: &Params,
) -> Vec<RunRecord> {
    seeds.iter().map(|&s| run_once(exp, s, params.clone())).collect()
}

/// Runs the experiment twice with the same seed and panics unless the two
/// provenance trails are identical — the workspace's executable definition
/// of "this experiment is reproducible".
///
/// Returns the (shared) fingerprint on success.
pub fn assert_deterministic<E: Experiment + ?Sized>(exp: &E, seed: u64, params: &Params) -> u64 {
    let a = run_once(exp, seed, params.clone());
    let b = run_once(exp, seed, params.clone());
    assert_eq!(
        a.trail,
        b.trail,
        "experiment '{}' is not deterministic for seed {seed}",
        exp.name()
    );
    a.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noisy;
    impl Experiment for Noisy {
        fn name(&self) -> &str {
            "noisy"
        }
        fn run(&self, ctx: &mut RunContext) {
            let n = ctx.int("n", 10) as usize;
            let mut rng = ctx.rng("draws");
            let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
            ctx.record("mean", mean);
        }
    }

    #[test]
    fn run_once_records_config_and_metrics() {
        let rec = run_once(&Noisy, 42, Params::new().with_int("n", 100));
        assert_eq!(rec.name, "noisy");
        assert_eq!(rec.seed, 42);
        assert!(rec.metric("mean").is_some());
        // Config appears in the trail.
        let rendered = rec.trail.render();
        assert!(rendered.contains("param  n = 100"));
        assert!(rendered.contains("param  seed = 42"));
        assert!(rendered.contains("rng    draws"));
    }

    #[test]
    fn determinism_holds() {
        let fp = assert_deterministic(&Noisy, 7, &Params::new().with_int("n", 50));
        let again = assert_deterministic(&Noisy, 7, &Params::new().with_int("n", 50));
        assert_eq!(fp, again);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_once(&Noisy, 1, Params::new());
        let b = run_once(&Noisy, 2, Params::new());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.metric("mean"), b.metric("mean"));
    }

    #[test]
    fn params_are_order_insensitive() {
        let p1 = Params::new().with_int("a", 1).with_int("b", 2);
        let p2 = Params::new().with_int("b", 2).with_int("a", 1);
        let r1 = run_once(&Noisy, 3, p1);
        let r2 = run_once(&Noisy, 3, p2);
        assert_eq!(r1.fingerprint(), r2.fingerprint());
    }

    #[test]
    fn param_type_coercion() {
        let ctx = RunContext::new(0, Params::new().with_int("k", 5).with_float("x", 1.5));
        assert_eq!(ctx.int("k", 0), 5);
        assert_eq!(ctx.float("k", 0.0), 5.0); // int readable as float
        assert_eq!(ctx.float("x", 0.0), 1.5);
        assert_eq!(ctx.int("x", 9), 9); // float not readable as int
        assert!(ctx.bool("missing", true));
        assert_eq!(ctx.text("missing", "d"), "d");
    }

    #[test]
    fn run_seeds_produces_one_record_each() {
        let recs = run_seeds(&Noisy, &[1, 2, 3], &Params::new());
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].seed, 2);
    }

    struct NonDet(std::cell::Cell<u64>);
    impl Experiment for NonDet {
        fn name(&self) -> &str {
            "nondet"
        }
        fn run(&self, ctx: &mut RunContext) {
            self.0.set(self.0.get() + 1);
            ctx.record("counter", self.0.get() as f64);
        }
    }

    #[test]
    #[should_panic(expected = "not deterministic")]
    fn nondeterminism_is_caught() {
        assert_deterministic(&NonDet(std::cell::Cell::new(0)), 1, &Params::new());
    }

    #[test]
    fn rng_streams_are_independent_of_each_other() {
        let mut ctx = RunContext::new(10, Params::new());
        let mut a = ctx.rng("a");
        let mut b = ctx.rng("b");
        assert_ne!(a.next_u64(), b.next_u64());
        // Re-opening the same tag yields the same stream.
        let mut a2 = ctx.rng("a");
        let mut a3 = RunContext::new(10, Params::new()).rng("a");
        assert_eq!(a2.next_u64(), a3.next_u64());
    }
}
