//! Machine-checkable research-artifact specifications.
//!
//! Section 2.1's pilot study surfaced a finding this module encodes
//! directly: "authors conceive of research artifacts as distinct from the
//! documentation that explains them; to computational researchers,
//! artifacts are code." An [`Artifact`] therefore carries two separable
//! halves — [`CodeComponent`]s (the artifact proper) and
//! [`DocComponent`]s (the explanation) — and completeness is evaluated for
//! each half on its own, so a review can say "the code is complete but the
//! docs are not" rather than collapsing both into one score.

/// A code-shaped component of an artifact (source tree, script, dataset
/// generator, container recipe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeComponent {
    /// Component name (e.g. `"training script"`).
    pub name: String,
    /// Language or format (e.g. `"rust"`, `"dockerfile"`).
    pub kind: String,
    /// Whether the component declares a pinned version/digest.
    pub pinned: bool,
    /// Whether an automated check (test, smoke run) covers it.
    pub checked: bool,
}

/// A documentation component (README, setup instructions, claims list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocComponent {
    /// Document name (e.g. `"README"`).
    pub name: String,
    /// Which claims/steps the document covers.
    pub covers: Vec<String>,
}

/// A falsifiable claim the artifact is supposed to support.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Claim identifier (e.g. `"T1"`, `"E2.10"`).
    pub id: String,
    /// Statement of the claim.
    pub statement: String,
    /// Tolerance for numeric reproduction, when applicable (relative).
    pub tolerance: f64,
}

/// A complete artifact specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Artifact {
    /// Artifact name.
    pub name: String,
    /// Version string.
    pub version: String,
    /// Code half.
    pub code: Vec<CodeComponent>,
    /// Documentation half.
    pub docs: Vec<DocComponent>,
    /// Claims the artifact supports.
    pub claims: Vec<Claim>,
}

/// Completeness report for one artifact, produced by [`Artifact::assess`].
#[derive(Debug, Clone, PartialEq)]
pub struct Assessment {
    /// Fraction of code components that are pinned.
    pub code_pinned_fraction: f64,
    /// Fraction of code components covered by automated checks.
    pub code_checked_fraction: f64,
    /// Claims with no documentation coverage.
    pub undocumented_claims: Vec<String>,
    /// Claims referenced by docs but not declared (dangling references).
    pub dangling_doc_refs: Vec<String>,
}

impl Assessment {
    /// True when the code half is complete: every component pinned and
    /// checked.
    pub fn code_complete(&self) -> bool {
        self.code_pinned_fraction >= 1.0 && self.code_checked_fraction >= 1.0
    }

    /// True when the documentation half is complete: every claim covered
    /// and no dangling references.
    pub fn docs_complete(&self) -> bool {
        self.undocumented_claims.is_empty() && self.dangling_doc_refs.is_empty()
    }
}

impl Artifact {
    /// Starts a named artifact.
    pub fn new(name: &str, version: &str) -> Self {
        Self { name: name.to_string(), version: version.to_string(), ..Self::default() }
    }

    /// Builder: adds a code component.
    pub fn with_code(mut self, name: &str, kind: &str, pinned: bool, checked: bool) -> Self {
        self.code.push(CodeComponent {
            name: name.to_string(),
            kind: kind.to_string(),
            pinned,
            checked,
        });
        self
    }

    /// Builder: adds a documentation component covering the given claim ids.
    pub fn with_doc(mut self, name: &str, covers: &[&str]) -> Self {
        self.docs.push(DocComponent {
            name: name.to_string(),
            covers: covers.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Builder: adds a claim.
    pub fn with_claim(mut self, id: &str, statement: &str, tolerance: f64) -> Self {
        self.claims.push(Claim { id: id.to_string(), statement: statement.to_string(), tolerance });
        self
    }

    /// Assesses completeness of the two halves independently.
    pub fn assess(&self) -> Assessment {
        let n = self.code.len().max(1) as f64;
        let code_pinned_fraction = self.code.iter().filter(|c| c.pinned).count() as f64 / n;
        let code_checked_fraction = self.code.iter().filter(|c| c.checked).count() as f64 / n;

        let covered: std::collections::BTreeSet<&str> =
            self.docs.iter().flat_map(|d| d.covers.iter().map(|s| s.as_str())).collect();
        let declared: std::collections::BTreeSet<&str> =
            self.claims.iter().map(|c| c.id.as_str()).collect();

        let undocumented_claims =
            declared.iter().filter(|id| !covered.contains(**id)).map(|s| s.to_string()).collect();
        let dangling_doc_refs =
            covered.iter().filter(|id| !declared.contains(**id)).map(|s| s.to_string()).collect();

        Assessment {
            code_pinned_fraction,
            code_checked_fraction,
            undocumented_claims,
            dangling_doc_refs,
        }
    }

    /// Finds a claim by id.
    pub fn claim(&self, id: &str) -> Option<&Claim> {
        self.claims.iter().find(|c| c.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_artifact() -> Artifact {
        Artifact::new("treu", "0.1.0")
            .with_code("core library", "rust", true, true)
            .with_code("bench harness", "rust", true, true)
            .with_doc("README", &["T1", "T2"])
            .with_doc("EXPERIMENTS", &["T3"])
            .with_claim("T1", "goal table reproduces", 0.0)
            .with_claim("T2", "confidence table reproduces", 0.05)
            .with_claim("T3", "knowledge table reproduces", 0.05)
    }

    #[test]
    fn complete_artifact_passes_both_halves() {
        let a = full_artifact().assess();
        assert!(a.code_complete());
        assert!(a.docs_complete());
        assert_eq!(a.code_pinned_fraction, 1.0);
    }

    #[test]
    fn code_and_docs_assessed_independently() {
        // Good code, bad docs: the §2.1 "artifacts are code" situation.
        let a = Artifact::new("x", "1")
            .with_code("lib", "rust", true, true)
            .with_claim("C1", "it works", 0.0)
            .assess();
        assert!(a.code_complete());
        assert!(!a.docs_complete());
        assert_eq!(a.undocumented_claims, vec!["C1".to_string()]);

        // Good docs, bad code.
        let b = Artifact::new("y", "1")
            .with_code("lib", "rust", false, false)
            .with_doc("README", &["C1"])
            .with_claim("C1", "it works", 0.0)
            .assess();
        assert!(!b.code_complete());
        assert!(b.docs_complete());
    }

    #[test]
    fn dangling_doc_refs_detected() {
        let a = Artifact::new("z", "1").with_doc("README", &["GHOST"]).assess();
        assert_eq!(a.dangling_doc_refs, vec!["GHOST".to_string()]);
        assert!(!a.docs_complete());
    }

    #[test]
    fn partial_fractions() {
        let a = Artifact::new("w", "1")
            .with_code("a", "rust", true, false)
            .with_code("b", "rust", false, true)
            .assess();
        assert_eq!(a.code_pinned_fraction, 0.5);
        assert_eq!(a.code_checked_fraction, 0.5);
        assert!(!a.code_complete());
    }

    #[test]
    fn empty_artifact_is_doc_complete_but_vacuous() {
        let a = Artifact::new("empty", "0").assess();
        assert!(a.docs_complete());
        assert_eq!(a.code_pinned_fraction, 0.0);
    }

    #[test]
    fn claim_lookup() {
        let art = full_artifact();
        assert_eq!(art.claim("T2").unwrap().tolerance, 0.05);
        assert!(art.claim("nope").is_none());
    }
}
