//! Multi-seed aggregation of run records.
//!
//! A single seeded run answers "what happened"; a *claim* needs the
//! distribution over seeds — exactly the reliability framing the RL project
//! uses and the framing artifact reviewers apply when a rerun doesn't match
//! to the digit. This module folds a set of [`RunRecord`]s into per-metric
//! summaries (mean/std/min/max via the streaming [`Welford`] accumulator)
//! and renders them as a report table.

use crate::experiment::RunRecord;
use crate::report::{Cell, Table};
use std::collections::BTreeMap;
use treu_math::stats::Welford;

/// Summary of one metric across runs.
#[derive(Debug, Clone)]
pub struct MetricSummary {
    /// Streaming moments.
    pub stats: Welford,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl MetricSummary {
    fn new() -> Self {
        Self { stats: Welford::new(), min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    fn add(&mut self, v: f64) {
        self.stats.add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// Aggregates the metrics of many runs (typically one per seed).
///
/// Metrics recorded multiple times within one run contribute their *final*
/// value, matching [`RunRecord::metric`] semantics.
pub fn summarize(records: &[RunRecord]) -> BTreeMap<String, MetricSummary> {
    let mut out: BTreeMap<String, MetricSummary> = BTreeMap::new();
    for rec in records {
        // Last value per name within this record.
        let mut last: BTreeMap<&str, f64> = BTreeMap::new();
        for (name, value) in rec.trail.metrics() {
            last.insert(name, value);
        }
        for (name, value) in last {
            out.entry(name.to_string()).or_insert_with(MetricSummary::new).add(value);
        }
    }
    out
}

/// Renders a summary as a table with one row per metric.
pub fn render_summary(title: &str, summary: &BTreeMap<String, MetricSummary>) -> Table {
    let mut t = Table::new(title, &["metric", "n", "mean", "std", "min", "max"]);
    for (name, s) in summary {
        t.push_row(vec![
            name.as_str().into(),
            Cell::Int(s.stats.count() as i64),
            Cell::Float(s.stats.mean(), 4),
            Cell::Float(s.stats.std_dev(), 4),
            Cell::Float(s.min, 4),
            Cell::Float(s.max, 4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_seeds, Experiment, Params, RunContext};

    struct SeedEcho;
    impl Experiment for SeedEcho {
        fn name(&self) -> &str {
            "seed-echo"
        }
        fn run(&self, ctx: &mut RunContext) {
            ctx.record("seed_mod", (ctx.seed() % 10) as f64);
            ctx.record("constant", 4.5);
            // Overwritten metric: only the final value should count.
            ctx.record("last_wins", 0.0);
            ctx.record("last_wins", 1.0);
        }
    }

    #[test]
    fn summarize_counts_and_moments() {
        let records = run_seeds(&SeedEcho, &[1, 2, 3, 14], &Params::new());
        let s = summarize(&records);
        let c = &s["constant"];
        assert_eq!(c.stats.count(), 4);
        assert_eq!(c.stats.mean(), 4.5);
        assert_eq!(c.stats.std_dev(), 0.0);
        let m = &s["seed_mod"];
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
        assert!((m.stats.mean() - 10.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_metric_takes_final_value() {
        let records = run_seeds(&SeedEcho, &[7], &Params::new());
        let s = summarize(&records);
        assert_eq!(s["last_wins"].stats.mean(), 1.0);
        assert_eq!(s["last_wins"].stats.count(), 1);
    }

    #[test]
    fn empty_input_gives_empty_summary() {
        assert!(summarize(&[]).is_empty());
    }

    #[test]
    fn render_lists_metrics_sorted() {
        let records = run_seeds(&SeedEcho, &[1, 2], &Params::new());
        let table = render_summary("Across seeds", &summarize(&records));
        let s = table.render();
        assert!(s.contains("Across seeds"));
        let pos_c = s.find("constant").unwrap();
        let pos_s = s.find("seed_mod").unwrap();
        assert!(pos_c < pos_s, "BTreeMap ordering in render");
    }
}
