//! Plain-text table rendering.
//!
//! The paper's evaluation is three tables; the survey crate and the
//! examples render their reproductions through this module so all output
//! shares one format. Tables are built row-by-row and rendered with
//! per-column width computation; numeric cells support fixed precision.

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Textual cell.
    Text(String),
    /// Integer cell.
    Int(i64),
    /// Float cell rendered with the given number of decimals.
    Float(f64, usize),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v, prec) => format!("{v:.*}", prec),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

/// A plain-text table with a title, column headers and rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Returns a data cell (row, col).
    pub fn cell(&self, row: usize, col: usize) -> Option<&Cell> {
        self.rows.get(row)?.get(col)
    }

    /// Renders the table: title, rule, aligned header, rule, rows.
    ///
    /// First column is left-aligned, remaining columns right-aligned — the
    /// convention of the paper's tables (label then numbers).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let rendered_rows: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(Cell::render).collect()).collect();
        for row in &rendered_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&"=".repeat(total.max(self.title.len())));
        out.push('\n');
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{:<w$}", cell, w = widths[i]));
                } else {
                    out.push_str(&format!("{:>w$}", cell, w = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        out.push_str(&"-".repeat(total.max(self.title.len())));
        out.push('\n');
        for row in &rendered_rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Formats a labelled scalar comparison line, used by EXPERIMENTS.md
/// tooling: `label: paper=X measured=Y (delta Z%)`.
pub fn comparison_line(label: &str, paper: f64, measured: f64) -> String {
    let delta = if paper == 0.0 { measured - paper } else { (measured - paper) / paper * 100.0 };
    format!("{label}: paper={paper:.3} measured={measured:.3} (delta {delta:+.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "count"]);
        t.push_row(vec!["alpha".into(), Cell::Int(5)]);
        t.push_row(vec!["a-very-long-label".into(), Cell::Int(123)]);
        let s = t.render();
        assert!(s.contains("Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + 2 rows, all the same length after alignment.
        let data: Vec<&&str> = lines
            .iter()
            .filter(|l| l.contains("alpha") || l.contains("count") || l.contains("long"))
            .collect();
        assert_eq!(data.len(), 3);
        assert_eq!(data[0].len(), data[2].len());
    }

    #[test]
    fn float_precision_respected() {
        let c = Cell::Float(3.14659, 2);
        assert_eq!(c.render(), "3.15");
        let c0 = Cell::Float(2.0, 0);
        assert_eq!(c0.render(), "2");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn cell_accessors() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec![Cell::Int(7)]);
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.cell(0, 0), Some(&Cell::Int(7)));
        assert_eq!(t.cell(1, 0), None);
    }

    #[test]
    fn comparison_line_formats() {
        let s = comparison_line("PhD intent", 3.6, 3.6);
        assert!(s.contains("delta +0.0%"), "{s}");
        let z = comparison_line("zero", 0.0, 0.5);
        assert!(z.contains("0.5"));
    }
}
