//! Deterministic fault injection: seeded chaos for the supervisor.
//!
//! The paper's §3 is a catalogue of runs that *failed under contention* —
//! stalled jobs, restaged batches, results lost to crashes — and the
//! artifact-evaluation practice the ROADMAP tracks expects a harness to
//! finish a campaign and report what broke instead of dying wholesale.
//! Proving that property needs failures on demand, and the failures
//! themselves must obey the workspace's determinism contract: a chaos run
//! that cannot be re-run bitwise is exactly as untrustworthy as any other
//! irreproducible result.
//!
//! A [`FaultPlan`] is therefore *seeded and content-addressed* like a
//! cache key: whether a given run is faulted, and how, is a pure function
//! of `(plan, experiment id, run seed)`, and transient faults additionally
//! key on the *attempt* number so a retry schedule can outlast them. The
//! same plan replayed against the same registry injects byte-for-byte the
//! same failures — chaos tests are themselves reproducible experiments.
//!
//! Injection happens through the [`FaultyExperiment`] adapter, which wraps
//! any [`Experiment`] without touching it: experiment crates stay fault-
//! agnostic, there is no unsafe code, and removing the plan removes every
//! trace of the machinery.

use crate::experiment::{Experiment, RunContext};
use std::time::Duration;

/// One way a run can be made to fail (or misbehave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Permanent panic: every attempt dies. Retries cannot save it; the
    /// supervisor must quarantine.
    Panic,
    /// The run takes `ms` extra milliseconds — long enough to trip a
    /// deadline when one is armed, otherwise harmless (wall time is
    /// excluded from trails and fingerprints).
    Delay(u64),
    /// The run completes but its provenance trail is corrupted afterwards
    /// (a replica-keyed metric is flipped in), so verification replicas
    /// disagree: injected irreproducibility.
    CorruptTrail,
    /// Transient error: the first `k` attempts panic, attempt `k` (0-based)
    /// succeeds. A retry budget of at least `k` recovers bitwise-identical
    /// output.
    TransientErr(u32),
}

impl FaultKind {
    /// Short stable name for reports and taxonomy lines.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay(_) => "delay",
            FaultKind::CorruptTrail => "corrupt-trail",
            FaultKind::TransientErr(_) => "transient-err",
        }
    }

    /// Parameterized label for trace events, e.g. `delay(40ms)` or
    /// `transient-err(2)` — deterministic, so it is safe to hash.
    pub fn label(self) -> String {
        match self {
            FaultKind::Panic => "panic".to_string(),
            FaultKind::Delay(ms) => format!("delay({ms}ms)"),
            FaultKind::CorruptTrail => "corrupt-trail".to_string(),
            FaultKind::TransientErr(k) => format!("transient-err({k})"),
        }
    }

    /// True when a sufficient retry budget recovers the fault-free result.
    pub fn is_transient(self) -> bool {
        matches!(self, FaultKind::TransientErr(_) | FaultKind::Delay(_))
    }

    fn encode(self) -> [u8; 9] {
        let (tag, arg): (u8, u64) = match self {
            FaultKind::Panic => (1, 0),
            FaultKind::Delay(ms) => (2, ms),
            FaultKind::CorruptTrail => (3, 0),
            FaultKind::TransientErr(k) => (4, u64::from(k)),
        };
        let mut out = [0u8; 9];
        out[0] = tag;
        out[1..].copy_from_slice(&arg.to_le_bytes());
        out
    }
}

// Fault draws are the canonical separator-mixed FNV-1a fold over their
// key material, mapped to [0, 1) — stable, well-mixed functions shared
// with the run cache's addresses.
use crate::hash::{fnv64_parts, unit};

/// A seeded, content-addressed plan of which runs fail and how.
///
/// The plan is pure data: no RNG state, no wall clock. Every decision is
/// a hash of `(plan seed, experiment id, run seed)`, so concurrent
/// workers, retries and replicas all see one consistent story.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    menu: Vec<FaultKind>,
    /// Ids that always receive a permanent [`FaultKind::Panic`],
    /// regardless of `rate` — the quarantine tests' lever.
    targets: Vec<String>,
}

impl FaultPlan {
    /// A plan drawing from the full fault menu at `rate` (clamped to
    /// `[0, 1]`): panics, delays, trail corruption and transient errors.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self::with_menu(
            seed,
            rate,
            vec![
                FaultKind::Panic,
                FaultKind::Delay(40),
                FaultKind::CorruptTrail,
                FaultKind::TransientErr(1),
                FaultKind::TransientErr(2),
            ],
        )
    }

    /// A transient-only plan: every injected fault is a
    /// [`FaultKind::TransientErr`] of 1..=3 attempts, so a supervisor with
    /// `retries >= 3` always converges to the fault-free result. This is
    /// what `treu chaos` runs.
    pub fn transient(seed: u64, rate: f64) -> Self {
        Self::with_menu(
            seed,
            rate,
            vec![
                FaultKind::TransientErr(1),
                FaultKind::TransientErr(2),
                FaultKind::TransientErr(3),
            ],
        )
    }

    /// A plan with an explicit fault menu.
    pub fn with_menu(seed: u64, rate: f64, menu: Vec<FaultKind>) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0), menu, targets: Vec::new() }
    }

    /// A plan that injects nothing except a permanent panic into the
    /// listed ids — the minimal plan for quarantine-path tests.
    pub fn panic_on(ids: &[&str]) -> Self {
        Self {
            seed: 0,
            rate: 0.0,
            menu: Vec::new(),
            targets: ids.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Adds a permanently-panicking target id to any plan.
    pub fn and_panic_on(mut self, id: &str) -> Self {
        self.targets.push(id.to_string());
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's injection rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The fault menu draws pick from, in draw order. Exposed so the
    /// service layer can serialize a plan over the worker wire protocol
    /// and reconstruct it bitwise on the other side.
    pub fn menu(&self) -> &[FaultKind] {
        &self.menu
    }

    /// Ids that always receive a permanent panic (see
    /// [`FaultPlan::panic_on`]), for the same wire round-trip.
    pub fn targets(&self) -> &[String] {
        &self.targets
    }

    /// The fault (if any) this plan assigns to `(id, run_seed)`. The draw
    /// is attempt-independent: a faulted run keeps its fault kind across
    /// retries (transience lives inside [`FaultKind::TransientErr`]).
    pub fn fault_for(&self, id: &str, run_seed: u64) -> Option<FaultKind> {
        if self.targets.iter().any(|t| t == id) {
            return Some(FaultKind::Panic);
        }
        if self.menu.is_empty() || self.rate <= 0.0 {
            return None;
        }
        let gate = fnv64_parts(&[
            b"fault-gate",
            &self.seed.to_le_bytes(),
            id.as_bytes(),
            &run_seed.to_le_bytes(),
        ]);
        if unit(gate) >= self.rate {
            return None;
        }
        let pick = fnv64_parts(&[
            b"fault-kind",
            &self.seed.to_le_bytes(),
            id.as_bytes(),
            &run_seed.to_le_bytes(),
        ]);
        Some(self.menu[(pick % self.menu.len() as u64) as usize])
    }

    /// The fault actually *active* on one attempt — [`FaultPlan::fault_for`]
    /// narrowed by attempt number, mirroring what
    /// [`crate::fault::FaultyExperiment`] injects: a
    /// [`FaultKind::TransientErr`] stops firing once the attempt index
    /// reaches its budget, every other kind fires on all attempts. This is
    /// what the trace layer records, so fault events appear only on
    /// attempts that were genuinely faulted.
    pub fn fault_at(&self, id: &str, run_seed: u64, attempt: u32) -> Option<FaultKind> {
        match self.fault_for(id, run_seed) {
            Some(FaultKind::TransientErr(k)) if attempt >= k => None,
            other => other,
        }
    }

    /// The first attempt (0-based) at which `(id, run_seed)` succeeds, or
    /// `None` when no retry budget can save it (permanent panic or trail
    /// corruption). Used to size `retries` in the conformance tests.
    pub fn first_clean_attempt(&self, id: &str, run_seed: u64) -> Option<u32> {
        match self.fault_for(id, run_seed) {
            None | Some(FaultKind::Delay(_)) => Some(0),
            Some(FaultKind::TransientErr(k)) => Some(k),
            Some(FaultKind::Panic) | Some(FaultKind::CorruptTrail) => None,
        }
    }

    /// The largest `k` any [`FaultKind::TransientErr`] in the menu can
    /// demand — the retry budget that guarantees convergence for a
    /// transient-only plan.
    pub fn max_transient_attempts(&self) -> u32 {
        self.menu
            .iter()
            .filter_map(|k| match k {
                FaultKind::TransientErr(n) => Some(*n),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// True when every fault this plan can inject is recoverable by
    /// retrying (no permanent panics, no trail corruption, no targets).
    pub fn is_transient_only(&self) -> bool {
        self.targets.is_empty() && self.menu.iter().all(|k| k.is_transient())
    }

    /// Content address of the plan — hash of everything that determines
    /// its behaviour, so reports can name the exact chaos configuration.
    pub fn fingerprint(&self) -> u64 {
        let mut parts: Vec<Vec<u8>> = vec![
            b"fault-plan".to_vec(),
            self.seed.to_le_bytes().to_vec(),
            self.rate.to_bits().to_le_bytes().to_vec(),
        ];
        for k in &self.menu {
            parts.push(k.encode().to_vec());
        }
        for t in &self.targets {
            parts.push(t.as_bytes().to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        fnv64_parts(&refs)
    }

    /// The nonce a [`FaultKind::CorruptTrail`] injection flips into the
    /// trail. Keyed on the *replica* as well as `(id, seed, attempt)` so
    /// two verification replicas corrupt differently — deterministic
    /// corruption that still shows up as a mismatch.
    pub fn corruption_nonce(&self, id: &str, run_seed: u64, attempt: u32, replica: u32) -> u64 {
        fnv64_parts(&[
            b"corrupt",
            &self.seed.to_le_bytes(),
            id.as_bytes(),
            &run_seed.to_le_bytes(),
            &attempt.to_le_bytes(),
            &replica.to_le_bytes(),
        ])
    }
}

/// An epoch-phased soak schedule: fault classes cycle in and out across
/// seeded epochs, chaos-mesh style, so a sustained run sees *evolving*
/// pressure instead of one static plan.
///
/// Like [`FaultPlan`], the schedule is pure data: which plan governs
/// epoch `e` is a hash of `(schedule seed, e)` and nothing else. Every
/// per-epoch plan is transient-only, so a supervisor armed with
/// [`SoakSchedule::retry_budget`] retries is guaranteed to converge to
/// fault-free results in every epoch — the soak's zero-drift acceptance
/// criterion is achievable by construction, and any divergence is a real
/// bug, not an artifact of the chaos.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakSchedule {
    seed: u64,
    rate: f64,
    epochs: u32,
}

impl SoakSchedule {
    /// A schedule of `epochs` epochs at base injection `rate` (clamped to
    /// `[0, 1]`). Epoch 0 is always fault-free — the in-band warmup every
    /// later epoch's results are implicitly compared against.
    pub fn new(seed: u64, rate: f64, epochs: u32) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0), epochs: epochs.max(1) }
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The schedule's base injection rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of epochs.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// The fault plan governing `epoch`, or `None` for a fault-free
    /// epoch. Epoch 0 is always clean; later epochs rotate through
    /// seeded transient-only menus — short and long transient bursts,
    /// mixed menus with small delays — and roughly one in four is a
    /// clean trough so recovery under zero pressure is exercised too.
    pub fn plan_for(&self, epoch: u32) -> Option<FaultPlan> {
        if epoch == 0 || epoch >= self.epochs || self.rate <= 0.0 {
            return None;
        }
        let draw = fnv64_parts(&[b"soak-epoch", &self.seed.to_le_bytes(), &epoch.to_le_bytes()]);
        let menu: Vec<FaultKind> = match draw % 4 {
            0 => vec![FaultKind::TransientErr(1), FaultKind::TransientErr(2)],
            1 => vec![FaultKind::TransientErr(2), FaultKind::TransientErr(3)],
            2 => vec![FaultKind::TransientErr(1), FaultKind::TransientErr(3), FaultKind::Delay(2)],
            _ => return None, // clean trough
        };
        // Modulate the pressure per epoch: between 0.5× and 1.5× of the
        // base rate, drawn from the same hash so replays agree.
        let scale = 0.5 + unit(draw.rotate_left(17));
        let plan_seed =
            fnv64_parts(&[b"soak-plan-seed", &self.seed.to_le_bytes(), &epoch.to_le_bytes()]);
        Some(FaultPlan::with_menu(plan_seed, (self.rate * scale).min(1.0), menu))
    }

    /// The retry budget that guarantees convergence in *every* epoch: the
    /// worst transient any epoch menu can demand.
    pub fn retry_budget(&self) -> u32 {
        (0..self.epochs)
            .filter_map(|e| self.plan_for(e))
            .map(|p| p.max_transient_attempts())
            .max()
            .unwrap_or(0)
    }

    /// Content address of the schedule — everything that determines its
    /// behaviour, for naming the exact soak configuration in reports.
    pub fn fingerprint(&self) -> u64 {
        fnv64_parts(&[
            b"soak-schedule",
            &self.seed.to_le_bytes(),
            &self.rate.to_bits().to_le_bytes(),
            &self.epochs.to_le_bytes(),
        ])
    }
}

/// A seeded plan of *process* kills for the sharded verification
/// service's chaos drills: which worker incarnations get SIGKILLed, and
/// after how many dispatched shards.
///
/// Like [`FaultPlan`], the plan is pure data — whether incarnation `k` of
/// worker `w` is killed, and when, is a hash of `(plan seed, w, k)` and
/// nothing else, so a kill schedule replays bitwise. The kill point is
/// expressed in *dispatched shards*: the coordinator delivers the n-th
/// shard to the doomed incarnation and then kills it immediately, which
/// guarantees the SIGKILL lands mid-shard (the worker can never have
/// answered a frame it has not yet been sent). Results survive by
/// construction: the dead incarnation's in-flight shard is requeued and
/// recomputed, and every task result is a pure function of its spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillPlan {
    seed: u64,
    rate: f64,
}

impl KillPlan {
    /// A plan killing every doomed incarnation drawn at `rate` (clamped
    /// to `[0, 1]`); `new` uses the default drill rate of 0.5 — roughly
    /// every other incarnation dies, so respawns *and* clean completions
    /// are both exercised.
    pub fn new(seed: u64) -> Self {
        Self::with_rate(seed, 0.5)
    }

    /// A plan with an explicit kill rate. `1.0` kills every incarnation,
    /// which drives the respawn budget to exhaustion and forces the
    /// coordinator's graceful in-process degradation.
    pub fn with_rate(seed: u64, rate: f64) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0) }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's kill rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The 1-based dispatched-shard count at which incarnation
    /// `incarnation` of worker `worker` is SIGKILLed, or `None` when this
    /// incarnation survives. The draw is content-addressed: replays and
    /// concurrent observers agree.
    pub fn kill_on_dispatch(&self, worker: usize, incarnation: u32) -> Option<u64> {
        if self.rate <= 0.0 {
            return None;
        }
        let gate = fnv64_parts(&[
            b"kill-gate",
            &self.seed.to_le_bytes(),
            &(worker as u64).to_le_bytes(),
            &incarnation.to_le_bytes(),
        ]);
        if unit(gate) >= self.rate {
            return None;
        }
        let pick = fnv64_parts(&[
            b"kill-shard",
            &self.seed.to_le_bytes(),
            &(worker as u64).to_le_bytes(),
            &incarnation.to_le_bytes(),
        ]);
        Some(1 + pick % 2)
    }

    /// Content address of the plan, for naming the exact kill schedule in
    /// reports.
    pub fn fingerprint(&self) -> u64 {
        fnv64_parts(&[b"kill-plan", &self.seed.to_le_bytes(), &self.rate.to_bits().to_le_bytes()])
    }
}

/// Deterministic retry backoff: a fixed doubling table plus seeded jitter.
///
/// `attempt` is the attempt about to run (1 = first retry). The jitter is
/// a hash of `(id, run_seed, attempt)` — no wall clock, no RNG state — so
/// the whole retry schedule is part of the reproducible record. The table
/// is in milliseconds and deliberately small: tests and CI retry in tens
/// of milliseconds, while the doubling shape matches what a production
/// backoff would scale up.
pub fn backoff_millis(attempt: u32, id: &str, run_seed: u64) -> u64 {
    const BASE_MS: [u64; 6] = [0, 2, 4, 8, 16, 32];
    let base = BASE_MS[(attempt as usize).min(BASE_MS.len() - 1)];
    let span = base / 2 + 1;
    let h =
        fnv64_parts(&[b"backoff", id.as_bytes(), &run_seed.to_le_bytes(), &attempt.to_le_bytes()]);
    base + h % span
}

/// Wraps an [`Experiment`] so a [`FaultPlan`] can fail it on purpose.
///
/// The adapter is the only injection point: experiment crates never see
/// the plan, and an unfaulted `(id, seed)` pair runs the inner experiment
/// untouched — same trail, same fingerprint.
pub struct FaultyExperiment<'a, E: Experiment + ?Sized> {
    inner: &'a E,
    plan: &'a FaultPlan,
    id: &'a str,
    attempt: u32,
    replica: u32,
}

impl<'a, E: Experiment + ?Sized> FaultyExperiment<'a, E> {
    /// Wraps `inner` under `plan` for one attempt of one replica of the
    /// run registered as `id`.
    pub fn new(inner: &'a E, plan: &'a FaultPlan, id: &'a str, attempt: u32, replica: u32) -> Self {
        Self { inner, plan, id, attempt, replica }
    }
}

impl<E: Experiment + ?Sized> Experiment for FaultyExperiment<'_, E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn run(&self, ctx: &mut RunContext) {
        let Some(fault) = self.plan.fault_for(self.id, ctx.seed()) else {
            return self.inner.run(ctx);
        };
        match fault {
            FaultKind::Panic => panic!(
                "injected fault: permanent panic (id={}, seed={}, attempt={})",
                self.id,
                ctx.seed(),
                self.attempt
            ),
            FaultKind::TransientErr(k) if self.attempt < k => panic!(
                "injected fault: transient error {}/{k} (id={}, seed={})",
                self.attempt + 1,
                self.id,
                ctx.seed()
            ),
            FaultKind::TransientErr(_) => self.inner.run(ctx),
            FaultKind::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.run(ctx)
            }
            FaultKind::CorruptTrail => {
                self.inner.run(ctx);
                let nonce =
                    self.plan.corruption_nonce(self.id, ctx.seed(), self.attempt, self.replica);
                // An integer-valued f64 (never NaN) so trail equality
                // behaves; replica-keyed so the two verification replicas
                // disagree and the corruption is *caught*.
                ctx.record("__injected_trail_corruption", (nonce >> 11) as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_once, Params};

    struct Echo;
    impl Experiment for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn run(&self, ctx: &mut RunContext) {
            let mut rng = ctx.rng("draws");
            ctx.record("x", rng.next_f64());
        }
    }

    #[test]
    fn draws_are_deterministic_and_rate_scaled() {
        let plan = FaultPlan::new(7, 0.25);
        let again = FaultPlan::new(7, 0.25);
        let ids = ["A", "B", "C", "D"];
        let mut faulted = 0usize;
        for id in ids {
            for seed in 0..200u64 {
                assert_eq!(plan.fault_for(id, seed), again.fault_for(id, seed));
                if plan.fault_for(id, seed).is_some() {
                    faulted += 1;
                }
            }
        }
        let frac = faulted as f64 / 800.0;
        assert!((0.15..0.35).contains(&frac), "injection rate off target: {frac}");
        // A different plan seed redraws.
        let other = FaultPlan::new(8, 0.25);
        assert!(
            (0..200u64).any(|s| plan.fault_for("A", s) != other.fault_for("A", s)),
            "plan seed must matter"
        );
    }

    #[test]
    fn zero_rate_injects_nothing_and_targets_always_panic() {
        let plan = FaultPlan::new(1, 0.0).and_panic_on("bad");
        for seed in 0..50u64 {
            assert_eq!(plan.fault_for("ok", seed), None);
            assert_eq!(plan.fault_for("bad", seed), Some(FaultKind::Panic));
        }
        assert!(!plan.is_transient_only());
        assert_eq!(plan.first_clean_attempt("bad", 3), None);
    }

    #[test]
    fn transient_plans_converge_within_the_advertised_budget() {
        let plan = FaultPlan::transient(11, 0.3);
        assert!(plan.is_transient_only());
        let budget = plan.max_transient_attempts();
        assert_eq!(budget, 3);
        for seed in 0..100u64 {
            let first = plan.first_clean_attempt("X", seed).expect("transient plans always clear");
            assert!(first <= budget, "clean attempt {first} exceeds budget {budget}");
        }
    }

    #[test]
    fn fingerprint_covers_seed_rate_menu_and_targets() {
        let base = FaultPlan::new(1, 0.2);
        assert_eq!(base.fingerprint(), FaultPlan::new(1, 0.2).fingerprint());
        assert_ne!(base.fingerprint(), FaultPlan::new(2, 0.2).fingerprint());
        assert_ne!(base.fingerprint(), FaultPlan::new(1, 0.3).fingerprint());
        assert_ne!(base.fingerprint(), FaultPlan::transient(1, 0.2).fingerprint());
        assert_ne!(base.fingerprint(), FaultPlan::new(1, 0.2).and_panic_on("x").fingerprint());
    }

    #[test]
    fn adapter_is_transparent_for_unfaulted_runs() {
        let plan = FaultPlan::new(1, 0.0);
        let plain = run_once(&Echo, 5, Params::new());
        let wrapped = run_once(&FaultyExperiment::new(&Echo, &plan, "E", 0, 0), 5, Params::new());
        assert_eq!(plain.trail, wrapped.trail, "no fault drawn ⇒ bitwise-identical trail");
        assert_eq!(wrapped.name, "echo");
    }

    #[test]
    fn transient_fault_panics_then_clears() {
        let plan = FaultPlan::with_menu(3, 1.0, vec![FaultKind::TransientErr(2)]);
        let attempt0 = std::panic::catch_unwind(|| {
            run_once(&FaultyExperiment::new(&Echo, &plan, "E", 0, 0), 5, Params::new())
        });
        assert!(attempt0.is_err(), "attempt 0 must fail");
        let attempt2 = run_once(&FaultyExperiment::new(&Echo, &plan, "E", 2, 0), 5, Params::new());
        let plain = run_once(&Echo, 5, Params::new());
        assert_eq!(attempt2.trail, plain.trail, "post-transient run is fault-free bitwise");
    }

    #[test]
    fn corrupt_trail_diverges_across_replicas() {
        let plan = FaultPlan::with_menu(3, 1.0, vec![FaultKind::CorruptTrail]);
        let a = run_once(&FaultyExperiment::new(&Echo, &plan, "E", 0, 0), 5, Params::new());
        let b = run_once(&FaultyExperiment::new(&Echo, &plan, "E", 0, 1), 5, Params::new());
        assert_ne!(a.trail, b.trail, "replica-keyed corruption must be caught as a mismatch");
        // But each replica's corruption is itself deterministic.
        let a2 = run_once(&FaultyExperiment::new(&Echo, &plan, "E", 0, 0), 5, Params::new());
        assert_eq!(a.trail, a2.trail);
    }

    #[test]
    fn soak_schedule_is_seeded_phased_and_transient_only() {
        let sched = SoakSchedule::new(42, 0.25, 12);
        let again = SoakSchedule::new(42, 0.25, 12);
        assert_eq!(sched.plan_for(0), None, "epoch 0 is always the clean warmup");
        let mut faulted_epochs = 0usize;
        let mut distinct = std::collections::BTreeSet::new();
        for e in 0..12 {
            assert_eq!(sched.plan_for(e), again.plan_for(e), "replays must agree");
            if let Some(plan) = sched.plan_for(e) {
                faulted_epochs += 1;
                assert!(plan.is_transient_only(), "epoch {e} plan must be recoverable");
                assert!(plan.rate() > 0.0 && plan.rate() <= 0.375, "0.5x..1.5x of base");
                distinct.insert(plan.fingerprint());
            }
        }
        assert!(faulted_epochs >= 4, "most epochs apply pressure: {faulted_epochs}/12");
        assert!(faulted_epochs < 11, "some epochs are clean troughs: {faulted_epochs}/12");
        assert!(distinct.len() >= 2, "fault classes must actually phase in and out");
        assert!(sched.retry_budget() <= 3);
        assert!(sched.retry_budget() >= 1, "pressure epochs need a real budget");
        // A different schedule seed re-phases the epochs.
        let other = SoakSchedule::new(43, 0.25, 12);
        assert!(
            (0..12).any(|e| sched.plan_for(e) != other.plan_for(e)),
            "schedule seed must matter"
        );
        assert_ne!(sched.fingerprint(), other.fingerprint());
    }

    #[test]
    fn soak_schedule_zero_rate_is_entirely_clean() {
        let sched = SoakSchedule::new(5, 0.0, 8);
        assert!((0..8).all(|e| sched.plan_for(e).is_none()));
        assert_eq!(sched.retry_budget(), 0);
    }

    #[test]
    fn kill_plan_is_seeded_rate_scaled_and_mid_shard() {
        let plan = KillPlan::new(9);
        let again = KillPlan::new(9);
        let mut killed = 0usize;
        for w in 0..8usize {
            for k in 0..25u32 {
                assert_eq!(plan.kill_on_dispatch(w, k), again.kill_on_dispatch(w, k));
                if let Some(n) = plan.kill_on_dispatch(w, k) {
                    killed += 1;
                    assert!((1..=2).contains(&n), "kill point must be an early shard: {n}");
                }
            }
        }
        let frac = killed as f64 / 200.0;
        assert!((0.35..0.65).contains(&frac), "kill rate off the 0.5 target: {frac}");
        // Rate 0 spares everyone; rate 1 kills every incarnation.
        assert!((0..20).all(|k| KillPlan::with_rate(9, 0.0).kill_on_dispatch(0, k).is_none()));
        assert!((0..20).all(|k| KillPlan::with_rate(9, 1.0).kill_on_dispatch(0, k).is_some()));
        // Seed matters.
        let other = KillPlan::new(10);
        assert!((0..25u32).any(|k| plan.kill_on_dispatch(0, k) != other.kill_on_dispatch(0, k)));
        assert_ne!(plan.fingerprint(), other.fingerprint());
        assert_ne!(plan.fingerprint(), KillPlan::with_rate(9, 1.0).fingerprint());
    }

    #[test]
    fn plan_menu_and_targets_are_observable_for_the_wire() {
        let plan = FaultPlan::transient(3, 0.2).and_panic_on("bad");
        assert_eq!(plan.menu().len(), 3);
        assert!(plan.menu().iter().all(|k| matches!(k, FaultKind::TransientErr(_))));
        assert_eq!(plan.targets(), ["bad".to_string()]);
        let rebuilt = FaultPlan::with_menu(plan.seed(), plan.rate(), plan.menu().to_vec())
            .and_panic_on("bad");
        assert_eq!(rebuilt, plan, "accessors must suffice to reconstruct a plan bitwise");
        assert_eq!(rebuilt.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        for attempt in 1..8u32 {
            let a = backoff_millis(attempt, "E", 7);
            assert_eq!(a, backoff_millis(attempt, "E", 7), "jitter must be seeded, not sampled");
        }
        assert_eq!(backoff_millis(0, "E", 7), 0, "attempt 0 never sleeps");
        let late = backoff_millis(5, "E", 7);
        assert!((32..=48).contains(&late), "base 32 + jitter <= span: {late}");
        assert!(backoff_millis(1, "A", 1) <= 3, "first retry stays within base 2 + jitter");
    }
}
