//! Provenance trails: append-only records of what a run actually did.
//!
//! A [`Trail`] collects ordered [`Event`]s — parameters read, RNG streams
//! opened, metrics recorded, free-form notes — and can produce a stable
//! 64-bit [`Trail::fingerprint`] over its canonical encoding. Two runs of
//! the same experiment are *reproductions of each other* exactly when their
//! fingerprints match; the experiment runner uses this to implement
//! determinism checks, and the badge evaluator uses it as evidence for the
//! "Results Reproduced" badge.
//!
//! Metric values are hashed via their IEEE-754 bit patterns, so the
//! fingerprint is sensitive to any numeric difference, including ones far
//! below printing precision.
//!
//! The rendered text form escapes structural characters (backslash,
//! newline, carriage return, and — in key position — `=` and `<`) so that
//! [`Trail::parse`] is the exact inverse of [`Trail::render`] for *any*
//! event content: a parameter key containing `" = "` or a note containing
//! an embedded newline can no longer forge extra lines or re-split into
//! different events. This matters beyond cosmetics: the attestation layer
//! ([`crate::attest`]) content-addresses rendered trail text, so the
//! text form must be injective.

/// Escapes a string for value position in a rendered line: `\` → `\\`,
/// newline → `\n`, carriage return → `\r`. Keeps every line one line.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a string for key position (left of a ` = ` or ` <- `
/// separator): everything [`escape_text`] escapes, plus `=` → `\=` and
/// `<` → `\<`, so the first unescaped separator in a line is always the
/// real one.
pub fn escape_key(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '=' => out.push_str("\\="),
            '<' => out.push_str("\\<"),
            _ => out.push(c),
        }
    }
    out
}

/// Exact inverse of [`escape_text`]/[`escape_key`]. Fails closed: an
/// unknown escape sequence or a dangling trailing backslash returns
/// `None` instead of guessing.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            '=' => out.push('='),
            '<' => out.push('<'),
            _ => return None,
        }
    }
    Some(out)
}

/// Renders an `f64` so that parsing the text recovers the exact bit
/// pattern. Finite values use Rust's shortest-round-trip formatting;
/// non-canonical NaNs (any payload other than `f64::NAN`) carry their
/// bits explicitly as `NaN#<16 hex digits>`.
fn render_f64(v: f64) -> String {
    if v.is_nan() && v.to_bits() != f64::NAN.to_bits() {
        format!("NaN#{:016x}", v.to_bits())
    } else {
        format!("{v}")
    }
}

/// Exact inverse of [`render_f64`]; also accepts any standard float
/// literal Rust's `f64::from_str` does.
fn parse_f64(s: &str) -> Option<f64> {
    if let Some(hex) = s.strip_prefix("NaN#") {
        let v = f64::from_bits(u64::from_str_radix(hex, 16).ok()?);
        return v.is_nan().then_some(v);
    }
    s.parse().ok()
}

/// Parses a rendered seed of the form `0x<1..=16 hex digits>`. Exactly
/// one `0x` prefix is stripped — `0x0x2a` is malformed, not `0x2a` — and
/// every remaining character must be a hex digit (so `from_str_radix`
/// leniencies like a leading `+` are rejected too).
fn parse_seed(s: &str) -> Option<u64> {
    let hex = s.strip_prefix("0x")?;
    if hex.is_empty() || hex.len() > 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// One provenance event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A named parameter was set or read, with its rendered value.
    Param {
        /// Parameter key.
        key: String,
        /// Canonical rendering of the value.
        value: String,
    },
    /// A derived RNG stream was opened.
    RngStream {
        /// The tag the stream was derived with.
        tag: String,
        /// The derived 64-bit seed.
        seed: u64,
    },
    /// A scalar metric was recorded.
    Metric {
        /// Metric name.
        name: String,
        /// Metric value.
        value: f64,
    },
    /// A free-form annotation.
    Note(String),
}

/// An append-only sequence of provenance events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trail {
    events: Vec<Event>,
}

impl Trail {
    /// Creates an empty trail.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Records a parameter event.
    pub fn param(&mut self, key: &str, value: impl ToString) {
        self.push(Event::Param { key: key.to_string(), value: value.to_string() });
    }

    /// Records an RNG-stream event.
    pub fn rng_stream(&mut self, tag: &str, seed: u64) {
        self.push(Event::RngStream { tag: tag.to_string(), seed });
    }

    /// Records a metric event.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.push(Event::Metric { name: name.to_string(), value });
    }

    /// Records a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.push(Event::Note(text.into()));
    }

    /// All events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All metric events as `(name, value)` pairs, in recording order.
    pub fn metrics(&self) -> Vec<(&str, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Metric { name, value } => Some((name.as_str(), *value)),
                _ => None,
            })
            .collect()
    }

    /// The most recent value of a named metric, if recorded.
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.events.iter().rev().find_map(|e| match e {
            Event::Metric { name: n, value } if n == name => Some(*value),
            _ => None,
        })
    }

    /// Stable 64-bit fingerprint of the canonical encoding of the trail.
    ///
    /// FNV-1a over a type-tagged byte serialization. Equal trails always
    /// produce equal fingerprints; differing numeric values (at the bit
    /// level) produce differing fingerprints with overwhelming probability.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for e in &self.events {
            match e {
                Event::Param { key, value } => {
                    feed(b"P");
                    feed(key.as_bytes());
                    feed(b"=");
                    feed(value.as_bytes());
                }
                Event::RngStream { tag, seed } => {
                    feed(b"R");
                    feed(tag.as_bytes());
                    feed(&seed.to_le_bytes());
                }
                Event::Metric { name, value } => {
                    feed(b"M");
                    feed(name.as_bytes());
                    feed(&value.to_bits().to_le_bytes());
                }
                Event::Note(text) => {
                    feed(b"N");
                    feed(text.as_bytes());
                }
            }
            feed(&[0u8]); // event separator
        }
        h
    }

    /// Parses a trail back from its [`Trail::render`] text, enabling
    /// plain-text archival of run provenance alongside an artifact.
    ///
    /// Exact inverse of [`Trail::render`]: keys and values are unescaped
    /// after splitting on the first unescaped separator, metric values
    /// round-trip bitwise (including non-canonical NaN payloads via the
    /// `NaN#<bits>` form), and seeds must carry exactly one `0x` prefix.
    /// Returns `None` on any malformed line, unknown escape, or bad seed.
    pub fn parse(text: &str) -> Option<Trail> {
        let mut t = Trail::new();
        for line in text.lines() {
            let line = line.trim_start();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("param  ") {
                let (k, v) = rest.split_once(" = ")?;
                t.param(&unescape(k)?, unescape(v)?);
            } else if let Some(rest) = line.strip_prefix("rng    ") {
                let (tag, seed) = rest.split_once(" <- ")?;
                let seed = parse_seed(seed.trim())?;
                t.rng_stream(&unescape(tag)?, seed);
            } else if let Some(rest) = line.strip_prefix("metric ") {
                let (name, v) = rest.split_once(" = ")?;
                t.metric(&unescape(name)?, parse_f64(v.trim())?);
            } else if let Some(rest) = line.strip_prefix("note   ") {
                t.note(unescape(rest)?);
            } else {
                return None;
            }
        }
        Some(t)
    }

    /// Renders the trail as indented plain text for reports and debugging.
    ///
    /// Structural characters in event content are escaped (see the module
    /// docs), so the rendered form is injective: distinct trails render to
    /// distinct text and [`Trail::parse`] recovers the events exactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                Event::Param { key, value } => out.push_str(&format!(
                    "  param  {} = {}\n",
                    escape_key(key),
                    escape_text(value)
                )),
                Event::RngStream { tag, seed } => {
                    out.push_str(&format!("  rng    {} <- {seed:#018x}\n", escape_key(tag)))
                }
                Event::Metric { name, value } => out.push_str(&format!(
                    "  metric {} = {}\n",
                    escape_key(name),
                    render_f64(*value)
                )),
                Event::Note(text) => out.push_str(&format!("  note   {}\n", escape_text(text))),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trail() -> Trail {
        let mut t = Trail::new();
        t.param("n", 100);
        t.rng_stream("data", 0xDEAD);
        t.metric("accuracy", 0.93);
        t.note("finished");
        t
    }

    #[test]
    fn events_are_ordered() {
        let t = sample_trail();
        assert_eq!(t.len(), 4);
        assert!(matches!(t.events()[0], Event::Param { .. }));
        assert!(matches!(t.events()[3], Event::Note(_)));
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        let a = sample_trail();
        let b = sample_trail();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample_trail();
        c.metric("accuracy", 0.93 + 1e-15);
        assert_ne!(a.fingerprint(), c.fingerprint(), "tiny numeric change must alter fingerprint");
    }

    #[test]
    fn fingerprint_sensitive_to_order() {
        let mut a = Trail::new();
        a.note("x");
        a.note("y");
        let mut b = Trail::new();
        b.note("y");
        b.note("x");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_event_kinds() {
        // A note "n=1" must not collide with a param n=1.
        let mut a = Trail::new();
        a.note("n=1");
        let mut b = Trail::new();
        b.param("n", 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn metric_lookup_returns_latest() {
        let mut t = Trail::new();
        t.metric("loss", 1.0);
        t.metric("loss", 0.5);
        assert_eq!(t.metric_value("loss"), Some(0.5));
        assert_eq!(t.metric_value("missing"), None);
        assert_eq!(t.metrics().len(), 2);
    }

    #[test]
    fn render_contains_all_events() {
        let s = sample_trail().render();
        assert!(s.contains("param  n = 100"));
        assert!(s.contains("metric accuracy"));
        assert!(s.contains("note   finished"));
    }

    #[test]
    fn render_parse_roundtrip_preserves_fingerprint() {
        let t = sample_trail();
        let parsed = Trail::parse(&t.render()).expect("parses");
        assert_eq!(parsed, t);
        assert_eq!(parsed.fingerprint(), t.fingerprint());
    }

    #[test]
    fn parse_roundtrips_awkward_metric_values() {
        let mut t = Trail::new();
        t.metric("tiny", 1e-300);
        t.metric("neg", -0.1);
        t.metric("third", 1.0 / 3.0);
        let parsed = Trail::parse(&t.render()).expect("parses");
        assert_eq!(parsed.fingerprint(), t.fingerprint(), "bitwise metric roundtrip");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Trail::parse("nonsense line"), None);
        assert_eq!(Trail::parse("metric broken"), None);
        assert_eq!(Trail::parse("rng    x <- zz"), None);
        // Empty text parses to the empty trail.
        assert_eq!(Trail::parse(""), Some(Trail::new()));
    }

    #[test]
    fn parse_rejects_malformed_seeds() {
        // Exactly one 0x prefix: the old trim_start_matches("0x") accepted
        // a repeated prefix, silently reading 0x0x2a as 0x2a.
        assert_eq!(Trail::parse("rng    x <- 0x0x2a"), None);
        // from_str_radix's leading-sign leniency must not leak through.
        assert_eq!(Trail::parse("rng    x <- 0x+2a"), None);
        // The prefix is mandatory and the digits non-empty, <= 16.
        assert_eq!(Trail::parse("rng    x <- 2a"), None);
        assert_eq!(Trail::parse("rng    x <- 0x"), None);
        assert_eq!(Trail::parse("rng    x <- 0x00000000000000001"), None);
        // A well-formed seed still parses.
        let t = Trail::parse("rng    x <- 0x2a").expect("valid seed");
        assert_eq!(t.events()[0], Event::RngStream { tag: "x".into(), seed: 0x2a });
    }

    #[test]
    fn adversarial_content_roundtrips_exactly() {
        let mut t = Trail::new();
        t.param("key = with separator", "value\nwith newline");
        t.param("tricky\\=", " leading and trailing ");
        t.metric("name <- arrow", f64::NAN);
        t.metric("naïve ünicode", f64::NEG_INFINITY);
        t.metric("neg zero", -0.0);
        t.rng_stream("tag <- fake", 0xDEAD);
        t.note("note that looks like\n  param  x = 1");
        t.note("");
        let rendered = t.render();
        let parsed = Trail::parse(&rendered).expect("escaped text parses");
        // NaN breaks PartialEq, so compare the canonical encodings.
        assert_eq!(parsed.render(), rendered);
        assert_eq!(parsed.fingerprint(), t.fingerprint());
        assert_eq!(parsed.len(), t.len());
        // The forged note must still be one note, not a param event.
        assert!(matches!(&parsed.events()[6], Event::Note(n) if n.contains("param  x = 1")));
    }

    #[test]
    fn injection_cannot_forge_events() {
        // Before escaping, this key re-split into a different param and the
        // value's newline forged a second line that parse rejected (or
        // worse, accepted as a foreign event).
        let mut t = Trail::new();
        t.param("a = b", "c");
        let parsed = Trail::parse(&t.render()).expect("parses");
        assert_eq!(parsed, t);
        assert_eq!(parsed.events().len(), 1);
        assert_eq!(parsed.events()[0], Event::Param { key: "a = b".into(), value: "c".into() });
    }

    #[test]
    fn unescape_fails_closed() {
        assert_eq!(unescape("trailing\\"), None);
        assert_eq!(unescape("unknown \\q escape"), None);
        assert_eq!(unescape("fine \\\\ \\n \\r \\= \\<"), Some("fine \\ \n \r = <".into()));
    }

    #[test]
    fn noncanonical_nan_roundtrips_bitwise() {
        let payload = f64::from_bits(0x7FF8_0000_0000_BEEF);
        let mut t = Trail::new();
        t.metric("weird", payload);
        let rendered = t.render();
        assert!(rendered.contains("NaN#7ff800000000beef"), "{rendered}");
        let parsed = Trail::parse(&rendered).expect("parses");
        assert_eq!(parsed.fingerprint(), t.fingerprint(), "bitwise NaN payload roundtrip");
        // A NaN# form whose bits are not actually a NaN is malformed.
        assert_eq!(Trail::parse("metric x = NaN#0000000000000001"), None);
    }

    #[test]
    fn empty_trail() {
        let t = Trail::new();
        assert!(t.is_empty());
        assert_eq!(t.fingerprint(), Trail::new().fingerprint());
    }
}
