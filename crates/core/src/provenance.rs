//! Provenance trails: append-only records of what a run actually did.
//!
//! A [`Trail`] collects ordered [`Event`]s — parameters read, RNG streams
//! opened, metrics recorded, free-form notes — and can produce a stable
//! 64-bit [`Trail::fingerprint`] over its canonical encoding. Two runs of
//! the same experiment are *reproductions of each other* exactly when their
//! fingerprints match; the experiment runner uses this to implement
//! determinism checks, and the badge evaluator uses it as evidence for the
//! "Results Reproduced" badge.
//!
//! Metric values are hashed via their IEEE-754 bit patterns, so the
//! fingerprint is sensitive to any numeric difference, including ones far
//! below printing precision.

/// One provenance event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A named parameter was set or read, with its rendered value.
    Param {
        /// Parameter key.
        key: String,
        /// Canonical rendering of the value.
        value: String,
    },
    /// A derived RNG stream was opened.
    RngStream {
        /// The tag the stream was derived with.
        tag: String,
        /// The derived 64-bit seed.
        seed: u64,
    },
    /// A scalar metric was recorded.
    Metric {
        /// Metric name.
        name: String,
        /// Metric value.
        value: f64,
    },
    /// A free-form annotation.
    Note(String),
}

/// An append-only sequence of provenance events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trail {
    events: Vec<Event>,
}

impl Trail {
    /// Creates an empty trail.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Records a parameter event.
    pub fn param(&mut self, key: &str, value: impl ToString) {
        self.push(Event::Param { key: key.to_string(), value: value.to_string() });
    }

    /// Records an RNG-stream event.
    pub fn rng_stream(&mut self, tag: &str, seed: u64) {
        self.push(Event::RngStream { tag: tag.to_string(), seed });
    }

    /// Records a metric event.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.push(Event::Metric { name: name.to_string(), value });
    }

    /// Records a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.push(Event::Note(text.into()));
    }

    /// All events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All metric events as `(name, value)` pairs, in recording order.
    pub fn metrics(&self) -> Vec<(&str, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Metric { name, value } => Some((name.as_str(), *value)),
                _ => None,
            })
            .collect()
    }

    /// The most recent value of a named metric, if recorded.
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.events.iter().rev().find_map(|e| match e {
            Event::Metric { name: n, value } if n == name => Some(*value),
            _ => None,
        })
    }

    /// Stable 64-bit fingerprint of the canonical encoding of the trail.
    ///
    /// FNV-1a over a type-tagged byte serialization. Equal trails always
    /// produce equal fingerprints; differing numeric values (at the bit
    /// level) produce differing fingerprints with overwhelming probability.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for e in &self.events {
            match e {
                Event::Param { key, value } => {
                    feed(b"P");
                    feed(key.as_bytes());
                    feed(b"=");
                    feed(value.as_bytes());
                }
                Event::RngStream { tag, seed } => {
                    feed(b"R");
                    feed(tag.as_bytes());
                    feed(&seed.to_le_bytes());
                }
                Event::Metric { name, value } => {
                    feed(b"M");
                    feed(name.as_bytes());
                    feed(&value.to_bits().to_le_bytes());
                }
                Event::Note(text) => {
                    feed(b"N");
                    feed(text.as_bytes());
                }
            }
            feed(&[0u8]); // event separator
        }
        h
    }

    /// Parses a trail back from its [`Trail::render`] text, enabling
    /// plain-text archival of run provenance alongside an artifact.
    ///
    /// Returns `None` on any malformed line. Metric values round-trip
    /// bitwise because `render` prints full `f64` precision and Rust's
    /// float formatting is shortest-round-trip.
    pub fn parse(text: &str) -> Option<Trail> {
        let mut t = Trail::new();
        for line in text.lines() {
            let line = line.trim_start();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("param  ") {
                let (k, v) = rest.split_once(" = ")?;
                t.param(k, v);
            } else if let Some(rest) = line.strip_prefix("rng    ") {
                let (tag, seed) = rest.split_once(" <- ")?;
                let seed = u64::from_str_radix(seed.trim().trim_start_matches("0x"), 16).ok()?;
                t.rng_stream(tag, seed);
            } else if let Some(rest) = line.strip_prefix("metric ") {
                let (name, v) = rest.split_once(" = ")?;
                t.metric(name, v.trim().parse().ok()?);
            } else if let Some(rest) = line.strip_prefix("note   ") {
                t.note(rest);
            } else {
                return None;
            }
        }
        Some(t)
    }

    /// Renders the trail as indented plain text for reports and debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                Event::Param { key, value } => out.push_str(&format!("  param  {key} = {value}\n")),
                Event::RngStream { tag, seed } => {
                    out.push_str(&format!("  rng    {tag} <- {seed:#018x}\n"))
                }
                Event::Metric { name, value } => {
                    out.push_str(&format!("  metric {name} = {value}\n"))
                }
                Event::Note(text) => out.push_str(&format!("  note   {text}\n")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trail() -> Trail {
        let mut t = Trail::new();
        t.param("n", 100);
        t.rng_stream("data", 0xDEAD);
        t.metric("accuracy", 0.93);
        t.note("finished");
        t
    }

    #[test]
    fn events_are_ordered() {
        let t = sample_trail();
        assert_eq!(t.len(), 4);
        assert!(matches!(t.events()[0], Event::Param { .. }));
        assert!(matches!(t.events()[3], Event::Note(_)));
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        let a = sample_trail();
        let b = sample_trail();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample_trail();
        c.metric("accuracy", 0.93 + 1e-15);
        assert_ne!(a.fingerprint(), c.fingerprint(), "tiny numeric change must alter fingerprint");
    }

    #[test]
    fn fingerprint_sensitive_to_order() {
        let mut a = Trail::new();
        a.note("x");
        a.note("y");
        let mut b = Trail::new();
        b.note("y");
        b.note("x");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_event_kinds() {
        // A note "n=1" must not collide with a param n=1.
        let mut a = Trail::new();
        a.note("n=1");
        let mut b = Trail::new();
        b.param("n", 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn metric_lookup_returns_latest() {
        let mut t = Trail::new();
        t.metric("loss", 1.0);
        t.metric("loss", 0.5);
        assert_eq!(t.metric_value("loss"), Some(0.5));
        assert_eq!(t.metric_value("missing"), None);
        assert_eq!(t.metrics().len(), 2);
    }

    #[test]
    fn render_contains_all_events() {
        let s = sample_trail().render();
        assert!(s.contains("param  n = 100"));
        assert!(s.contains("metric accuracy"));
        assert!(s.contains("note   finished"));
    }

    #[test]
    fn render_parse_roundtrip_preserves_fingerprint() {
        let t = sample_trail();
        let parsed = Trail::parse(&t.render()).expect("parses");
        assert_eq!(parsed, t);
        assert_eq!(parsed.fingerprint(), t.fingerprint());
    }

    #[test]
    fn parse_roundtrips_awkward_metric_values() {
        let mut t = Trail::new();
        t.metric("tiny", 1e-300);
        t.metric("neg", -0.1);
        t.metric("third", 1.0 / 3.0);
        let parsed = Trail::parse(&t.render()).expect("parses");
        assert_eq!(parsed.fingerprint(), t.fingerprint(), "bitwise metric roundtrip");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Trail::parse("nonsense line"), None);
        assert_eq!(Trail::parse("metric broken"), None);
        assert_eq!(Trail::parse("rng    x <- zz"), None);
        // Empty text parses to the empty trail.
        assert_eq!(Trail::parse(""), Some(Trail::new()));
    }

    #[test]
    fn empty_trail() {
        let t = Trail::new();
        assert!(t.is_empty());
        assert_eq!(t.fingerprint(), Trail::new().fingerprint());
    }
}
