//! Parameter sweeps: run one experiment across a grid of parameter values
//! and collect a comparable table of metrics.
//!
//! Sweeps are how every "vs" figure in a paper is made; this module gives
//! them the same provenance guarantees as single runs — each grid point is
//! a full [`RunRecord`], seeds are derived per point, and the whole sweep
//! renders to a [`crate::report::Table`].

use crate::experiment::{run_once, Experiment, ParamValue, Params, RunRecord};
use crate::report::{Cell, Table};
use treu_math::rng::derive_seed;

/// One axis of a sweep: a parameter key and the values to try.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Parameter key.
    pub key: String,
    /// Values to sweep over.
    pub values: Vec<ParamValue>,
}

impl Axis {
    /// Integer axis.
    pub fn ints(key: &str, values: &[i64]) -> Self {
        Self { key: key.to_string(), values: values.iter().map(|&v| ParamValue::Int(v)).collect() }
    }

    /// Float axis.
    pub fn floats(key: &str, values: &[f64]) -> Self {
        Self {
            key: key.to_string(),
            values: values.iter().map(|&v| ParamValue::Float(v)).collect(),
        }
    }
}

/// The result of one grid point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The parameter assignment of this point (axis order).
    pub assignment: Vec<(String, ParamValue)>,
    /// The run record.
    pub record: RunRecord,
}

/// One fully resolved grid point, before it is run: its assignment (axis
/// order), the merged parameters, and the seed derived for it.
///
/// The canonical grid order is the odometer order of the axes (last axis
/// fastest); both the sequential [`sweep`] and the parallel
/// [`crate::exec::Executor::sweep`] run points in exactly this order, which
/// is what makes their outputs bitwise-identical.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// The parameter assignment of this point (axis order).
    pub assignment: Vec<(String, ParamValue)>,
    /// Base parameters merged with the assignment.
    pub params: Params,
    /// Seed derived from the sweep seed and the assignment tag.
    pub seed: u64,
}

/// Enumerates the full cartesian grid of `axes` in canonical (odometer)
/// order. Each point gets an independent seed derived from `seed` and its
/// assignment, so adding axes never perturbs other points.
pub fn grid_points(base: &Params, axes: &[Axis], seed: u64) -> Vec<GridPoint> {
    let mut points = Vec::new();
    let mut index = vec![0usize; axes.len()];
    loop {
        // Build this point's params and tag.
        let mut params = base.clone();
        let mut assignment = Vec::with_capacity(axes.len());
        let mut tag = String::new();
        for (a, axis) in axes.iter().enumerate() {
            let v = &axis.values[index[a]];
            assignment.push((axis.key.clone(), v.clone()));
            tag.push_str(&format!("{}={v};", axis.key));
            params = match v {
                ParamValue::Int(x) => params.with_int(&axis.key, *x),
                ParamValue::Float(x) => params.with_float(&axis.key, *x),
                ParamValue::Bool(x) => params.with_bool(&axis.key, *x),
                ParamValue::Text(x) => params.with_text(&axis.key, x),
            };
        }
        points.push(GridPoint { assignment, params, seed: derive_seed(seed, &tag) });

        // Odometer increment.
        let mut a = axes.len();
        loop {
            if a == 0 {
                return points;
            }
            a -= 1;
            index[a] += 1;
            if index[a] < axes[a].values.len() {
                break;
            }
            index[a] = 0;
        }
    }
}

/// Runs `experiment` over the full cartesian grid of `axes`, starting from
/// `base` parameters (see [`grid_points`] for the seeding and ordering
/// contract).
pub fn sweep<E: Experiment + ?Sized>(
    experiment: &E,
    base: &Params,
    axes: &[Axis],
    seed: u64,
) -> Vec<SweepPoint> {
    grid_points(base, axes, seed)
        .into_iter()
        .map(|gp| SweepPoint {
            assignment: gp.assignment,
            record: run_once(experiment, gp.seed, gp.params),
        })
        .collect()
}

/// Renders a sweep as a table: one row per grid point, one column per axis
/// plus one per requested metric.
pub fn render_sweep(title: &str, points: &[SweepPoint], metrics: &[&str]) -> Table {
    let mut headers: Vec<&str> = points
        .first()
        .map(|p| p.assignment.iter().map(|(k, _)| k.as_str()).collect())
        .unwrap_or_default();
    headers.extend_from_slice(metrics);
    let mut table = Table::new(title, &headers);
    for p in points {
        let mut row: Vec<Cell> =
            p.assignment.iter().map(|(_, v)| Cell::Text(v.to_string())).collect();
        for m in metrics {
            row.push(match p.record.metric(m) {
                Some(v) => Cell::Float(v, 4),
                None => Cell::Text("-".to_string()),
            });
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::RunContext;

    struct Echo;
    impl Experiment for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn run(&self, ctx: &mut RunContext) {
            let a = ctx.int("a", 0);
            let b = ctx.float("b", 0.0);
            ctx.record("product", a as f64 * b);
        }
    }

    #[test]
    fn grid_covers_cartesian_product_in_order() {
        let axes = [Axis::ints("a", &[1, 2, 3]), Axis::floats("b", &[0.5, 2.0])];
        let pts = sweep(&Echo, &Params::new(), &axes, 7);
        assert_eq!(pts.len(), 6);
        let products: Vec<f64> = pts.iter().map(|p| p.record.metric("product").unwrap()).collect();
        assert_eq!(products, vec![0.5, 2.0, 1.0, 4.0, 1.5, 6.0]);
    }

    #[test]
    fn each_point_gets_its_own_seed() {
        let axes = [Axis::ints("a", &[1, 2])];
        let pts = sweep(&Echo, &Params::new(), &axes, 7);
        assert_ne!(pts[0].record.seed, pts[1].record.seed);
        // Re-running yields identical records (derived seeds are stable).
        let again = sweep(&Echo, &Params::new(), &axes, 7);
        assert_eq!(pts[0].record.trail, again[0].record.trail);
    }

    #[test]
    fn empty_axes_is_a_single_run() {
        let pts = sweep(&Echo, &Params::new().with_int("a", 4).with_float("b", 2.0), &[], 1);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].record.metric("product"), Some(8.0));
    }

    #[test]
    fn render_includes_axes_and_metrics() {
        let axes = [Axis::ints("a", &[1, 2])];
        let pts = sweep(&Echo, &Params::new().with_float("b", 3.0), &axes, 2);
        let t = render_sweep("Echo sweep", &pts, &["product", "missing"]);
        let s = t.render();
        assert!(s.contains("Echo sweep"));
        assert!(s.contains("product"));
        assert!(s.contains("3.0000")); // a=1 * b=3
        assert!(s.contains('-')); // missing metric placeholder
    }
}
