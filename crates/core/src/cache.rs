//! Content-addressed run cache: repeated executions cost ~zero.
//!
//! The practical-reproducibility literature the ROADMAP tracks names
//! *re-execution cost* as the main reason artifacts go unverified — if
//! checking a result means paying its full compute price again, people
//! skip the check. This module removes that price without weakening the
//! guarantee: a completed [`RunRecord`] is persisted under a key derived
//! from everything that determines its bits, and a later run with the
//! same key replays the stored trail instead of recomputing.
//!
//! **Key derivation.** A cache entry's *address* is
//! `fnv64(id ‖ seed ‖ canonical-params)` — the experiment id, the master
//! seed, and the parameter set rendered in canonical (BTreeMap key)
//! order. The *validity* of an entry is governed separately by the
//! **code+env fingerprint** stored inside it:
//! [`Environment::capture`]`().fingerprint()`, which covers the harness
//! version (code) plus OS, architecture and hardware threads (env). A
//! lookup that finds the address but not the fingerprint is an
//! **invalidation**, counted as such and recomputed — this is how a
//! rebuilt harness or a new machine transparently refreshes the cache
//! instead of serving stale bits.
//!
//! Storage is one plain-text file per entry (the provenance layer's
//! [`Trail::render`]/[`Trail::parse`] round-trips metrics bitwise), so a
//! cache directory doubles as a human-auditable archive of past runs.
//! Hit / miss / invalidation / store counts are kept per handle and
//! surfaced by the CLI after every cached command.
//!
//! **Integrity.** Every entry carries a checksum of its trail body that is
//! verified at read time: an entry whose bytes no longer hash to what was
//! stored (bit rot, a torn write from a killed process, tampering) is
//! classified as **corrupt** ([`Lookup::Corrupt`]), deleted on the spot
//! and recomputed by the caller — the cache self-heals instead of serving
//! damaged provenance. Writes are atomic (temp file + rename) so a crash
//! mid-store can never leave a truncated entry at an addressable path.

use crate::environment::Environment;
use crate::experiment::{Params, RunRecord};
use crate::provenance::Trail;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const MAGIC: &str = "treu-cache v2";

/// Counters for one cache handle's lifetime.
///
/// Snapshots are taken under one lock, so the classification invariant
/// `lookups == hits + misses + invalidations + corruptions` holds in
/// *every* snapshot — not just quiescent ones. (The previous per-counter
/// atomics could tear: a snapshot taken between a concurrent lookup's
/// two increments double- or under-counted a category.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Classified lookups performed (runs and blobs alike): every lookup
    /// lands in exactly one of the four categories below.
    pub lookups: u64,
    /// Lookups served from a valid entry.
    pub hits: u64,
    /// Lookups that found no entry at the address.
    pub misses: u64,
    /// Lookups that found an entry with a stale or unreadable
    /// code+env fingerprint (recomputed and overwritten by the caller).
    pub invalidations: u64,
    /// Entries whose read-time checksum verification failed — deleted on
    /// sight and recomputed by the caller (self-healing).
    pub corruptions: u64,
    /// Entries written.
    pub stores: u64,
}

impl CacheStats {
    /// The snapshot invariant: every lookup was classified exactly once.
    pub fn consistent(&self) -> bool {
        self.lookups == self.hits + self.misses + self.invalidations + self.corruptions
    }
}

/// A classified cache lookup — what [`RunCache::lookup_classified`]
/// found at the address.
#[derive(Debug)]
pub enum Lookup {
    /// Valid entry: fingerprint matched and the checksum verified.
    Hit(RunRecord),
    /// No entry at the address.
    Miss,
    /// Entry written under a different (or unreadable) code+env
    /// fingerprint: stale, recompute and overwrite.
    Stale,
    /// Entry failed read-time checksum verification; it has been deleted
    /// (auto-invalidated) and must be recomputed and re-stored.
    Corrupt,
}

/// A content-addressed store of completed runs (and small text
/// artifacts) under one directory.
#[derive(Debug)]
pub struct RunCache {
    dir: PathBuf,
    fingerprint: u64,
    // One lock for all counters: a lookup's lookups+category increments
    // are a single critical section, so stats() can never observe a torn
    // state. The lock covers counter arithmetic only, never file I/O.
    stats: Mutex<CacheStats>,
}

/// FNV-1a over a byte stream — the same hash family the provenance
/// fingerprint uses, applied to the cache key material.
fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Separator so ("ab","c") never collides with ("a","bc").
        h ^= 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Canonical parameter rendering for key material: `k=v;` in key order
/// (BTreeMap iteration), so insertion order never changes the address.
fn canonical_params(params: &Params) -> String {
    let mut s = String::new();
    for (k, v) in params.iter() {
        s.push_str(k);
        s.push('=');
        s.push_str(&v.to_string());
        s.push(';');
    }
    s
}

impl RunCache {
    /// Opens (creating if needed) a cache directory, keyed to the current
    /// code+env fingerprint.
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::open_with_fingerprint(dir, Environment::capture().fingerprint())
    }

    /// [`RunCache::open`] with an explicit code+env fingerprint — used by
    /// tests to simulate a rebuilt harness or a different machine.
    pub fn open_with_fingerprint(dir: &Path, fingerprint: u64) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self { dir: dir.to_path_buf(), fingerprint, stats: Mutex::new(CacheStats::default()) })
    }

    /// Applies one counter update under the stats lock.
    fn bump(&self, f: impl FnOnce(&mut CacheStats)) {
        let mut s = self.stats.lock().expect("cache stats mutex poisoned");
        f(&mut s);
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The code+env fingerprint entries are validated against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn run_path(&self, id: &str, seed: u64, params: &Params) -> PathBuf {
        let key = fnv64(&[
            b"run",
            id.as_bytes(),
            &seed.to_le_bytes(),
            canonical_params(params).as_bytes(),
        ]);
        self.dir.join(format!("{key:016x}.run"))
    }

    fn blob_path(&self, kind: &str, tag: &str) -> PathBuf {
        let key = fnv64(&[b"blob", kind.as_bytes(), tag.as_bytes()]);
        self.dir.join(format!("{key:016x}.txt"))
    }

    /// Looks up the cached record for `(id, seed, params)`.
    ///
    /// Convenience wrapper over [`RunCache::lookup_classified`]: any
    /// non-hit collapses to `None` (the per-cause counters still tick).
    pub fn lookup(&self, id: &str, seed: u64, params: &Params) -> Option<RunRecord> {
        match self.lookup_classified(id, seed, params) {
            Lookup::Hit(rec) => Some(rec),
            _ => None,
        }
    }

    /// Looks up `(id, seed, params)` and reports *why* a lookup failed:
    /// miss (no entry), stale (different code+env fingerprint) or corrupt
    /// (read-time checksum failure). A corrupt entry is deleted before
    /// returning, so the caller's recompute-and-store self-heals the
    /// cache; the corruption is counted in [`RunCache::stats`].
    pub fn lookup_classified(&self, id: &str, seed: u64, params: &Params) -> Lookup {
        let path = self.run_path(id, seed, params);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.bump(|s| {
                    s.lookups += 1;
                    s.misses += 1;
                });
                return Lookup::Miss;
            }
        };
        match parse_run_entry(&text, self.fingerprint, seed) {
            EntryParse::Ok(rec) => {
                self.bump(|s| {
                    s.lookups += 1;
                    s.hits += 1;
                });
                Lookup::Hit(rec)
            }
            EntryParse::Stale => {
                self.bump(|s| {
                    s.lookups += 1;
                    s.invalidations += 1;
                });
                Lookup::Stale
            }
            EntryParse::Corrupt => {
                self.bump(|s| {
                    s.lookups += 1;
                    s.corruptions += 1;
                });
                // Auto-invalidate: a damaged entry must never be consulted
                // again, even by a handle that skips checksum verification.
                let _ = std::fs::remove_file(&path);
                Lookup::Corrupt
            }
        }
    }

    /// Persists a completed record under `(id, seed, params)`, stamped
    /// with this handle's code+env fingerprint and a checksum of the
    /// trail body for read-time verification.
    pub fn store(&self, id: &str, seed: u64, params: &Params, rec: &RunRecord) -> io::Result<()> {
        let body = rec.trail.render();
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("fingerprint {:#018x}\n", self.fingerprint));
        out.push_str(&format!("name {}\n", rec.name));
        out.push_str(&format!("seed {}\n", rec.seed));
        out.push_str(&format!("wall {}\n", rec.wall_seconds));
        out.push_str(&format!("checksum {:#018x}\n", fnv64(&[body.as_bytes()])));
        out.push_str("trail\n");
        out.push_str(&body);
        self.write_atomic(&self.run_path(id, seed, params), &out)?;
        self.bump(|s| s.stores += 1);
        Ok(())
    }

    /// Atomic write: the payload lands under a unique temp name in the
    /// cache directory and is renamed over the target, so a killed
    /// process can never leave a truncated entry at an addressable path.
    fn write_atomic(&self, path: &Path, contents: &str) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::SeqCst);
        let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let tmp = self.dir.join(format!("{stem}.{}.{seq}.tmp", std::process::id()));
        std::fs::write(&tmp, contents)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Looks up a cached text artifact (e.g. a rendered table) by kind
    /// and tag, with the same fingerprint-invalidation rules as
    /// [`RunCache::lookup`].
    pub fn lookup_blob(&self, kind: &str, tag: &str) -> Option<String> {
        let text = match std::fs::read_to_string(self.blob_path(kind, tag)) {
            Ok(t) => t,
            Err(_) => {
                self.bump(|s| {
                    s.lookups += 1;
                    s.misses += 1;
                });
                return None;
            }
        };
        match parse_blob_entry(&text, self.fingerprint) {
            Some(payload) => {
                self.bump(|s| {
                    s.lookups += 1;
                    s.hits += 1;
                });
                Some(payload)
            }
            None => {
                self.bump(|s| {
                    s.lookups += 1;
                    s.invalidations += 1;
                });
                None
            }
        }
    }

    /// Persists a text artifact under `(kind, tag)`.
    pub fn store_blob(&self, kind: &str, tag: &str, payload: &str) -> io::Result<()> {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("fingerprint {:#018x}\n", self.fingerprint));
        out.push_str("payload\n");
        out.push_str(payload);
        self.write_atomic(&self.blob_path(kind, tag), &out)?;
        self.bump(|s| s.stores += 1);
        Ok(())
    }

    /// Snapshot of this handle's counters, taken under the stats lock —
    /// [`CacheStats::consistent`] holds for every snapshot, concurrent
    /// writers included.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("cache stats mutex poisoned")
    }

    /// One-line accounting for CLI output.
    pub fn render_stats(&self) -> String {
        let s = self.stats();
        format!(
            "cache: {} hit(s), {} miss(es), {} invalidation(s), {} corrupt (self-healed), {} store(s) over {} lookup(s) ({})\n",
            s.hits,
            s.misses,
            s.invalidations,
            s.corruptions,
            s.stores,
            s.lookups,
            self.dir.display()
        )
    }
}

/// Result of parsing a `.run` entry.
enum EntryParse {
    /// Valid entry under the expected fingerprint.
    Ok(RunRecord),
    /// Wrong magic or a foreign/unreadable fingerprint header — written
    /// by another harness build or machine, not damaged.
    Stale,
    /// The header names this very fingerprint but the body fails its
    /// checksum (or no longer parses): the entry was damaged after being
    /// written.
    Corrupt,
}

fn parse_run_entry(text: &str, expect_fingerprint: u64, expect_seed: u64) -> EntryParse {
    fn header(text: &str, expect_fingerprint: u64) -> Option<bool> {
        let mut lines = text.lines();
        if lines.next()? != MAGIC {
            return None;
        }
        let fp_line = lines.next()?.strip_prefix("fingerprint 0x")?;
        Some(u64::from_str_radix(fp_line, 16).ok()? == expect_fingerprint)
    }
    match header(text, expect_fingerprint) {
        None | Some(false) => return EntryParse::Stale,
        Some(true) => {}
    }
    fn body(text: &str, expect_seed: u64) -> Option<RunRecord> {
        let mut lines = text.lines().skip(2);
        let name = lines.next()?.strip_prefix("name ")?.to_string();
        let seed: u64 = lines.next()?.strip_prefix("seed ")?.parse().ok()?;
        if seed != expect_seed {
            return None;
        }
        let wall_seconds: f64 = lines.next()?.strip_prefix("wall ")?.parse().ok()?;
        let checksum_line = lines.next()?.strip_prefix("checksum 0x")?;
        let checksum = u64::from_str_radix(checksum_line, 16).ok()?;
        if lines.next()? != "trail" {
            return None;
        }
        let body: String = lines.map(|l| format!("{l}\n")).collect();
        if fnv64(&[body.as_bytes()]) != checksum {
            return None;
        }
        let trail = Trail::parse(&body)?;
        Some(RunRecord { name, seed, trail, wall_seconds })
    }
    match body(text, expect_seed) {
        Some(rec) => EntryParse::Ok(rec),
        None => EntryParse::Corrupt,
    }
}

/// Parses a `.txt` blob entry; `None` means stale or malformed.
fn parse_blob_entry(text: &str, expect_fingerprint: u64) -> Option<String> {
    let rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
    let rest = rest.strip_prefix("fingerprint 0x")?;
    let (fp, rest) = rest.split_once('\n')?;
    if u64::from_str_radix(fp, 16).ok()? != expect_fingerprint {
        return None;
    }
    rest.strip_prefix("payload\n").map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_once, Experiment, RunContext};

    struct Noisy;
    impl Experiment for Noisy {
        fn name(&self) -> &str {
            "noisy"
        }
        fn run(&self, ctx: &mut RunContext) {
            let n = ctx.int("n", 12) as usize;
            let mut rng = ctx.rng("draws");
            let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
            ctx.record("mean", mean);
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("treu-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn miss_then_store_then_hit_roundtrips_bitwise() {
        let dir = tmp_dir("hit");
        let cache = RunCache::open_with_fingerprint(&dir, 0xABCD).unwrap();
        let params = Params::new().with_int("n", 20).with_text("tag", "x");
        assert!(cache.lookup("E", 7, &params).is_none());
        assert_eq!(cache.stats().misses, 1);

        let rec = run_once(&Noisy, 7, params.clone());
        cache.store("E", 7, &params, &rec).unwrap();
        let cached = cache.lookup("E", 7, &params).expect("hit after store");
        assert_eq!(cached.trail, rec.trail, "trail must round-trip bitwise");
        assert_eq!(cached.fingerprint(), rec.fingerprint());
        assert_eq!(cached.name, rec.name);
        assert_eq!(cached.seed, 7);
        assert_eq!(cached.wall_seconds, rec.wall_seconds);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations, s.stores), (1, 1, 0, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_distinguishes_id_seed_and_params() {
        let dir = tmp_dir("key");
        let cache = RunCache::open_with_fingerprint(&dir, 1).unwrap();
        let p = Params::new().with_int("n", 8);
        let rec = run_once(&Noisy, 7, p.clone());
        cache.store("E", 7, &p, &rec).unwrap();
        assert!(cache.lookup("F", 7, &p).is_none(), "different id");
        assert!(cache.lookup("E", 8, &p).is_none(), "different seed");
        assert!(
            cache.lookup("E", 7, &Params::new().with_int("n", 9)).is_none(),
            "different params"
        );
        assert!(cache.lookup("E", 7, &p).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn param_insertion_order_does_not_change_the_address() {
        let dir = tmp_dir("order");
        let cache = RunCache::open_with_fingerprint(&dir, 1).unwrap();
        let p1 = Params::new().with_int("a", 1).with_int("b", 2);
        let p2 = Params::new().with_int("b", 2).with_int("a", 1);
        let rec = run_once(&Noisy, 3, p1.clone());
        cache.store("E", 3, &p1, &rec).unwrap();
        assert!(cache.lookup("E", 3, &p2).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_change_invalidates() {
        let dir = tmp_dir("inval");
        let p = Params::new();
        let rec = run_once(&Noisy, 5, p.clone());
        {
            let old = RunCache::open_with_fingerprint(&dir, 0x1111).unwrap();
            old.store("E", 5, &p, &rec).unwrap();
            assert!(old.lookup("E", 5, &p).is_some());
        }
        // Same directory, new code+env fingerprint: the entry is stale.
        let new = RunCache::open_with_fingerprint(&dir, 0x2222).unwrap();
        assert!(new.lookup("E", 5, &p).is_none());
        assert_eq!(new.stats().invalidations, 1);
        assert_eq!(new.stats().misses, 0, "a stale entry is an invalidation, not a miss");
        // Overwriting refreshes it for the new fingerprint.
        new.store("E", 5, &p, &rec).unwrap();
        assert!(new.lookup("E", 5, &p).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_entry_counts_as_invalidation() {
        let dir = tmp_dir("corrupt");
        let cache = RunCache::open_with_fingerprint(&dir, 9).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 1, p.clone());
        cache.store("E", 1, &p, &rec).unwrap();
        // Truncate the entry on disk.
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        std::fs::write(&entry, "treu-cache v1\ngarbage").unwrap();
        assert!(cache.lookup("E", 1, &p).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_failure_is_corruption_and_self_heals() {
        let dir = tmp_dir("checksum");
        let cache = RunCache::open_with_fingerprint(&dir, 9).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 1, p.clone());
        cache.store("E", 1, &p, &rec).unwrap();
        // Damage the trail body while leaving the header (magic +
        // matching fingerprint) intact: bit rot, not staleness.
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let text = std::fs::read_to_string(&entry).unwrap();
        let damaged = text.replacen("metric", "metrjc", 1);
        assert_ne!(text, damaged, "fixture must actually flip bytes");
        std::fs::write(&entry, damaged).unwrap();

        assert!(matches!(cache.lookup_classified("E", 1, &p), Lookup::Corrupt));
        let s = cache.stats();
        assert_eq!((s.corruptions, s.invalidations, s.misses), (1, 0, 0));
        assert!(!entry.exists(), "corrupt entry must be deleted on sight");
        // The very next lookup is a clean miss; recompute + store heals.
        assert!(matches!(cache.lookup_classified("E", 1, &p), Lookup::Miss));
        cache.store("E", 1, &p, &rec).unwrap();
        let healed = cache.lookup("E", 1, &p).expect("healed entry serves again");
        assert_eq!(healed.trail, rec.trail);
        assert!(cache.render_stats().contains("1 corrupt (self-healed)"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_is_corruption_not_a_hit() {
        let dir = tmp_dir("truncated");
        let cache = RunCache::open_with_fingerprint(&dir, 9).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 1, p.clone());
        cache.store("E", 1, &p, &rec).unwrap();
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let text = std::fs::read_to_string(&entry).unwrap();
        // Simulate the torn write atomic rename now prevents: keep the
        // header, cut the file mid-trail.
        std::fs::write(&entry, &text[..text.len() - 10]).unwrap();
        assert!(cache.lookup("E", 1, &p).is_none());
        assert_eq!(cache.stats().corruptions, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stores_are_atomic_no_temp_files_survive() {
        let dir = tmp_dir("atomic");
        let cache = RunCache::open_with_fingerprint(&dir, 2).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 4, p.clone());
        for i in 0..8u64 {
            cache.store("E", i, &p, &rec).unwrap();
            cache.store_blob("tables", &i.to_string(), "payload").unwrap();
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away: {leftovers:?}");
        assert_eq!(cache.stats().stores, 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_snapshots_are_never_torn_under_concurrent_lookups() {
        let dir = tmp_dir("torn");
        let cache = RunCache::open_with_fingerprint(&dir, 2).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 1, p.clone());
        cache.store("E", 1, &p, &rec).unwrap();
        // Hammer classified lookups (hits and misses) from four threads
        // while a fifth snapshots continuously: the classification
        // invariant must hold in every single snapshot, not just at rest.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                let p = &p;
                s.spawn(move || {
                    for i in 0..200u64 {
                        let _ = cache.lookup_classified("E", 1 + (t + i) % 2, p);
                        let _ = cache.lookup_blob("tables", "nope");
                    }
                });
            }
            for _ in 0..500 {
                let snap = cache.stats();
                assert!(
                    snap.consistent(),
                    "torn snapshot: {} lookups vs {}+{}+{}+{}",
                    snap.lookups,
                    snap.hits,
                    snap.misses,
                    snap.invalidations,
                    snap.corruptions
                );
            }
        });
        let end = cache.stats();
        assert!(end.consistent());
        assert_eq!(end.lookups, 4 * 200 * 2, "every lookup classified exactly once");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_roundtrip_and_invalidation() {
        let dir = tmp_dir("blob");
        let cache = RunCache::open_with_fingerprint(&dir, 4).unwrap();
        assert!(cache.lookup_blob("tables", "seed7").is_none());
        let payload = "Table 1\n  row\n\nTable 2\n";
        cache.store_blob("tables", "seed7", payload).unwrap();
        assert_eq!(cache.lookup_blob("tables", "seed7").as_deref(), Some(payload));
        assert!(cache.lookup_blob("tables", "seed8").is_none(), "tag is part of the address");
        let other = RunCache::open_with_fingerprint(&dir, 5).unwrap();
        assert!(other.lookup_blob("tables", "seed7").is_none());
        assert_eq!(other.stats().invalidations, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_render_mentions_every_counter() {
        let dir = tmp_dir("render");
        let cache = RunCache::open_with_fingerprint(&dir, 2).unwrap();
        let _ = cache.lookup("E", 0, &Params::new());
        let s = cache.render_stats();
        assert!(s.contains("0 hit(s)"));
        assert!(s.contains("1 miss(es)"));
        assert!(s.contains("0 invalidation(s)"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_uses_environment_fingerprint() {
        let dir = tmp_dir("envfp");
        let cache = RunCache::open(&dir).unwrap();
        assert_eq!(cache.fingerprint(), Environment::capture().fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
