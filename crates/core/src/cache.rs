//! Content-addressed run cache: repeated executions cost ~zero.
//!
//! The practical-reproducibility literature the ROADMAP tracks names
//! *re-execution cost* as the main reason artifacts go unverified — if
//! checking a result means paying its full compute price again, people
//! skip the check. This module removes that price without weakening the
//! guarantee: a completed [`RunRecord`] is persisted under a key derived
//! from everything that determines its bits, and a later run with the
//! same key replays the stored trail instead of recomputing.
//!
//! **Key derivation.** A cache entry's *address* is
//! `fnv64_parts(id ‖ seed ‖ canonical-params)` — the experiment id, the master
//! seed, and the parameter set rendered in canonical (BTreeMap key)
//! order. The *validity* of an entry is governed separately by the
//! **code+env fingerprint** stored inside it:
//! [`Environment::capture`]`().fingerprint()`, which covers the harness
//! version (code) plus OS, architecture and hardware threads (env). A
//! lookup that finds the address but not the fingerprint is an
//! **invalidation**, counted as such and recomputed — this is how a
//! rebuilt harness or a new machine transparently refreshes the cache
//! instead of serving stale bits.
//!
//! Storage is one plain-text file per entry (the provenance layer's
//! [`Trail::render`]/[`Trail::parse`] round-trips metrics bitwise), so a
//! cache directory doubles as a human-auditable archive of past runs.
//! Hit / miss / invalidation / store counts are kept per handle and
//! surfaced by the CLI after every cached command.
//!
//! **Integrity.** Every entry carries a checksum of its trail body that is
//! verified at read time: an entry whose bytes no longer hash to what was
//! stored (bit rot, a torn write from a killed process, tampering) is
//! classified as **corrupt** ([`Lookup::Corrupt`]), deleted on the spot
//! and recomputed by the caller — the cache self-heals instead of serving
//! damaged provenance. Writes are atomic (temp file + rename) so a crash
//! mid-store can never leave a truncated entry at an addressable path.
//!
//! **Lifecycle.** A handle opened with [`RunCache::open_bounded`] keeps
//! the directory under a hard [`CacheBound`] (entry count and/or payload
//! bytes) with deterministic LRU eviction. Recency is measured on a
//! **logical clock** — a monotone counter that ticks once per classified
//! lookup or store — never wall time, so two runs that issue the same
//! cache operations in the same order evict the same entries in the same
//! order regardless of machine speed or scheduling. The victim is always
//! the minimum `(tick, file-name)` pair; the name tie-break makes even
//! the cold-start case (a freshly seeded index where several entries
//! share a tick) schedule-independent. Unbounded handles skip the index
//! entirely, preserving the original grow-forever fast path.

use crate::environment::Environment;
use crate::experiment::{Params, RunRecord};
use crate::provenance::Trail;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// v3: the trail grammar inside entries gained escaping (provenance render
// is now injective), so v2 bodies could parse differently — old entries
// classify as Stale and refresh rather than risk a silent re-read skew.
const MAGIC: &str = "treu-cache v3";

/// Counters for one cache handle's lifetime.
///
/// Snapshots are taken under one lock, so the classification invariant
/// `lookups == hits + misses + invalidations + corruptions` holds in
/// *every* snapshot — not just quiescent ones. (The previous per-counter
/// atomics could tear: a snapshot taken between a concurrent lookup's
/// two increments double- or under-counted a category.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Classified *run* lookups: every one lands in exactly one of the
    /// four categories below. Blob traffic is counted separately so a
    /// soak's run hit-rate is never diluted by table/report artifacts.
    pub lookups: u64,
    /// Run lookups served from a valid entry.
    pub hits: u64,
    /// Run lookups that found no entry at the address.
    pub misses: u64,
    /// Run lookups that found an entry with a stale or unreadable
    /// code+env fingerprint (recomputed and overwritten by the caller).
    pub invalidations: u64,
    /// Run entries whose read-time checksum verification failed — deleted
    /// on sight and recomputed by the caller (self-healing).
    pub corruptions: u64,
    /// Run entries written.
    pub stores: u64,
    /// Classified blob lookups ([`RunCache::lookup_blob`]): each lands in
    /// exactly one of hit / miss / invalidation (blobs carry no checksum,
    /// so there is no corrupt class).
    pub blob_lookups: u64,
    /// Blob lookups served from a valid entry.
    pub blob_hits: u64,
    /// Blob lookups that found no entry at the address.
    pub blob_misses: u64,
    /// Blob lookups that found a stale or malformed entry.
    pub blob_invalidations: u64,
    /// Blob entries written.
    pub blob_stores: u64,
    /// Entries (runs and blobs) evicted to keep a bounded handle under
    /// its [`CacheBound`].
    pub evictions: u64,
}

impl CacheStats {
    /// The snapshot invariant: every lookup — run and blob alike — was
    /// classified exactly once.
    pub fn consistent(&self) -> bool {
        self.lookups == self.hits + self.misses + self.invalidations + self.corruptions
            && self.blob_lookups == self.blob_hits + self.blob_misses + self.blob_invalidations
    }

    /// Run hit-rate over this handle's lifetime; blob traffic is
    /// excluded by construction. `0.0` before any run lookup.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Hard occupancy bound for a cache directory: maximum resident entries
/// and/or payload bytes. Zero disables that axis; the default is
/// unbounded on both, which preserves the original grow-forever behavior
/// (and its index-free fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBound {
    /// Maximum resident entries (runs + blobs); 0 = unbounded.
    pub max_entries: usize,
    /// Maximum resident payload bytes; 0 = unbounded.
    pub max_bytes: u64,
}

impl CacheBound {
    /// Unbounded on both axes.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Bound by entry count only.
    pub fn entries(max_entries: usize) -> Self {
        Self { max_entries, max_bytes: 0 }
    }

    /// Bound by payload bytes only.
    pub fn bytes(max_bytes: u64) -> Self {
        Self { max_entries: 0, max_bytes }
    }

    /// Bound on both axes (either may be 0 = unbounded).
    pub fn new(max_entries: usize, max_bytes: u64) -> Self {
        Self { max_entries, max_bytes }
    }

    /// True when at least one axis is bounded.
    pub fn is_bounded(&self) -> bool {
        self.max_entries > 0 || self.max_bytes > 0
    }
}

/// One resident entry in the recency index of a bounded handle.
#[derive(Debug, Clone, Copy)]
struct Resident {
    /// Logical-clock value of the entry's last classified touch.
    tick: u64,
    /// On-disk size of the entry file.
    bytes: u64,
}

/// In-memory recency index for bounded handles. The clock ticks once per
/// classified lookup or store — a pure operation counter, never wall
/// time — so eviction order is a function of the operation sequence
/// alone. Keyed by entry file name; `BTreeMap` keeps victim selection
/// (`min (tick, name)`) and [`RunCache::resident_entries`] canonical.
#[derive(Debug, Default)]
struct LruIndex {
    entries: BTreeMap<String, Resident>,
    bytes: u64,
    clock: u64,
    evicted: Vec<String>,
}

impl LruIndex {
    /// Ticks the clock and inserts or refreshes `name` at the new tick.
    fn upsert(&mut self, name: &str, bytes: u64) {
        self.clock += 1;
        let tick = self.clock;
        match self.entries.get_mut(name) {
            Some(r) => {
                self.bytes = self.bytes - r.bytes + bytes;
                r.bytes = bytes;
                r.tick = tick;
            }
            None => {
                self.bytes += bytes;
                self.entries.insert(name.to_string(), Resident { tick, bytes });
            }
        }
    }

    /// Ticks the clock and refreshes `name`'s recency when resident. A
    /// hit on an untracked file (a foreign write, or a read that raced
    /// an eviction's unlink) deliberately does *not* re-insert: the
    /// index only trusts entries it saw stored or seeded, so a racing
    /// reader can never resurrect an evicted name.
    fn refresh(&mut self, name: &str, bytes: u64) {
        self.clock += 1;
        let tick = self.clock;
        if let Some(r) = self.entries.get_mut(name) {
            self.bytes = self.bytes - r.bytes + bytes;
            r.bytes = bytes;
            r.tick = tick;
        }
    }

    /// Drops `name` from the index (file deleted or found absent).
    fn forget(&mut self, name: &str) {
        if let Some(r) = self.entries.remove(name) {
            self.bytes -= r.bytes;
        }
    }

    /// True while the index exceeds `bound` on either axis.
    fn over(&self, bound: CacheBound) -> bool {
        (bound.max_entries > 0 && self.entries.len() > bound.max_entries)
            || (bound.max_bytes > 0 && self.bytes > bound.max_bytes)
    }

    /// The deterministic eviction victim: minimum `(tick, name)`. Linear
    /// scan — bounded caches are small by definition, and O(n) here buys
    /// a single-structure index with no heap to keep in sync.
    fn victim(&self) -> Option<String> {
        self.entries
            .iter()
            .min_by_key(|(name, r)| (r.tick, name.as_str()))
            .map(|(name, _)| name.clone())
    }
}

/// A classified cache lookup — what [`RunCache::lookup_classified`]
/// found at the address.
#[derive(Debug)]
pub enum Lookup {
    /// Valid entry: fingerprint matched and the checksum verified.
    Hit(RunRecord),
    /// No entry at the address.
    Miss,
    /// Entry written under a different (or unreadable) code+env
    /// fingerprint: stale, recompute and overwrite.
    Stale,
    /// Entry failed read-time checksum verification; it has been deleted
    /// (auto-invalidated) and must be recomputed and re-stored.
    Corrupt,
}

/// A content-addressed store of completed runs (and small text
/// artifacts) under one directory.
#[derive(Debug)]
pub struct RunCache {
    dir: PathBuf,
    fingerprint: u64,
    bound: CacheBound,
    // One lock for all counters: a lookup's lookups+category increments
    // are a single critical section, so stats() can never observe a torn
    // state. The lock covers counter arithmetic only, never file I/O.
    stats: Mutex<CacheStats>,
    // Recency index for bounded handles (empty and untouched when
    // unbounded). Lock ordering: `index` and `stats` are never held
    // together. Eviction unlinks files under this lock so the index and
    // the directory can't diverge mid-eviction.
    index: Mutex<LruIndex>,
}

// Cache keys are the canonical separator-mixed FNV-1a fold over their
// key material — the same hash family the provenance fingerprint uses.
use crate::hash::fnv64_parts;

/// The index key for an entry path: its file name.
fn entry_name(path: &Path) -> String {
    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

/// Canonical parameter rendering for key material: `k=v;` in key order
/// (BTreeMap iteration), so insertion order never changes the address.
fn canonical_params(params: &Params) -> String {
    let mut s = String::new();
    for (k, v) in params.iter() {
        s.push_str(k);
        s.push('=');
        s.push_str(&v.to_string());
        s.push(';');
    }
    s
}

impl RunCache {
    /// Opens (creating if needed) an unbounded cache directory, keyed to
    /// the current code+env fingerprint.
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::open_with_fingerprint(dir, Environment::capture().fingerprint())
    }

    /// [`RunCache::open`] with an explicit code+env fingerprint — used by
    /// tests to simulate a rebuilt harness or a different machine.
    pub fn open_with_fingerprint(dir: &Path, fingerprint: u64) -> io::Result<Self> {
        Self::open_bounded_with_fingerprint(dir, CacheBound::unbounded(), fingerprint)
    }

    /// Opens a cache held under a hard [`CacheBound`] with deterministic
    /// logical-clock LRU eviction (see the module docs).
    pub fn open_bounded(dir: &Path, bound: CacheBound) -> io::Result<Self> {
        Self::open_bounded_with_fingerprint(dir, bound, Environment::capture().fingerprint())
    }

    /// [`RunCache::open_bounded`] with an explicit code+env fingerprint.
    ///
    /// Reopening a warm directory is deterministic: resident entries are
    /// seeded into the index in file-name order (ticks `1..=n`), then the
    /// bound is enforced immediately, so two processes opening the same
    /// directory with the same bound evict the same entries.
    pub fn open_bounded_with_fingerprint(
        dir: &Path,
        bound: CacheBound,
        fingerprint: u64,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        sweep_orphaned_tmp(dir);
        let cache = Self {
            dir: dir.to_path_buf(),
            fingerprint,
            bound,
            stats: Mutex::new(CacheStats::default()),
            index: Mutex::new(LruIndex::default()),
        };
        if bound.is_bounded() {
            cache.seed_index()?;
            let evicted = {
                let mut ix = cache.index.lock().expect("cache index mutex poisoned");
                cache.enforce_bound_locked(&mut ix)
            };
            if evicted > 0 {
                cache.bump(|s| s.evictions += evicted);
            }
        }
        Ok(cache)
    }

    /// Seeds the recency index from an existing directory: entry files in
    /// name order get ticks `1..=n`, so a warm reopen never depends on
    /// directory-listing order.
    fn seed_index(&self) -> io::Result<()> {
        let mut found: Vec<(String, u64)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".run") || name.ends_with(".txt") {
                found.push((name, entry.metadata()?.len()));
            }
        }
        found.sort();
        let mut ix = self.index.lock().expect("cache index mutex poisoned");
        for (name, bytes) in found {
            ix.clock += 1;
            let tick = ix.clock;
            ix.bytes += bytes;
            ix.entries.insert(name, Resident { tick, bytes });
        }
        Ok(())
    }

    /// Evicts least-recently-used entries (minimum `(tick, name)`) until
    /// the index satisfies the bound; files are unlinked as they go.
    /// Returns the eviction count. Caller holds the index lock. A bound
    /// smaller than a single entry converges to an empty directory — the
    /// just-stored entry is its own victim — rather than looping.
    fn enforce_bound_locked(&self, ix: &mut LruIndex) -> u64 {
        let mut evicted = 0u64;
        while ix.over(self.bound) {
            let Some(name) = ix.victim() else { break };
            let _ = std::fs::remove_file(self.dir.join(&name));
            ix.forget(&name);
            ix.evicted.push(name);
            evicted += 1;
        }
        evicted
    }

    /// Classified-lookup bookkeeping for bounded handles: every lookup
    /// ticks the logical clock; `resident_bytes` refreshes (or inserts)
    /// the entry's recency, `None` drops it from the index (absent or
    /// just deleted). No-op when unbounded.
    fn note_lookup(&self, path: &Path, resident_bytes: Option<u64>) {
        if !self.bound.is_bounded() {
            return;
        }
        let name = entry_name(path);
        let mut ix = self.index.lock().expect("cache index mutex poisoned");
        match resident_bytes {
            Some(bytes) => ix.refresh(&name, bytes),
            None => {
                ix.clock += 1;
                ix.forget(&name);
            }
        }
    }

    /// Store bookkeeping for bounded handles: ticks the clock, indexes
    /// the entry, enforces the bound. Returns the eviction count.
    fn note_store(&self, path: &Path, bytes: u64) -> u64 {
        if !self.bound.is_bounded() {
            return 0;
        }
        let name = entry_name(path);
        let mut ix = self.index.lock().expect("cache index mutex poisoned");
        ix.upsert(&name, bytes);
        self.enforce_bound_locked(&mut ix)
    }

    /// Applies one counter update under the stats lock.
    fn bump(&self, f: impl FnOnce(&mut CacheStats)) {
        let mut s = self.stats.lock().expect("cache stats mutex poisoned");
        f(&mut s);
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The code+env fingerprint entries are validated against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The occupancy bound this handle enforces (unbounded by default).
    pub fn bound(&self) -> CacheBound {
        self.bound
    }

    /// Current logical-clock value: classified lookups + stores since
    /// open. Always 0 on unbounded handles (the index is bypassed).
    pub fn logical_clock(&self) -> u64 {
        self.index.lock().expect("cache index mutex poisoned").clock
    }

    /// Evicted entry file names, in eviction order — the observable the
    /// determinism properties compare across schedules.
    pub fn eviction_log(&self) -> Vec<String> {
        self.index.lock().expect("cache index mutex poisoned").evicted.clone()
    }

    /// FNV content address of the eviction log (order-sensitive), for
    /// cheap jobs=1 vs jobs=N identity checks.
    pub fn eviction_fingerprint(&self) -> u64 {
        let ix = self.index.lock().expect("cache index mutex poisoned");
        let parts: Vec<&[u8]> = ix.evicted.iter().map(|n| n.as_bytes()).collect();
        fnv64_parts(&parts)
    }

    /// Resident entry file names in canonical (name) order. Meaningful on
    /// bounded handles; empty when unbounded.
    pub fn resident_entries(&self) -> Vec<String> {
        self.index.lock().expect("cache index mutex poisoned").entries.keys().cloned().collect()
    }

    /// Total resident payload bytes tracked by the index (0 when
    /// unbounded).
    pub fn resident_bytes(&self) -> u64 {
        self.index.lock().expect("cache index mutex poisoned").bytes
    }

    fn run_path(&self, id: &str, seed: u64, params: &Params) -> PathBuf {
        self.dir.join(run_entry_file(id, seed, params))
    }

    fn blob_path(&self, kind: &str, tag: &str) -> PathBuf {
        self.dir.join(blob_entry_file(kind, tag))
    }

    /// Looks up the cached record for `(id, seed, params)`.
    ///
    /// Convenience wrapper over [`RunCache::lookup_classified`]: any
    /// non-hit collapses to `None` (the per-cause counters still tick).
    pub fn lookup(&self, id: &str, seed: u64, params: &Params) -> Option<RunRecord> {
        match self.lookup_classified(id, seed, params) {
            Lookup::Hit(rec) => Some(rec),
            _ => None,
        }
    }

    /// Looks up `(id, seed, params)` and reports *why* a lookup failed:
    /// miss (no entry), stale (different code+env fingerprint) or corrupt
    /// (read-time checksum failure). A corrupt entry is deleted before
    /// returning, so the caller's recompute-and-store self-heals the
    /// cache; the corruption is counted in [`RunCache::stats`].
    pub fn lookup_classified(&self, id: &str, seed: u64, params: &Params) -> Lookup {
        let path = self.run_path(id, seed, params);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.note_lookup(&path, None);
                self.bump(|s| {
                    s.lookups += 1;
                    s.misses += 1;
                });
                return Lookup::Miss;
            }
        };
        match parse_run_entry(&text, self.fingerprint, seed) {
            EntryParse::Ok(rec) => {
                self.note_lookup(&path, Some(text.len() as u64));
                self.bump(|s| {
                    s.lookups += 1;
                    s.hits += 1;
                });
                Lookup::Hit(rec)
            }
            EntryParse::Stale => {
                // Still resident (the caller will overwrite it): refresh
                // recency so the imminent store doesn't race an eviction.
                self.note_lookup(&path, Some(text.len() as u64));
                self.bump(|s| {
                    s.lookups += 1;
                    s.invalidations += 1;
                });
                Lookup::Stale
            }
            EntryParse::Corrupt => {
                // Auto-invalidate: a damaged entry must never be consulted
                // again, even by a handle that skips checksum verification.
                let _ = std::fs::remove_file(&path);
                self.note_lookup(&path, None);
                self.bump(|s| {
                    s.lookups += 1;
                    s.corruptions += 1;
                });
                Lookup::Corrupt
            }
        }
    }

    /// Persists a completed record under `(id, seed, params)`, stamped
    /// with this handle's code+env fingerprint and a checksum of the
    /// trail body for read-time verification.
    pub fn store(&self, id: &str, seed: u64, params: &Params, rec: &RunRecord) -> io::Result<()> {
        let body = rec.trail.render();
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("fingerprint {:#018x}\n", self.fingerprint));
        out.push_str(&format!("name {}\n", rec.name));
        out.push_str(&format!("seed {}\n", rec.seed));
        out.push_str(&format!("wall {}\n", rec.wall_seconds));
        out.push_str(&format!("checksum {:#018x}\n", fnv64_parts(&[body.as_bytes()])));
        out.push_str("trail\n");
        out.push_str(&body);
        let path = self.run_path(id, seed, params);
        let bytes = out.len() as u64;
        self.write_atomic(&path, &out)?;
        let evicted = self.note_store(&path, bytes);
        self.bump(|s| {
            s.stores += 1;
            s.evictions += evicted;
        });
        Ok(())
    }

    /// Atomic write: the payload lands under a unique temp name in the
    /// cache directory and is renamed over the target, so a killed
    /// process can never leave a truncated entry at an addressable path.
    fn write_atomic(&self, path: &Path, contents: &str) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::SeqCst);
        let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let tmp = self.dir.join(format!("{stem}.{}.{seq}.tmp", std::process::id()));
        std::fs::write(&tmp, contents)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Looks up a cached text artifact (e.g. a rendered table) by kind
    /// and tag, with the same fingerprint-invalidation rules as
    /// [`RunCache::lookup`].
    pub fn lookup_blob(&self, kind: &str, tag: &str) -> Option<String> {
        let path = self.blob_path(kind, tag);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.note_lookup(&path, None);
                self.bump(|s| {
                    s.blob_lookups += 1;
                    s.blob_misses += 1;
                });
                return None;
            }
        };
        match parse_blob_entry(&text, self.fingerprint) {
            Some(payload) => {
                self.note_lookup(&path, Some(text.len() as u64));
                self.bump(|s| {
                    s.blob_lookups += 1;
                    s.blob_hits += 1;
                });
                Some(payload)
            }
            None => {
                self.note_lookup(&path, Some(text.len() as u64));
                self.bump(|s| {
                    s.blob_lookups += 1;
                    s.blob_invalidations += 1;
                });
                None
            }
        }
    }

    /// Persists a text artifact under `(kind, tag)`.
    pub fn store_blob(&self, kind: &str, tag: &str, payload: &str) -> io::Result<()> {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("fingerprint {:#018x}\n", self.fingerprint));
        out.push_str("payload\n");
        out.push_str(payload);
        let path = self.blob_path(kind, tag);
        let bytes = out.len() as u64;
        self.write_atomic(&path, &out)?;
        let evicted = self.note_store(&path, bytes);
        self.bump(|s| {
            s.blob_stores += 1;
            s.evictions += evicted;
        });
        Ok(())
    }

    /// Snapshot of this handle's counters, taken under the stats lock —
    /// [`CacheStats::consistent`] holds for every snapshot, concurrent
    /// writers included.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("cache stats mutex poisoned")
    }

    /// One-line accounting for CLI output. Blob and eviction counters
    /// are appended only when they moved, so the common (run-only,
    /// unbounded) line stays unchanged.
    pub fn render_stats(&self) -> String {
        let s = self.stats();
        let mut line = format!(
            "cache: {} hit(s), {} miss(es), {} invalidation(s), {} corrupt (self-healed), {} store(s) over {} lookup(s)",
            s.hits, s.misses, s.invalidations, s.corruptions, s.stores, s.lookups,
        );
        if s.blob_lookups + s.blob_stores > 0 {
            line.push_str(&format!(
                "; blobs: {} hit(s), {} miss(es), {} store(s)",
                s.blob_hits, s.blob_misses, s.blob_stores
            ));
        }
        if self.bound.is_bounded() {
            line.push_str(&format!("; {} eviction(s)", s.evictions));
        }
        line.push_str(&format!(" ({})\n", self.dir.display()));
        line
    }
}

/// Removes `.tmp` droppings left by writers that died mid-`store`
/// (temp names embed the writer's pid: `{stem}.{pid}.{seq}.tmp`). A tmp
/// is *orphaned* — and safe to unlink — only when its writer is gone:
/// the pid is not ours and names no live process. Live writers' tmps are
/// left alone so a concurrent open can never race an in-flight rename.
/// Unparseable names are treated as orphaned. Best-effort: I/O errors
/// are ignored (the sweep re-runs on every open).
fn sweep_orphaned_tmp(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".tmp") {
            continue;
        }
        // `{stem}.{pid}.{seq}.tmp` → pid is the third segment from the end.
        let writer_pid = name.rsplit('.').nth(2).and_then(|p| p.parse::<u32>().ok());
        let live = match writer_pid {
            Some(pid) if pid == std::process::id() => true,
            // Liveness via procfs where available; elsewhere a pid-named
            // tmp from another process is presumed orphaned (tests and
            // single-process use never hit this).
            Some(pid) => Path::new("/proc").exists() && Path::new(&format!("/proc/{pid}")).exists(),
            None => false,
        };
        if !live {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Magic header of a per-process stats sidecar.
const STATS_MAGIC: &str = "treu-cache-stats v1";

/// Renders a [`CacheStats`] snapshot in the sidecar format: one
/// `field value` line per counter, fixed order.
fn render_stats_file(s: &CacheStats) -> String {
    format!(
        "{STATS_MAGIC}\nlookups {}\nhits {}\nmisses {}\ninvalidations {}\ncorruptions {}\nstores {}\nblob_lookups {}\nblob_hits {}\nblob_misses {}\nblob_invalidations {}\nblob_stores {}\nevictions {}\n",
        s.lookups,
        s.hits,
        s.misses,
        s.invalidations,
        s.corruptions,
        s.stores,
        s.blob_lookups,
        s.blob_hits,
        s.blob_misses,
        s.blob_invalidations,
        s.blob_stores,
        s.evictions,
    )
}

/// Parses a sidecar written by [`render_stats_file`].
fn parse_stats_file(text: &str) -> Option<CacheStats> {
    let mut lines = text.lines();
    if lines.next()? != STATS_MAGIC {
        return None;
    }
    let mut field = |name: &str| -> Option<u64> {
        lines.next()?.strip_prefix(name)?.strip_prefix(' ')?.parse().ok()
    };
    Some(CacheStats {
        lookups: field("lookups")?,
        hits: field("hits")?,
        misses: field("misses")?,
        invalidations: field("invalidations")?,
        corruptions: field("corruptions")?,
        stores: field("stores")?,
        blob_lookups: field("blob_lookups")?,
        blob_hits: field("blob_hits")?,
        blob_misses: field("blob_misses")?,
        blob_invalidations: field("blob_invalidations")?,
        blob_stores: field("blob_stores")?,
        evictions: field("evictions")?,
    })
}

impl CacheStats {
    /// Field-wise sum, for folding per-process sidecars into one view.
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.corruptions += other.corruptions;
        self.stores += other.stores;
        self.blob_lookups += other.blob_lookups;
        self.blob_hits += other.blob_hits;
        self.blob_misses += other.blob_misses;
        self.blob_invalidations += other.blob_invalidations;
        self.blob_stores += other.blob_stores;
        self.evictions += other.evictions;
    }
}

impl RunCache {
    /// Writes this handle's counter snapshot to a per-process sidecar
    /// (`stats-<pid>.stats`, atomic temp+rename like every entry write).
    ///
    /// This is the multi-process half of hit/miss accounting: worker
    /// processes sharing a cache directory cannot share the in-memory
    /// [`CacheStats`] mutex, so each writes its own sidecar at shutdown
    /// and the coordinator folds them in at join with
    /// [`RunCache::merge_stats_sidecars`] — counts are never torn because
    /// no counter is ever written concurrently. Sidecars use a dedicated
    /// `.stats` extension, so entry indexing and eviction never see them.
    pub fn write_stats_sidecar(&self) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("stats-{}.stats", std::process::id()));
        self.write_atomic(&path, &render_stats_file(&self.stats()))?;
        Ok(path)
    }

    /// Folds every `.stats` sidecar under the cache directory into this
    /// handle's counters, consuming (deleting) the sidecars. Returns how
    /// many sidecars were merged. Unreadable or foreign-format files are
    /// left in place and not counted.
    pub fn merge_stats_sidecars(&self) -> io::Result<usize> {
        let mut merged = 0usize;
        let mut names: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "stats"))
            .collect();
        names.sort();
        for path in names {
            let Ok(text) = std::fs::read_to_string(&path) else { continue };
            let Some(s) = parse_stats_file(&text) else { continue };
            self.bump(|mine| mine.merge(&s));
            let _ = std::fs::remove_file(&path);
            merged += 1;
        }
        Ok(merged)
    }
}

/// Result of parsing a `.run` entry.
enum EntryParse {
    /// Valid entry under the expected fingerprint.
    Ok(RunRecord),
    /// Wrong magic or a foreign/unreadable fingerprint header — written
    /// by another harness build or machine, not damaged.
    Stale,
    /// The header names this very fingerprint but the body fails its
    /// checksum (or no longer parses): the entry was damaged after being
    /// written.
    Corrupt,
}

fn parse_run_entry(text: &str, expect_fingerprint: u64, expect_seed: u64) -> EntryParse {
    fn header(text: &str, expect_fingerprint: u64) -> Option<bool> {
        let mut lines = text.lines();
        if lines.next()? != MAGIC {
            return None;
        }
        let fp_line = lines.next()?.strip_prefix("fingerprint 0x")?;
        Some(u64::from_str_radix(fp_line, 16).ok()? == expect_fingerprint)
    }
    match header(text, expect_fingerprint) {
        None | Some(false) => return EntryParse::Stale,
        Some(true) => {}
    }
    fn body(text: &str, expect_seed: u64) -> Option<RunRecord> {
        let mut lines = text.lines().skip(2);
        let name = lines.next()?.strip_prefix("name ")?.to_string();
        let seed: u64 = lines.next()?.strip_prefix("seed ")?.parse().ok()?;
        if seed != expect_seed {
            return None;
        }
        let wall_seconds: f64 = lines.next()?.strip_prefix("wall ")?.parse().ok()?;
        let checksum_line = lines.next()?.strip_prefix("checksum 0x")?;
        let checksum = u64::from_str_radix(checksum_line, 16).ok()?;
        if lines.next()? != "trail" {
            return None;
        }
        let body: String = lines.map(|l| format!("{l}\n")).collect();
        if fnv64_parts(&[body.as_bytes()]) != checksum {
            return None;
        }
        let trail = Trail::parse(&body)?;
        Some(RunRecord { name, seed, trail, wall_seconds })
    }
    match body(text, expect_seed) {
        Some(rec) => EntryParse::Ok(rec),
        None => EntryParse::Corrupt,
    }
}

/// Content-addressed file name of the run entry for `(id, seed, params)`
/// — the same FNV-1a address [`RunCache`] uses internally, exposed so the
/// attestation layer ([`crate::attest`]) can name cache products without
/// holding a cache handle.
pub fn run_entry_file(id: &str, seed: u64, params: &Params) -> String {
    let key = fnv64_parts(&[
        b"run",
        id.as_bytes(),
        &seed.to_le_bytes(),
        canonical_params(params).as_bytes(),
    ]);
    format!("{key:016x}.run")
}

/// Content-addressed file name of the blob entry for `(kind, tag)`.
pub fn blob_entry_file(kind: &str, tag: &str) -> String {
    let key = fnv64_parts(&[b"blob", kind.as_bytes(), tag.as_bytes()]);
    format!("{key:016x}.txt")
}

/// The topology-stable portion of a run entry's text: the rendered trail
/// body after the `trail` header line. The header's `wall` line varies
/// between otherwise identical runs, so content addresses over entries
/// must hash only the body. `None` when the text is not a current-format
/// run entry.
pub fn run_entry_body(text: &str) -> Option<&str> {
    let mut rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
    for prefix in ["fingerprint ", "name ", "seed ", "wall ", "checksum "] {
        rest = rest.strip_prefix(prefix)?.split_once('\n')?.1;
    }
    rest.strip_prefix("trail\n")
}

/// The payload of a blob entry, ignoring the fingerprint header. `None`
/// when the text is not a current-format blob entry.
pub fn blob_entry_payload(text: &str) -> Option<&str> {
    let rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
    let rest = rest.strip_prefix("fingerprint ")?.split_once('\n')?.1;
    rest.strip_prefix("payload\n")
}

/// Parses a `.txt` blob entry; `None` means stale or malformed.
fn parse_blob_entry(text: &str, expect_fingerprint: u64) -> Option<String> {
    let rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
    let rest = rest.strip_prefix("fingerprint 0x")?;
    let (fp, rest) = rest.split_once('\n')?;
    if u64::from_str_radix(fp, 16).ok()? != expect_fingerprint {
        return None;
    }
    rest.strip_prefix("payload\n").map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_once, Experiment, RunContext};

    struct Noisy;
    impl Experiment for Noisy {
        fn name(&self) -> &str {
            "noisy"
        }
        fn run(&self, ctx: &mut RunContext) {
            let n = ctx.int("n", 12) as usize;
            let mut rng = ctx.rng("draws");
            let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
            ctx.record("mean", mean);
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("treu-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn miss_then_store_then_hit_roundtrips_bitwise() {
        let dir = tmp_dir("hit");
        let cache = RunCache::open_with_fingerprint(&dir, 0xABCD).unwrap();
        let params = Params::new().with_int("n", 20).with_text("tag", "x");
        assert!(cache.lookup("E", 7, &params).is_none());
        assert_eq!(cache.stats().misses, 1);

        let rec = run_once(&Noisy, 7, params.clone());
        cache.store("E", 7, &params, &rec).unwrap();
        let cached = cache.lookup("E", 7, &params).expect("hit after store");
        assert_eq!(cached.trail, rec.trail, "trail must round-trip bitwise");
        assert_eq!(cached.fingerprint(), rec.fingerprint());
        assert_eq!(cached.name, rec.name);
        assert_eq!(cached.seed, 7);
        assert_eq!(cached.wall_seconds, rec.wall_seconds);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations, s.stores), (1, 1, 0, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_distinguishes_id_seed_and_params() {
        let dir = tmp_dir("key");
        let cache = RunCache::open_with_fingerprint(&dir, 1).unwrap();
        let p = Params::new().with_int("n", 8);
        let rec = run_once(&Noisy, 7, p.clone());
        cache.store("E", 7, &p, &rec).unwrap();
        assert!(cache.lookup("F", 7, &p).is_none(), "different id");
        assert!(cache.lookup("E", 8, &p).is_none(), "different seed");
        assert!(
            cache.lookup("E", 7, &Params::new().with_int("n", 9)).is_none(),
            "different params"
        );
        assert!(cache.lookup("E", 7, &p).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn param_insertion_order_does_not_change_the_address() {
        let dir = tmp_dir("order");
        let cache = RunCache::open_with_fingerprint(&dir, 1).unwrap();
        let p1 = Params::new().with_int("a", 1).with_int("b", 2);
        let p2 = Params::new().with_int("b", 2).with_int("a", 1);
        let rec = run_once(&Noisy, 3, p1.clone());
        cache.store("E", 3, &p1, &rec).unwrap();
        assert!(cache.lookup("E", 3, &p2).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_change_invalidates() {
        let dir = tmp_dir("inval");
        let p = Params::new();
        let rec = run_once(&Noisy, 5, p.clone());
        {
            let old = RunCache::open_with_fingerprint(&dir, 0x1111).unwrap();
            old.store("E", 5, &p, &rec).unwrap();
            assert!(old.lookup("E", 5, &p).is_some());
        }
        // Same directory, new code+env fingerprint: the entry is stale.
        let new = RunCache::open_with_fingerprint(&dir, 0x2222).unwrap();
        assert!(new.lookup("E", 5, &p).is_none());
        assert_eq!(new.stats().invalidations, 1);
        assert_eq!(new.stats().misses, 0, "a stale entry is an invalidation, not a miss");
        // Overwriting refreshes it for the new fingerprint.
        new.store("E", 5, &p, &rec).unwrap();
        assert!(new.lookup("E", 5, &p).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_entry_counts_as_invalidation() {
        let dir = tmp_dir("corrupt");
        let cache = RunCache::open_with_fingerprint(&dir, 9).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 1, p.clone());
        cache.store("E", 1, &p, &rec).unwrap();
        // Truncate the entry on disk.
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        std::fs::write(&entry, "treu-cache v1\ngarbage").unwrap();
        assert!(cache.lookup("E", 1, &p).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_failure_is_corruption_and_self_heals() {
        let dir = tmp_dir("checksum");
        let cache = RunCache::open_with_fingerprint(&dir, 9).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 1, p.clone());
        cache.store("E", 1, &p, &rec).unwrap();
        // Damage the trail body while leaving the header (magic +
        // matching fingerprint) intact: bit rot, not staleness.
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let text = std::fs::read_to_string(&entry).unwrap();
        let damaged = text.replacen("metric", "metrjc", 1);
        assert_ne!(text, damaged, "fixture must actually flip bytes");
        std::fs::write(&entry, damaged).unwrap();

        assert!(matches!(cache.lookup_classified("E", 1, &p), Lookup::Corrupt));
        let s = cache.stats();
        assert_eq!((s.corruptions, s.invalidations, s.misses), (1, 0, 0));
        assert!(!entry.exists(), "corrupt entry must be deleted on sight");
        // The very next lookup is a clean miss; recompute + store heals.
        assert!(matches!(cache.lookup_classified("E", 1, &p), Lookup::Miss));
        cache.store("E", 1, &p, &rec).unwrap();
        let healed = cache.lookup("E", 1, &p).expect("healed entry serves again");
        assert_eq!(healed.trail, rec.trail);
        assert!(cache.render_stats().contains("1 corrupt (self-healed)"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_is_corruption_not_a_hit() {
        let dir = tmp_dir("truncated");
        let cache = RunCache::open_with_fingerprint(&dir, 9).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 1, p.clone());
        cache.store("E", 1, &p, &rec).unwrap();
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let text = std::fs::read_to_string(&entry).unwrap();
        // Simulate the torn write atomic rename now prevents: keep the
        // header, cut the file mid-trail.
        std::fs::write(&entry, &text[..text.len() - 10]).unwrap();
        assert!(cache.lookup("E", 1, &p).is_none());
        assert_eq!(cache.stats().corruptions, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stores_are_atomic_no_temp_files_survive() {
        let dir = tmp_dir("atomic");
        let cache = RunCache::open_with_fingerprint(&dir, 2).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 4, p.clone());
        for i in 0..8u64 {
            cache.store("E", i, &p, &rec).unwrap();
            cache.store_blob("tables", &i.to_string(), "payload").unwrap();
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away: {leftovers:?}");
        assert_eq!(cache.stats().stores, 8);
        assert_eq!(cache.stats().blob_stores, 8, "blob stores are counted on their own axis");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_snapshots_are_never_torn_under_concurrent_lookups() {
        let dir = tmp_dir("torn");
        let cache = RunCache::open_with_fingerprint(&dir, 2).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 1, p.clone());
        cache.store("E", 1, &p, &rec).unwrap();
        // Hammer classified lookups (hits and misses) from four threads
        // while a fifth snapshots continuously: the classification
        // invariant must hold in every single snapshot, not just at rest.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                let p = &p;
                s.spawn(move || {
                    for i in 0..200u64 {
                        let _ = cache.lookup_classified("E", 1 + (t + i) % 2, p);
                        let _ = cache.lookup_blob("tables", "nope");
                    }
                });
            }
            for _ in 0..500 {
                let snap = cache.stats();
                assert!(
                    snap.consistent(),
                    "torn snapshot: {} lookups vs {}+{}+{}+{}",
                    snap.lookups,
                    snap.hits,
                    snap.misses,
                    snap.invalidations,
                    snap.corruptions
                );
            }
        });
        let end = cache.stats();
        assert!(end.consistent());
        assert_eq!(end.lookups, 4 * 200, "every run lookup classified exactly once");
        assert_eq!(end.blob_lookups, 4 * 200, "every blob lookup classified exactly once");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_roundtrip_and_invalidation() {
        let dir = tmp_dir("blob");
        let cache = RunCache::open_with_fingerprint(&dir, 4).unwrap();
        assert!(cache.lookup_blob("tables", "seed7").is_none());
        let payload = "Table 1\n  row\n\nTable 2\n";
        cache.store_blob("tables", "seed7", payload).unwrap();
        assert_eq!(cache.lookup_blob("tables", "seed7").as_deref(), Some(payload));
        assert!(cache.lookup_blob("tables", "seed8").is_none(), "tag is part of the address");
        let other = RunCache::open_with_fingerprint(&dir, 5).unwrap();
        assert!(other.lookup_blob("tables", "seed7").is_none());
        assert_eq!(other.stats().blob_invalidations, 1);
        assert_eq!(other.stats().invalidations, 0, "blob staleness never pollutes run counters");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite regression: blob traffic used to share the run counters,
    /// understating the run hit-rate any time a report blob missed. The
    /// split keeps the two classifications independent.
    #[test]
    fn blob_traffic_does_not_distort_run_hit_rate() {
        let dir = tmp_dir("blobsplit");
        let cache = RunCache::open_with_fingerprint(&dir, 3).unwrap();
        let p = Params::new();
        let rec = run_once(&Noisy, 2, p.clone());
        cache.store("E", 2, &p, &rec).unwrap();
        assert!(cache.lookup("E", 2, &p).is_some());
        // Three blob misses would previously have dragged hit_rate to 1/4.
        for tag in ["a", "b", "c"] {
            assert!(cache.lookup_blob("tables", tag).is_none());
        }
        let s = cache.stats();
        assert!(s.consistent(), "{s:?}");
        assert_eq!(s.hit_rate(), 1.0, "run hit-rate must ignore blob misses: {s:?}");
        assert_eq!((s.lookups, s.hits), (1, 1));
        assert_eq!((s.blob_lookups, s.blob_misses, s.blob_hits), (3, 3, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_render_mentions_every_counter() {
        let dir = tmp_dir("render");
        let cache = RunCache::open_with_fingerprint(&dir, 2).unwrap();
        let _ = cache.lookup("E", 0, &Params::new());
        let s = cache.render_stats();
        assert!(s.contains("0 hit(s)"));
        assert!(s.contains("1 miss(es)"));
        assert!(s.contains("0 invalidation(s)"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_uses_environment_fingerprint() {
        let dir = tmp_dir("envfp");
        let cache = RunCache::open(&dir).unwrap();
        assert_eq!(cache.fingerprint(), Environment::capture().fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Stores a distinct record under each seed; entry names are the
    /// content-addressed `.run` file names for those seeds.
    fn store_seeds(cache: &RunCache, seeds: &[u64]) {
        let p = Params::new();
        for &seed in seeds {
            let rec = run_once(&Noisy, seed, p.clone());
            cache.store("E", seed, &p, &rec).unwrap();
        }
    }

    #[test]
    fn bounded_store_evicts_lru_by_logical_clock() {
        let dir = tmp_dir("lru");
        let cache =
            RunCache::open_bounded_with_fingerprint(&dir, CacheBound::entries(2), 7).unwrap();
        let p = Params::new();
        store_seeds(&cache, &[1, 2]);
        // Touch seed 1: it becomes the most recent, so seed 2 is the LRU
        // victim when seed 3 arrives — pure operation order, no clocks.
        assert!(cache.lookup("E", 1, &p).is_some());
        store_seeds(&cache, &[3]);
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "{s:?}");
        assert!(s.consistent(), "{s:?}");
        assert!(cache.lookup("E", 1, &p).is_some(), "recently touched entry survives");
        assert!(cache.lookup("E", 3, &p).is_some(), "just-stored entry survives");
        assert!(cache.lookup("E", 2, &p).is_none(), "LRU entry was evicted");
        assert_eq!(cache.eviction_log().len(), 1);
        assert_eq!(cache.resident_entries().len(), 2);
        assert!(cache.stats().consistent(), "consistent after post-eviction lookups");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite edge case: a store issued while the cache already sits
    /// exactly at its bound evicts exactly one entry and never overshoots.
    #[test]
    fn store_at_the_bound_evicts_exactly_one() {
        let dir = tmp_dir("atbound");
        let cache =
            RunCache::open_bounded_with_fingerprint(&dir, CacheBound::entries(3), 7).unwrap();
        store_seeds(&cache, &[1, 2, 3]);
        assert_eq!(cache.resident_entries().len(), 3, "exactly at the bound");
        assert_eq!(cache.stats().evictions, 0);
        for (i, seed) in [(1u64, 4u64), (2, 5), (3, 6)] {
            store_seeds(&cache, &[seed]);
            let s = cache.stats();
            assert_eq!(s.evictions, i, "one eviction per at-bound store: {s:?}");
            assert!(s.consistent(), "consistent after every eviction: {s:?}");
            assert_eq!(cache.resident_entries().len(), 3, "never overshoots the bound");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite edge case: a byte bound smaller than a single entry
    /// converges to an empty cache (the stored entry is its own victim)
    /// instead of looping or wedging.
    #[test]
    fn bound_smaller_than_one_entry_converges_to_empty() {
        let dir = tmp_dir("tiny");
        let cache = RunCache::open_bounded_with_fingerprint(&dir, CacheBound::bytes(8), 7).unwrap();
        let p = Params::new();
        store_seeds(&cache, &[1]);
        let s = cache.stats();
        assert_eq!((s.stores, s.evictions), (1, 1), "{s:?}");
        assert!(cache.resident_entries().is_empty());
        assert_eq!(cache.resident_bytes(), 0);
        assert!(cache.lookup("E", 1, &p).is_none(), "nothing can stay resident");
        assert!(cache.stats().consistent());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite edge case: an eviction racing a concurrent lookup is a
    /// clean miss — the reader finds the file gone (or reads it whole
    /// before the unlink) and every stats snapshot stays consistent.
    #[test]
    fn eviction_racing_concurrent_lookup_is_a_clean_miss() {
        let dir = tmp_dir("race");
        let cache =
            RunCache::open_bounded_with_fingerprint(&dir, CacheBound::entries(2), 7).unwrap();
        let p = Params::new();
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let cache = &cache;
                let p = &p;
                s.spawn(move || {
                    for i in 0..60u64 {
                        // Cycle lookups over the churn set: each is a hit
                        // or a miss depending on how the race lands.
                        let _ = cache.lookup("E", (t + i) % 6, p);
                    }
                });
            }
            // Churn stores through the 2-entry bound to force evictions
            // while the readers run.
            for round in 0..10u64 {
                store_seeds(&cache, &[round % 6]);
                let snap = cache.stats();
                assert!(snap.consistent(), "torn under eviction churn: {snap:?}");
            }
        });
        let end = cache.stats();
        assert!(end.consistent(), "{end:?}");
        assert!(end.evictions > 0, "the churn must actually evict: {end:?}");
        assert!(cache.resident_entries().len() <= 2, "bound holds after the race");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Reopening a warm directory under a bound is deterministic: the
    /// index seeds in file-name order, so the eviction that enforces the
    /// bound at open picks the lexicographically smallest entry names.
    #[test]
    fn bounded_reopen_seeds_in_name_order_and_enforces_the_bound() {
        let dir = tmp_dir("reopen");
        {
            let unbounded = RunCache::open_with_fingerprint(&dir, 7).unwrap();
            store_seeds(&unbounded, &[1, 2, 3, 4]);
        }
        let reopened =
            RunCache::open_bounded_with_fingerprint(&dir, CacheBound::entries(2), 7).unwrap();
        assert_eq!(reopened.stats().evictions, 2, "bound enforced at open");
        let mut expected: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        expected.sort();
        assert_eq!(reopened.resident_entries(), expected, "index mirrors the directory");
        let log = reopened.eviction_log();
        assert_eq!(log.len(), 2);
        assert!(log.windows(2).all(|w| w[0] < w[1]), "seed-order victims are name-ordered");
        assert!(log.iter().all(|n| !expected.contains(n)), "victims are gone from disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The logical clock is an operation counter: lookups and stores tick
    /// it, nothing else does, and unbounded handles never move it.
    #[test]
    fn logical_clock_counts_operations_not_time() {
        let dir = tmp_dir("clock");
        let cache =
            RunCache::open_bounded_with_fingerprint(&dir, CacheBound::entries(8), 7).unwrap();
        let p = Params::new();
        assert_eq!(cache.logical_clock(), 0);
        let _ = cache.lookup("E", 1, &p); // miss
        assert_eq!(cache.logical_clock(), 1);
        store_seeds(&cache, &[1]);
        assert_eq!(cache.logical_clock(), 2);
        let _ = cache.lookup("E", 1, &p); // hit
        let _ = cache.lookup_blob("tables", "none"); // blob miss
        assert_eq!(cache.logical_clock(), 4, "runs and blobs share one clock");
        cache.stats(); // snapshots are free
        cache.resident_entries();
        assert_eq!(cache.logical_clock(), 4);
        let unbounded = RunCache::open_with_fingerprint(&dir, 7).unwrap();
        let _ = unbounded.lookup("E", 1, &p);
        assert_eq!(unbounded.logical_clock(), 0, "unbounded handles bypass the index");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphaned_tmp_is_swept_on_open_but_live_writers_are_spared() {
        let dir = tmp_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        // A dead writer's dropping: pid 4294967294 names no live process.
        let orphan = dir.join("abcd.run.4294967294.3.tmp");
        std::fs::write(&orphan, "partial entry bytes").unwrap();
        // An unparseable name is presumed orphaned too.
        let junk = dir.join("noise.tmp");
        std::fs::write(&junk, "x").unwrap();
        // Our own in-flight write must survive an open from this process.
        let own = dir.join(format!("efgh.run.{}.9.tmp", std::process::id()));
        std::fs::write(&own, "still being written").unwrap();

        let cache = RunCache::open_with_fingerprint(&dir, 1).unwrap();
        assert!(!orphan.exists(), "dead writer's tmp is swept on open");
        assert!(!junk.exists(), "unparseable tmp is swept on open");
        assert!(own.exists(), "a live writer's tmp is never swept");
        assert!(cache.stats().consistent());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_sidecars_round_trip_merge_and_are_consumed() {
        let dir = tmp_dir("sidecar");
        let p = Params::new().with_int("n", 6);
        let rec = run_once(&Noisy, 2, p.clone());

        // "Worker" handle: one miss, one store, one hit — then sidecar.
        let worker = RunCache::open_with_fingerprint(&dir, 5).unwrap();
        assert!(worker.lookup("W", 2, &p).is_none());
        worker.store("W", 2, &p, &rec).unwrap();
        assert!(worker.lookup("W", 2, &p).is_some());
        let sidecar = worker.write_stats_sidecar().unwrap();
        assert!(sidecar.exists());
        assert_eq!(sidecar.extension().unwrap(), "stats");

        // "Coordinator" handle on the same directory: its own hit, plus
        // the worker's counters folded in at join.
        let coord = RunCache::open_with_fingerprint(&dir, 5).unwrap();
        assert!(coord.lookup("W", 2, &p).is_some());
        assert_eq!(coord.merge_stats_sidecars().unwrap(), 1);
        assert!(!sidecar.exists(), "merged sidecars are consumed");
        let s = coord.stats();
        assert_eq!((s.lookups, s.hits, s.misses, s.stores), (3, 2, 1, 1));
        assert!(s.consistent(), "merging classified counters preserves the invariant");
        // Nothing left to merge.
        assert_eq!(coord.merge_stats_sidecars().unwrap(), 0);

        // Sidecars are invisible to entry indexing: a bounded reopen
        // seeds only .run/.txt files.
        worker.write_stats_sidecar().unwrap();
        let bounded =
            RunCache::open_bounded_with_fingerprint(&dir, CacheBound::entries(10), 5).unwrap();
        assert_eq!(bounded.resident_entries().len(), 1, "only the .run entry is indexed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_file_format_round_trips_every_counter() {
        let s = CacheStats {
            lookups: 12,
            hits: 5,
            misses: 4,
            invalidations: 2,
            corruptions: 1,
            stores: 7,
            blob_lookups: 3,
            blob_hits: 1,
            blob_misses: 2,
            blob_invalidations: 0,
            blob_stores: 1,
            evictions: 9,
        };
        assert_eq!(parse_stats_file(&render_stats_file(&s)), Some(s));
        assert_eq!(parse_stats_file("not a sidecar"), None);
        assert_eq!(parse_stats_file(&format!("{STATS_MAGIC}\nlookups nope\n")), None);
    }
}
