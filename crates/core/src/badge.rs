//! ACM-style artifact badge evaluation.
//!
//! The REU's §2.1 project piloted materials for studying how conference
//! artifact-evaluation committees work. This module implements the decision
//! procedure such a committee applies, in the form used by ACM/IEEE venues:
//!
//! * **Artifacts Available** — the artifact exists and is retrievable.
//! * **Artifacts Evaluated — Functional** — the code half is complete
//!   (pinned + checked) and documentation explains every claim.
//! * **Results Reproduced** — an independent rerun produced the claimed
//!   results within each claim's tolerance.
//!
//! Evidence for the last badge is a set of [`ClaimCheck`]s, typically
//! produced by comparing a fresh [`crate::RunRecord`] against the claimed
//! values.

use crate::artifact::Artifact;

/// Badges a committee can award, ordered by strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Badge {
    /// The artifact is permanently retrievable.
    ArtifactsAvailable,
    /// The artifact is complete, documented, and exercised by checks.
    ArtifactsFunctional,
    /// The artifact's claims were independently reproduced.
    ResultsReproduced,
}

/// The outcome of checking one claim against a rerun.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimCheck {
    /// Claim id (matches `Artifact::claims`).
    pub claim_id: String,
    /// Value the artifact claims.
    pub claimed: f64,
    /// Value the rerun measured.
    pub measured: f64,
}

impl ClaimCheck {
    /// Relative error of the rerun against the claim (absolute error when
    /// the claimed value is zero). `NaN` when either side is not finite —
    /// use [`ClaimCheck::is_finite`] to distinguish "measurement broken"
    /// from "measurement missed".
    pub fn relative_error(&self) -> f64 {
        if !self.is_finite() {
            return f64::NAN;
        }
        if self.claimed == 0.0 {
            (self.measured - self.claimed).abs()
        } else {
            ((self.measured - self.claimed) / self.claimed).abs()
        }
    }

    /// Whether both the claimed and measured values are finite numbers.
    /// A NaN or infinite measurement means the rerun produced no usable
    /// evidence at all, which is a different failure from a numeric miss.
    pub fn is_finite(&self) -> bool {
        self.claimed.is_finite() && self.measured.is_finite()
    }

    /// Whether the rerun reproduces the claim within `tolerance`.
    /// Non-finite measurements never reproduce anything.
    pub fn within(&self, tolerance: f64) -> bool {
        self.is_finite() && self.relative_error() <= tolerance
    }
}

/// Result of a badge evaluation: the awarded badges plus the reasons any
/// badge was withheld.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Badges awarded, sorted ascending by strength.
    pub awarded: Vec<Badge>,
    /// Human-readable reasons for each withheld badge.
    pub withheld: Vec<String>,
}

impl Evaluation {
    /// True if the named badge was awarded.
    pub fn has(&self, badge: Badge) -> bool {
        self.awarded.contains(&badge)
    }
}

/// Evaluates an artifact against the badge ladder.
///
/// * `available` — whether the evaluator could retrieve the artifact.
/// * `checks` — claim-by-claim rerun evidence. Claims with no check count
///   as unreproduced.
pub fn evaluate(artifact: &Artifact, available: bool, checks: &[ClaimCheck]) -> Evaluation {
    let mut awarded = Vec::new();
    let mut withheld = Vec::new();

    if available {
        awarded.push(Badge::ArtifactsAvailable);
    } else {
        withheld.push("Available: artifact could not be retrieved".to_string());
    }

    let assessment = artifact.assess();
    let functional = available && assessment.code_complete() && assessment.docs_complete();
    if functional {
        awarded.push(Badge::ArtifactsFunctional);
    } else if available {
        if !assessment.code_complete() {
            withheld.push(format!(
                "Functional: code incomplete (pinned {:.0}%, checked {:.0}%)",
                assessment.code_pinned_fraction * 100.0,
                assessment.code_checked_fraction * 100.0
            ));
        }
        if !assessment.docs_complete() {
            withheld.push(format!(
                "Functional: docs incomplete (undocumented: {:?}, dangling: {:?})",
                assessment.undocumented_claims, assessment.dangling_doc_refs
            ));
        }
    } else {
        withheld.push("Functional: requires Available".to_string());
    }

    let mut reproduced = functional && !artifact.claims.is_empty();
    for claim in &artifact.claims {
        match checks.iter().find(|c| c.claim_id == claim.id) {
            Some(check) if check.within(claim.tolerance) => {}
            Some(check) if !check.is_finite() => {
                // A NaN/infinite measurement is not a near-miss: the rerun
                // produced no comparable number, so say that instead of a
                // meaningless "off by NaN%".
                reproduced = false;
                withheld.push(format!(
                    "Reproduced: claim {} measurement is not finite (measured {}, claimed {}) — no numeric comparison possible",
                    claim.id, check.measured, check.claimed
                ));
            }
            Some(check) => {
                reproduced = false;
                withheld.push(format!(
                    "Reproduced: claim {} off by {:.2}% (tolerance {:.2}%)",
                    claim.id,
                    check.relative_error() * 100.0,
                    claim.tolerance * 100.0
                ));
            }
            None => {
                reproduced = false;
                withheld.push(format!("Reproduced: claim {} has no rerun evidence", claim.id));
            }
        }
    }
    if !functional && !artifact.claims.is_empty() {
        withheld.push("Reproduced: requires Functional".to_string());
    }
    if artifact.claims.is_empty() {
        withheld.push("Reproduced: artifact declares no claims".to_string());
        reproduced = false;
    }
    if reproduced {
        awarded.push(Badge::ResultsReproduced);
    }

    Evaluation { awarded, withheld }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_artifact() -> Artifact {
        Artifact::new("treu", "0.1.0")
            .with_code("lib", "rust", true, true)
            .with_doc("README", &["C1", "C2"])
            .with_claim("C1", "accuracy is 0.9", 0.05)
            .with_claim("C2", "speedup is 3x", 0.10)
    }

    fn good_checks() -> Vec<ClaimCheck> {
        vec![
            ClaimCheck { claim_id: "C1".into(), claimed: 0.9, measured: 0.91 },
            ClaimCheck { claim_id: "C2".into(), claimed: 3.0, measured: 2.8 },
        ]
    }

    #[test]
    fn full_ladder_awarded() {
        let e = evaluate(&good_artifact(), true, &good_checks());
        assert!(e.has(Badge::ArtifactsAvailable));
        assert!(e.has(Badge::ArtifactsFunctional));
        assert!(e.has(Badge::ResultsReproduced));
        assert!(e.withheld.is_empty(), "{:?}", e.withheld);
    }

    #[test]
    fn unavailable_blocks_everything() {
        let e = evaluate(&good_artifact(), false, &good_checks());
        assert!(e.awarded.is_empty());
        assert!(e.withheld.iter().any(|w| w.contains("could not be retrieved")));
    }

    #[test]
    fn out_of_tolerance_blocks_reproduced_only() {
        let mut checks = good_checks();
        checks[1].measured = 1.0; // 66% off a 10% tolerance
        let e = evaluate(&good_artifact(), true, &checks);
        assert!(e.has(Badge::ArtifactsFunctional));
        assert!(!e.has(Badge::ResultsReproduced));
        assert!(e.withheld.iter().any(|w| w.contains("C2")));
    }

    #[test]
    fn missing_evidence_blocks_reproduced() {
        let checks = vec![good_checks().remove(0)];
        let e = evaluate(&good_artifact(), true, &checks);
        assert!(!e.has(Badge::ResultsReproduced));
        assert!(e.withheld.iter().any(|w| w.contains("no rerun evidence")));
    }

    #[test]
    fn incomplete_docs_block_functional_and_reproduced() {
        let art = Artifact::new("x", "1")
            .with_code("lib", "rust", true, true)
            .with_claim("C1", "claim", 0.0);
        let e = evaluate(&art, true, &[]);
        assert!(e.has(Badge::ArtifactsAvailable));
        assert!(!e.has(Badge::ArtifactsFunctional));
        assert!(!e.has(Badge::ResultsReproduced));
    }

    #[test]
    fn zero_claim_artifact_cannot_be_reproduced() {
        let art = Artifact::new("x", "1").with_code("lib", "rust", true, true);
        let e = evaluate(&art, true, &[]);
        assert!(e.has(Badge::ArtifactsFunctional));
        assert!(!e.has(Badge::ResultsReproduced));
        assert!(e.withheld.iter().any(|w| w.contains("no claims")));
    }

    #[test]
    fn nan_measurement_withheld_with_distinct_reason() {
        let mut checks = good_checks();
        checks[0].measured = f64::NAN;
        let e = evaluate(&good_artifact(), true, &checks);
        assert!(e.has(Badge::ArtifactsFunctional));
        assert!(!e.has(Badge::ResultsReproduced));
        let reason =
            e.withheld.iter().find(|w| w.contains("C1")).expect("C1 withheld reason present");
        assert!(reason.contains("not finite"), "distinct non-finite reason, got: {reason}");
        assert!(reason.contains("NaN"), "names the NaN measurement: {reason}");
        assert!(!reason.contains("off by"), "must not read as a numeric miss: {reason}");
    }

    #[test]
    fn infinite_measurement_withheld_with_distinct_reason() {
        let mut checks = good_checks();
        checks[1].measured = f64::INFINITY;
        let e = evaluate(&good_artifact(), true, &checks);
        assert!(!e.has(Badge::ResultsReproduced));
        let reason = e.withheld.iter().find(|w| w.contains("C2")).expect("C2 withheld");
        assert!(reason.contains("not finite") && reason.contains("inf"), "{reason}");
    }

    #[test]
    fn non_finite_checks_never_within() {
        let c = ClaimCheck { claim_id: "n".into(), claimed: 1.0, measured: f64::NAN };
        assert!(!c.is_finite());
        assert!(!c.within(f64::INFINITY), "even an infinite tolerance cannot absolve NaN");
        assert!(c.relative_error().is_nan());
        let c = ClaimCheck { claim_id: "i".into(), claimed: 1.0, measured: f64::INFINITY };
        assert!(!c.within(1e300));
    }

    #[test]
    fn relative_error_zero_claim_uses_absolute() {
        let c = ClaimCheck { claim_id: "z".into(), claimed: 0.0, measured: 0.01 };
        assert!((c.relative_error() - 0.01).abs() < 1e-15);
        assert!(c.within(0.02));
        assert!(!c.within(0.005));
    }

    #[test]
    fn badge_ordering() {
        assert!(Badge::ArtifactsAvailable < Badge::ArtifactsFunctional);
        assert!(Badge::ArtifactsFunctional < Badge::ResultsReproduced);
    }
}
