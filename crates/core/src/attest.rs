//! In-toto-style attestation over the experiment registry.
//!
//! Reproducibility machinery answers *does it reproduce?*; this module
//! answers *who says so, and can the evidence be tampered with after the
//! fact?* Following the in-toto model, each pipeline step (`run` →
//! `verify` → `badge`) emits a **link** record naming the step's
//! **materials** (what it consumed) and **products** (what it produced)
//! as 64-bit FNV-1a content addresses the workspace already computes —
//! trail fingerprints from [`crate::provenance`], cache-entry body hashes
//! from [`crate::cache`], trace stream hashes from [`crate::trace`]. A
//! **layout** document declares the expected step sequence and which
//! artifact-name prefixes each step may consume and produce.
//!
//! Links are chained: every link's `prev` field carries the MAC of its
//! predecessor (the layout's MAC for the first link), and every link is
//! sealed with a keyed MAC, so the link files form a Merkle DAG rooted in
//! the layout — re-ordering, dropping, or editing any link breaks the
//! chain at a pinpointable step. [`verify_chain`] walks the chain and
//! re-hashes the artifacts the links name, reporting the *first step
//! whose products no longer match* — a tampered cache entry, trace file,
//! or link file included.
//!
//! ## MAC construction
//!
//! No external crypto is available in this workspace, so the MAC is a
//! hand-rolled HMAC-*shaped* construction over [`fnv64_parts`]: the key
//! is padded to a 64-byte block, XORed with the classic `0x36`/`0x5c`
//! inner/outer pads, and folded in two passes
//! (`outer(key ⊕ opad ‖ inner(key ⊕ ipad ‖ message))`). FNV-1a is not a
//! cryptographic hash, so this provides **tamper-evidence against
//! accidental and casual modification, not security against an adversary
//! who holds the key or is willing to search for collisions** — the same
//! honesty note DESIGN.md attaches to every fingerprint in the
//! workspace. The construction keeps the real HMAC shape so a drop-in
//! hash upgrade strengthens it without changing any format.
//!
//! ## Topology invariance
//!
//! Link bytes must be identical at every `(workers, jobs)` topology, like
//! every other content-addressed artifact here. Content addresses
//! therefore cover only schedule-independent bytes: the rendered trail
//! *body* of a cache entry (its header's `wall` line varies), the hashed
//! event stream of a trace (timestamps live in the non-hashed sidecar),
//! and trail fingerprints. The sharded `svc` pipeline emits links
//! coordinator-side only, after the merged report is assembled, so
//! workers never race on the chain.

use crate::cache::{run_entry_body, RunCache};
use crate::exec::{RunOutcome, VerifyReport};
use crate::experiment::RunRecord;
use crate::hash::fnv64_parts;
use crate::provenance::{escape_key, unescape, Trail};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Magic first line of a link file.
pub const LINK_MAGIC: &str = "treu-link v1";
/// Magic first line of a layout file.
pub const LAYOUT_MAGIC: &str = "treu-layout v1";
/// Magic first line of a key file.
pub const KEY_MAGIC: &str = "treu-attest-key v1";

/// File name of the layout document inside an attestation directory.
pub const LAYOUT_FILE: &str = "layout.txt";
/// Default file name of the MAC key inside an attestation directory.
pub const KEY_FILE: &str = "attest.key";

/// Hashes raw bytes to a 64-bit content address (FNV-1a, the workspace's
/// single canonical hash).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    fnv64_parts(&[bytes])
}

fn parse_hex64(s: &str) -> Option<u64> {
    let hex = s.strip_prefix("0x")?;
    if hex.is_empty() || hex.len() > 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Atomic write local to the attestation directory: temp name + rename,
/// same discipline as the run cache, so a killed process can never leave
/// a truncated link at an addressable path.
fn write_atomic(dir: &Path, name: &str, contents: &str) -> io::Result<PathBuf> {
    let path = dir.join(name);
    let tmp = dir.join(format!("{name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, &path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    Ok(path)
}

// ---------------------------------------------------------------------------
// Key + MAC
// ---------------------------------------------------------------------------

/// A shared MAC key for sealing links and layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestKey {
    bytes: Vec<u8>,
}

impl AttestKey {
    /// Derives a 32-byte key deterministically from a seed (an FNV-1a
    /// chain over tagged blocks). Deterministic derivation keeps the
    /// whole pipeline reproducible; treat the seed like the key itself.
    pub fn derive(seed: u64) -> Self {
        let mut bytes = Vec::with_capacity(32);
        let mut h = fnv64_parts(&[b"treu-attest-key", &seed.to_le_bytes()]);
        for i in 0u64..4 {
            h = fnv64_parts(&[b"key-block", &h.to_le_bytes(), &i.to_le_bytes()]);
            bytes.extend_from_slice(&h.to_le_bytes());
        }
        Self { bytes }
    }

    /// Builds a key from raw bytes (for tests and external provisioning).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// Parses the key-file text form.
    pub fn parse(text: &str) -> Option<Self> {
        let rest = text.strip_prefix(KEY_MAGIC)?.strip_prefix('\n')?;
        let hex = rest.trim_end();
        if hex.is_empty() || hex.len() % 2 != 0 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let bytes = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
            .collect::<Option<Vec<u8>>>()?;
        Some(Self { bytes })
    }

    /// Renders the key-file text form.
    pub fn render(&self) -> String {
        let mut out = String::from(KEY_MAGIC);
        out.push('\n');
        for b in &self.bytes {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
        out
    }

    /// Loads a key file from disk.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("'{}' is not a treu attest key file", path.display()),
            )
        })
    }

    /// Public fingerprint of the key, recorded in layouts so a
    /// wrong-key verification is diagnosed as such rather than as mass
    /// tampering.
    pub fn fingerprint(&self) -> u64 {
        fnv64_parts(&[b"attest-key-fingerprint", &self.bytes])
    }

    /// Keyed MAC over `parts` — HMAC-shaped two-pass fold (see module
    /// docs for the construction and its honesty caveat).
    pub fn mac(&self, parts: &[&[u8]]) -> u64 {
        let mut block = [0u8; 64];
        if self.bytes.len() > 64 {
            block[..8].copy_from_slice(&fnv64_parts(&[&self.bytes]).to_le_bytes());
        } else {
            block[..self.bytes.len()].copy_from_slice(&self.bytes);
        }
        let ipad: Vec<u8> = block.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = block.iter().map(|b| b ^ 0x5C).collect();
        let mut inner_parts: Vec<&[u8]> = Vec::with_capacity(parts.len() + 1);
        inner_parts.push(&ipad);
        inner_parts.extend_from_slice(parts);
        let inner = fnv64_parts(&inner_parts);
        fnv64_parts(&[&opad, &inner.to_le_bytes()])
    }
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

/// One step's attestation: what it consumed, what it produced, sealed
/// with a keyed MAC and chained to its predecessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Step name (must appear in the layout).
    pub step: String,
    /// The seed the step ran under.
    pub seed: u64,
    /// MAC of the predecessor in the chain (the layout's MAC for the
    /// first link).
    pub prev: u64,
    /// Artifact name → content address consumed by the step.
    pub materials: BTreeMap<String, u64>,
    /// Artifact name → content address produced by the step.
    pub products: BTreeMap<String, u64>,
    /// Keyed MAC over the canonical body ([`Link::body`]).
    pub mac: u64,
}

impl Link {
    /// Canonical text the MAC covers: everything except the `mac` line.
    /// `BTreeMap` iteration makes the rendering order-independent of how
    /// artifacts were inserted.
    pub fn body(&self) -> String {
        let mut out = String::from(LINK_MAGIC);
        out.push('\n');
        out.push_str(&format!("step {}\n", escape_key(&self.step)));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("prev {:#018x}\n", self.prev));
        for (name, addr) in &self.materials {
            out.push_str(&format!("material {} {addr:#018x}\n", escape_key(name)));
        }
        for (name, addr) in &self.products {
            out.push_str(&format!("product {} {addr:#018x}\n", escape_key(name)));
        }
        out
    }

    /// Seals the link: computes and stores the MAC over [`Link::body`].
    pub fn sealed(mut self, key: &AttestKey) -> Self {
        self.mac = key.mac(&[self.body().as_bytes()]);
        self
    }

    /// True when the stored MAC matches a recomputation under `key`.
    pub fn mac_ok(&self, key: &AttestKey) -> bool {
        self.mac == key.mac(&[self.body().as_bytes()])
    }

    /// Full file text: body plus the `mac` line.
    pub fn render(&self) -> String {
        format!("{}mac {:#018x}\n", self.body(), self.mac)
    }

    /// Exact inverse of [`Link::render`]. `None` on any malformed line,
    /// duplicate artifact name, or misordered section.
    pub fn parse(text: &str) -> Option<Link> {
        let mut lines = text.lines();
        if lines.next()? != LINK_MAGIC {
            return None;
        }
        let step = unescape(lines.next()?.strip_prefix("step ")?)?;
        let seed: u64 = lines.next()?.strip_prefix("seed ")?.parse().ok()?;
        let prev = parse_hex64(lines.next()?.strip_prefix("prev ")?)?;
        let mut materials = BTreeMap::new();
        let mut products = BTreeMap::new();
        let mut mac = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("material ") {
                let (name, addr) = rest.rsplit_once(' ')?;
                if materials.insert(unescape(name)?, parse_hex64(addr)?).is_some() {
                    return None;
                }
            } else if let Some(rest) = line.strip_prefix("product ") {
                let (name, addr) = rest.rsplit_once(' ')?;
                if products.insert(unescape(name)?, parse_hex64(addr)?).is_some() {
                    return None;
                }
            } else if let Some(rest) = line.strip_prefix("mac ") {
                if mac.replace(parse_hex64(rest)?).is_some() {
                    return None;
                }
            } else {
                return None;
            }
        }
        Some(Link { step, seed, prev, materials, products, mac: mac? })
    }

    /// File name for the `index`-th link in a chain. The zero-padded
    /// index makes lexicographic directory order equal chain order.
    pub fn file_name(index: usize, step: &str) -> String {
        let safe: String = step
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        format!("{index:04}-{safe}.link")
    }
}

/// An unsealed link under construction: the step plus its artifact sets,
/// before the chain position (`prev`) and MAC are known.
#[derive(Debug, Clone, Default)]
pub struct LinkDraft {
    /// Step name.
    pub step: String,
    /// Seed the step ran under.
    pub seed: u64,
    /// Materials collected so far.
    pub materials: BTreeMap<String, u64>,
    /// Products collected so far.
    pub products: BTreeMap<String, u64>,
}

impl LinkDraft {
    /// Starts a draft for `step` under `seed`.
    pub fn new(step: &str, seed: u64) -> Self {
        Self { step: step.to_string(), seed, ..Self::default() }
    }

    /// Records a material (what the step consumed).
    pub fn material(&mut self, name: impl Into<String>, addr: u64) {
        self.materials.insert(name.into(), addr);
    }

    /// Records a product (what the step produced).
    pub fn product(&mut self, name: impl Into<String>, addr: u64) {
        self.products.insert(name.into(), addr);
    }

    /// Records the reproduced outcomes of a verify report: each
    /// reproduced id becomes both a `run:<id>` material (the fingerprint
    /// the step observed) and a `run:<id>` product (the fingerprint it
    /// attests), so consecutive links chain on matching fingerprints.
    pub fn absorb_verify(&mut self, report: &VerifyReport) {
        for o in report.outcomes.iter().filter(|o| o.reproduced) {
            self.material(format!("run:{}", o.id), o.fingerprint);
            self.product(format!("run:{}", o.id), o.fingerprint);
        }
    }

    /// Records the successful outcomes of a supervised/sharded run batch
    /// as `run:<id>` products.
    pub fn absorb_run_outcomes(&mut self, pairs: &[(String, RunOutcome)]) {
        for (id, out) in pairs {
            if let RunOutcome::Ok { record, .. } = out {
                self.product(format!("run:{id}"), record.fingerprint());
            }
        }
    }

    /// Records plain run records as `run:<id>` products.
    pub fn absorb_run_records(&mut self, records: &[(String, RunRecord)]) {
        for (id, rec) in records {
            self.product(format!("run:{id}"), rec.fingerprint());
        }
    }

    /// Records the cache entry for `(id, seed)` under `file` as a
    /// `cache:<id>/<file>` product, addressing only the topology-stable
    /// trail body. Silently skips entries that are absent or not in the
    /// current format (nothing to attest).
    pub fn absorb_cache_entry(&mut self, cache: &RunCache, id: &str, file: &str) {
        if let Ok(text) = std::fs::read_to_string(cache.dir().join(file)) {
            if let Some(body) = run_entry_body(&text) {
                self.product(format!("cache:{id}/{file}"), hash_bytes(body.as_bytes()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

/// One step's rules in a layout: which artifact-name prefixes it may
/// consume and produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRule {
    /// Step name.
    pub name: String,
    /// Allowed material-name prefixes.
    pub consumes: Vec<String>,
    /// Allowed product-name prefixes.
    pub produces: Vec<String>,
}

/// The declared pipeline: an ordered list of steps with per-step
/// materials/products rules, sealed with the same keyed MAC as links.
/// The layout's MAC is the chain root: the first link's `prev` must
/// equal it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Steps in pipeline order.
    pub steps: Vec<StepRule>,
    /// Fingerprint of the sealing key ([`AttestKey::fingerprint`]).
    pub key_fingerprint: u64,
    /// Keyed MAC over [`Layout::body`].
    pub mac: u64,
}

impl Layout {
    /// The default pipeline: `run` → `verify` → `badge`, with the
    /// artifact-name prefixes each step legitimately touches.
    pub fn default_pipeline(key: &AttestKey) -> Self {
        let step = |name: &str, consumes: &[&str], produces: &[&str]| StepRule {
            name: name.to_string(),
            consumes: consumes.iter().map(|s| s.to_string()).collect(),
            produces: produces.iter().map(|s| s.to_string()).collect(),
        };
        Layout {
            steps: vec![
                step("run", &["registry:", "env:"], &["run:", "cache:", "trace:"]),
                step("verify", &["registry:", "env:", "run:"], &["run:", "cache:", "trace:"]),
                step("badge", &["run:"], &["badge:"]),
            ],
            key_fingerprint: key.fingerprint(),
            mac: 0,
        }
        .sealed(key)
    }

    /// Canonical text the MAC covers: everything except the `mac` line.
    pub fn body(&self) -> String {
        let mut out = String::from(LAYOUT_MAGIC);
        out.push('\n');
        out.push_str(&format!("keyfp {:#018x}\n", self.key_fingerprint));
        for s in &self.steps {
            out.push_str(&format!("step {}\n", escape_key(&s.name)));
            out.push_str(&format!("  consumes {}\n", s.consumes.join(" ")));
            out.push_str(&format!("  produces {}\n", s.produces.join(" ")));
        }
        out
    }

    /// Seals the layout under `key`.
    pub fn sealed(mut self, key: &AttestKey) -> Self {
        self.mac = key.mac(&[self.body().as_bytes()]);
        self
    }

    /// True when the stored MAC matches a recomputation under `key`.
    pub fn mac_ok(&self, key: &AttestKey) -> bool {
        self.mac == key.mac(&[self.body().as_bytes()])
    }

    /// Full file text: body plus the `mac` line.
    pub fn render(&self) -> String {
        format!("{}mac {:#018x}\n", self.body(), self.mac)
    }

    /// Exact inverse of [`Layout::render`].
    pub fn parse(text: &str) -> Option<Layout> {
        let mut lines = text.lines();
        if lines.next()? != LAYOUT_MAGIC {
            return None;
        }
        let key_fingerprint = parse_hex64(lines.next()?.strip_prefix("keyfp ")?)?;
        let mut steps: Vec<StepRule> = Vec::new();
        let mut mac = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("step ") {
                steps.push(StepRule {
                    name: unescape(rest)?,
                    consumes: Vec::new(),
                    produces: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("  consumes") {
                steps.last_mut()?.consumes = rest.split_whitespace().map(str::to_string).collect();
            } else if let Some(rest) = line.strip_prefix("  produces") {
                steps.last_mut()?.produces = rest.split_whitespace().map(str::to_string).collect();
            } else if let Some(rest) = line.strip_prefix("mac ") {
                if mac.replace(parse_hex64(rest)?).is_some() {
                    return None;
                }
            } else {
                return None;
            }
        }
        Some(Layout { steps, key_fingerprint, mac: mac? })
    }

    /// Position of `step` in the pipeline, if declared.
    pub fn position(&self, step: &str) -> Option<usize> {
        self.steps.iter().position(|s| s.name == step)
    }
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// A directory holding one attestation chain: `layout.txt`, `attest.key`
/// (unless the key is provisioned elsewhere), and zero or more
/// `NNNN-<step>.link` files whose lexicographic order is chain order.
#[derive(Debug, Clone)]
pub struct AttestStore {
    dir: PathBuf,
}

impl AttestStore {
    /// Opens (without touching the filesystem) the store at `dir`.
    pub fn open(dir: &Path) -> Self {
        Self { dir: dir.to_path_buf() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the layout document.
    pub fn layout_path(&self) -> PathBuf {
        self.dir.join(LAYOUT_FILE)
    }

    /// Default path of the key file.
    pub fn key_path(&self) -> PathBuf {
        self.dir.join(KEY_FILE)
    }

    /// True when a layout document exists.
    pub fn initialized(&self) -> bool {
        self.layout_path().is_file()
    }

    /// Writes the layout (atomically), creating the directory first.
    pub fn write_layout(&self, layout: &Layout) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        write_atomic(&self.dir, LAYOUT_FILE, &layout.render())
    }

    /// Writes the key file (atomically), creating the directory first.
    pub fn write_key(&self, key: &AttestKey) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        write_atomic(&self.dir, KEY_FILE, &key.render())
    }

    /// Loads and parses the layout document.
    pub fn load_layout(&self) -> io::Result<Layout> {
        let path = self.layout_path();
        let text = std::fs::read_to_string(&path)?;
        Layout::parse(&text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("'{}' is not a treu layout file", path.display()),
            )
        })
    }

    /// All link files as `(file name, text)`, in chain (lexicographic)
    /// order.
    pub fn link_files(&self) -> io::Result<Vec<(String, String)>> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".link") {
                out.push((name, std::fs::read_to_string(entry.path())?));
            }
        }
        out.sort();
        Ok(out)
    }

    /// The `prev` value the next link must carry: the MAC of the last
    /// link, or the layout's MAC when the chain is empty. Fails closed
    /// on an unparseable tail link — appending to a corrupt chain would
    /// only bury the corruption.
    pub fn chain_head(&self, layout: &Layout) -> io::Result<u64> {
        let links = self.link_files()?;
        match links.last() {
            None => Ok(layout.mac),
            Some((file, text)) => Link::parse(text).map(|l| l.mac).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("chain tail '{file}' is unparseable; run `treu attest verify`"),
                )
            }),
        }
    }

    /// Seals `draft` onto the end of the chain and writes the link file.
    /// Returns the path and the sealed link.
    pub fn append(&self, key: &AttestKey, draft: LinkDraft) -> io::Result<(PathBuf, Link)> {
        let layout = self.load_layout()?;
        if !layout.mac_ok(key) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "layout MAC rejected under this key; refusing to extend the chain",
            ));
        }
        if layout.position(&draft.step).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("step '{}' is not declared in the layout", draft.step),
            ));
        }
        let prev = self.chain_head(&layout)?;
        let index = self.link_files()?.len();
        let link = Link {
            step: draft.step,
            seed: draft.seed,
            prev,
            materials: draft.materials,
            products: draft.products,
            mac: 0,
        }
        .sealed(key);
        let path = write_atomic(&self.dir, &Link::file_name(index, &link.step), &link.render())?;
        Ok((path, link))
    }
}

// ---------------------------------------------------------------------------
// Chain verification
// ---------------------------------------------------------------------------

/// Where to find the artifacts links name, plus the current values of
/// root materials. Any `None` skips that class of re-hash check (the
/// report lists what was skipped — silent truncation would read as
/// "covered everything").
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyContext<'a> {
    /// Directory holding cache entries (`cache:<id>/<file>` products).
    pub cache_dir: Option<&'a Path>,
    /// Directory holding trace streams (`trace:<file>` products).
    pub trace_dir: Option<&'a Path>,
    /// Current hash of the registry index (`registry:index` material).
    pub registry_index_hash: Option<u64>,
    /// Current environment fingerprint (`env:fingerprint` material).
    pub env_fingerprint: Option<u64>,
}

/// One verification failure, attributed to the step that produced the
/// offending artifact or link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainFailure {
    /// The producing step the failure is attributed to.
    pub step: String,
    /// The link file involved.
    pub link_file: String,
    /// The artifact (or `<link>`/`<layout>`) that failed.
    pub artifact: String,
    /// What went wrong.
    pub reason: String,
}

impl ChainFailure {
    fn render(&self) -> String {
        format!(
            "FAIL step '{}' ({}): {} — {}",
            self.step, self.link_file, self.artifact, self.reason
        )
    }
}

/// The result of walking an attestation chain.
#[derive(Debug, Clone, Default)]
pub struct ChainReport {
    /// Links inspected, in chain order, with per-link artifact counts.
    pub inspected: Vec<String>,
    /// Number of artifacts re-hashed against current bytes.
    pub rehashed: usize,
    /// Check classes skipped for lack of a directory/context value.
    pub skipped: Vec<String>,
    /// All failures, in walk order (first entry pinpoints the first
    /// broken step).
    pub failures: Vec<ChainFailure>,
}

impl ChainReport {
    /// True when the chain verified clean.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of links inspected.
    pub fn links(&self) -> usize {
        self.inspected.len()
    }

    /// Plain-text report. Deterministic: counts and names only, no wall
    /// times.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.inspected {
            out.push_str(&format!("  {line}\n"));
        }
        for s in &self.skipped {
            out.push_str(&format!("  skipped: {s}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("  {}\n", f.render()));
        }
        out.push_str(&format!(
            "chain: {} — {} link(s), {} artifact(s) re-hashed, {} failure(s)\n",
            if self.ok() { "OK" } else { "BROKEN" },
            self.links(),
            self.rehashed,
            self.failures.len()
        ));
        out
    }
}

/// Walks the chain in `store` under `key`: layout MAC, per-link MACs,
/// `prev` linkage, layout step order and prefix rules, materials-vs-
/// products continuity between consecutive steps, and a re-hash of every
/// named artifact reachable through `ctx`. The first failure pinpoints
/// the first step whose products no longer hold.
pub fn verify_chain(store: &AttestStore, key: &AttestKey, ctx: &VerifyContext) -> ChainReport {
    let mut report = ChainReport::default();
    let fail = |step: &str, link_file: &str, artifact: &str, reason: String| ChainFailure {
        step: step.to_string(),
        link_file: link_file.to_string(),
        artifact: artifact.to_string(),
        reason,
    };

    // 1. Layout: must exist, parse, name our key, and pass its MAC.
    let layout = match store.load_layout() {
        Ok(l) => l,
        Err(e) => {
            report.failures.push(fail("layout", LAYOUT_FILE, "<layout>", e.to_string()));
            return report;
        }
    };
    if layout.key_fingerprint != key.fingerprint() {
        report.failures.push(fail(
            "layout",
            LAYOUT_FILE,
            "<layout>",
            format!(
                "layout was sealed under key {:#018x} but verification key is {:#018x}",
                layout.key_fingerprint,
                key.fingerprint()
            ),
        ));
        return report;
    }
    if !layout.mac_ok(key) {
        report.failures.push(fail(
            "layout",
            LAYOUT_FILE,
            "<layout>",
            "layout MAC rejected — layout file tampered".to_string(),
        ));
        return report;
    }

    let files = match store.link_files() {
        Ok(f) => f,
        Err(e) => {
            report.failures.push(fail("layout", LAYOUT_FILE, "<links>", e.to_string()));
            return report;
        }
    };

    // Latest producer of every artifact name seen so far: name →
    // (address, step, link file).
    let mut produced: BTreeMap<String, (u64, String, String)> = BTreeMap::new();
    let mut expected_prev = layout.mac;
    let mut last_position = 0usize;

    for (file, text) in &files {
        let link = match Link::parse(text) {
            Some(l) => l,
            None => {
                report.failures.push(fail(
                    "unknown",
                    file,
                    "<link>",
                    "link file unparseable — truncated or tampered".to_string(),
                ));
                break; // nothing downstream can be attributed once the chain is unreadable
            }
        };
        report.inspected.push(format!(
            "{file:<24} step {:<8} {} material(s), {} product(s)",
            link.step,
            link.materials.len(),
            link.products.len()
        ));

        // 2. MAC: any flipped byte in the body (or a wrong key) lands here.
        if !link.mac_ok(key) {
            report.failures.push(fail(
                &link.step,
                file,
                "<link>",
                "link MAC rejected — link file tampered or sealed under a different key"
                    .to_string(),
            ));
            break;
        }

        // 3. Chain linkage: prev must equal the predecessor's MAC.
        if link.prev != expected_prev {
            report.failures.push(fail(
                &link.step,
                file,
                "<link>",
                format!(
                    "chain linkage broken: prev is {:#018x}, expected {:#018x} (link dropped, reordered, or inserted)",
                    link.prev, expected_prev
                ),
            ));
            break;
        }
        expected_prev = link.mac;

        // 4. Layout sequence: declared step, non-decreasing position.
        let position = match layout.position(&link.step) {
            Some(p) => p,
            None => {
                report.failures.push(fail(
                    &link.step,
                    file,
                    "<link>",
                    "step is not declared in the layout".to_string(),
                ));
                continue;
            }
        };
        if position < last_position {
            report.failures.push(fail(
                &link.step,
                file,
                "<link>",
                format!(
                    "step order violates the layout: '{}' cannot follow '{}'",
                    link.step, layout.steps[last_position].name
                ),
            ));
        }
        last_position = last_position.max(position);

        // 5. Prefix rules from the layout.
        let rule = &layout.steps[position];
        for (kind, names, allowed) in [
            ("material", &link.materials, &rule.consumes),
            ("product", &link.products, &rule.produces),
        ] {
            for name in names.keys() {
                if !allowed.iter().any(|p| name.starts_with(p.as_str())) {
                    report.failures.push(fail(
                        &link.step,
                        file,
                        name,
                        format!(
                            "{kind} name not allowed by the layout for step '{}' (allowed prefixes: {})",
                            link.step,
                            allowed.join(" ")
                        ),
                    ));
                }
            }
        }

        // 6. Materials continuity: a consumed artifact some earlier step
        //    produced must carry the producer's address.
        for (name, addr) in &link.materials {
            match produced.get(name) {
                Some((prev_addr, prev_step, prev_file)) if prev_addr != addr => {
                    report.failures.push(fail(
                        prev_step,
                        prev_file,
                        name,
                        format!(
                            "step '{prev_step}' produced {prev_addr:#018x} but step '{}' consumed {addr:#018x}",
                            link.step
                        ),
                    ));
                }
                Some(_) => {}
                // Root materials (registry:/env:) check against the
                // caller's current values.
                None if name == "registry:index" => {
                    if let Some(current) = ctx.registry_index_hash {
                        report.rehashed += 1;
                        if current != *addr {
                            report.failures.push(fail(
                                &link.step,
                                file,
                                name,
                                format!(
                                    "registry index hashed {addr:#018x} at emission but {current:#018x} now — the experiment set changed under the chain",
                                ),
                            ));
                        }
                    }
                }
                None if name == "env:fingerprint" => {
                    if let Some(current) = ctx.env_fingerprint {
                        report.rehashed += 1;
                        if current != *addr {
                            report.failures.push(fail(
                                &link.step,
                                file,
                                name,
                                format!(
                                    "environment fingerprint was {addr:#018x} at emission but {current:#018x} now — evidence is from a different build or machine",
                                ),
                            ));
                        }
                    }
                }
                None => {}
            }
        }

        // 7. Re-hash every product still on disk against its recorded
        //    address; blame this link's step (it produced the artifact).
        for (name, addr) in &link.products {
            if let Some(rest) = name.strip_prefix("cache:") {
                let Some(dir) = ctx.cache_dir else {
                    continue;
                };
                let Some((id, entry_file)) = rest.split_once('/') else {
                    report.failures.push(fail(
                        &link.step,
                        file,
                        name,
                        "malformed cache product name (want cache:<id>/<file>)".to_string(),
                    ));
                    continue;
                };
                report.rehashed += 1;
                let text = match std::fs::read_to_string(dir.join(entry_file)) {
                    Ok(t) => t,
                    Err(_) => {
                        report.failures.push(fail(
                            &link.step,
                            file,
                            name,
                            "cache entry missing — deleted or evicted after the step produced it"
                                .to_string(),
                        ));
                        continue;
                    }
                };
                let Some(body) = run_entry_body(&text) else {
                    report.failures.push(fail(
                        &link.step,
                        file,
                        name,
                        "cache entry no longer parses as a run entry — header tampered or format torn".to_string(),
                    ));
                    continue;
                };
                let current = hash_bytes(body.as_bytes());
                if current != *addr {
                    report.failures.push(fail(
                        &link.step,
                        file,
                        name,
                        format!(
                            "trail body hashed {addr:#018x} when produced but {current:#018x} now — cache entry tampered",
                        ),
                    ));
                    continue;
                }
                // Belt and braces: the trail inside the entry must still
                // fingerprint to the attested run:<id> product, so a
                // rewrite that fixes the entry checksum is still caught.
                if let Some(expect_fp) = link.products.get(&format!("run:{id}")) {
                    match Trail::parse(body) {
                        Some(trail) if trail.fingerprint() == *expect_fp => {}
                        Some(trail) => {
                            report.failures.push(fail(
                                &link.step,
                                file,
                                name,
                                format!(
                                    "trail fingerprint is {:#018x} but the link attests run:{id} as {expect_fp:#018x}",
                                    trail.fingerprint()
                                ),
                            ));
                        }
                        None => {
                            report.failures.push(fail(
                                &link.step,
                                file,
                                name,
                                "trail body no longer parses".to_string(),
                            ));
                        }
                    }
                }
            } else if let Some(trace_file) = name.strip_prefix("trace:") {
                let Some(dir) = ctx.trace_dir else {
                    continue;
                };
                report.rehashed += 1;
                match std::fs::read(dir.join(trace_file)) {
                    Ok(bytes) => {
                        let current = hash_bytes(&bytes);
                        if current != *addr {
                            report.failures.push(fail(
                                &link.step,
                                file,
                                name,
                                format!(
                                    "trace stream hashed {addr:#018x} when produced but {current:#018x} now — trace file tampered",
                                ),
                            ));
                        }
                    }
                    Err(_) => {
                        report.failures.push(fail(
                            &link.step,
                            file,
                            name,
                            "trace file missing — deleted after the step produced it".to_string(),
                        ));
                    }
                }
            }
            let entry = (*addr, link.step.clone(), file.clone());
            produced.insert(name.clone(), entry);
        }
    }

    if ctx.cache_dir.is_none() {
        report.skipped.push("cache re-hash (no --cache-dir)".to_string());
    }
    if ctx.trace_dir.is_none() {
        report.skipped.push("trace re-hash (no --trace-out)".to_string());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AttestKey {
        AttestKey::derive(2023)
    }

    fn draft(step: &str) -> LinkDraft {
        let mut d = LinkDraft::new(step, 2023);
        d.material("registry:index", 0x1111);
        d.material("env:fingerprint", 0x2222);
        d.product("run:T1", 0xAAAA);
        d
    }

    fn temp_store(tag: &str) -> AttestStore {
        let d = std::env::temp_dir().join(format!("treu-attest-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        AttestStore::open(&d)
    }

    fn init(store: &AttestStore) -> AttestKey {
        let k = key();
        store.write_key(&k).unwrap();
        store.write_layout(&Layout::default_pipeline(&k)).unwrap();
        k
    }

    #[test]
    fn key_roundtrips_and_fingerprint_is_stable() {
        let k = key();
        let parsed = AttestKey::parse(&k.render()).expect("key text parses");
        assert_eq!(parsed, k);
        assert_eq!(parsed.fingerprint(), k.fingerprint());
        assert_ne!(k.fingerprint(), AttestKey::derive(2024).fingerprint());
        assert_eq!(AttestKey::parse("garbage"), None);
        assert_eq!(AttestKey::parse(&format!("{KEY_MAGIC}\nzz\n")), None);
    }

    #[test]
    fn mac_is_keyed_and_position_sensitive() {
        let k = key();
        let other = AttestKey::derive(99);
        assert_ne!(k.mac(&[b"msg"]), other.mac(&[b"msg"]));
        assert_ne!(k.mac(&[b"msg"]), k.mac(&[b"msh"]));
        // fnv64_parts domain-separates parts, so shifting bytes across a
        // part boundary cannot forge the same MAC.
        assert_ne!(k.mac(&[b"ab", b"cd"]), k.mac(&[b"abcd"]));
        assert_ne!(k.mac(&[b"ab", b"cd"]), k.mac(&[b"abc", b"d"]));
    }

    #[test]
    fn link_codec_roundtrips() {
        let k = key();
        let mut d = draft("run");
        d.product("cache:T1/abc.run", 0xBBBB);
        d.product("trace:trace-1.jsonl", 0xCCCC);
        d.material("odd name with spaces = and <arrows>", 7);
        let link = Link {
            step: d.step,
            seed: d.seed,
            prev: 0xDEAD,
            materials: d.materials,
            products: d.products,
            mac: 0,
        }
        .sealed(&k);
        let text = link.render();
        let parsed = Link::parse(&text).expect("rendered link parses");
        assert_eq!(parsed, link);
        assert!(parsed.mac_ok(&k));
        assert_eq!(parsed.render(), text, "parse is the exact inverse of render");
    }

    #[test]
    fn link_mac_rejects_a_flipped_byte() {
        let k = key();
        let link = Link {
            step: "run".into(),
            seed: 2023,
            prev: 1,
            materials: draft("run").materials,
            products: draft("run").products,
            mac: 0,
        }
        .sealed(&k);
        let text = link.render();
        // Flip one byte in every body position; the MAC must reject all.
        let mac_line_start = text.rfind("mac ").unwrap();
        for i in 0..mac_line_start {
            let mut bytes = text.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(tampered) = String::from_utf8(bytes) else {
                continue;
            };
            // A structurally invalid parse is also a rejection.
            if let Some(l) = Link::parse(&tampered) {
                assert!(!l.mac_ok(&k), "flipped byte at {i} still passed the MAC: {tampered:?}");
            }
        }
        assert!(Link::parse(&text).unwrap().mac_ok(&k), "untampered link passes");
    }

    #[test]
    fn link_parse_rejects_malformed() {
        assert_eq!(Link::parse("nonsense"), None);
        assert_eq!(Link::parse(&format!("{LINK_MAGIC}\nstep run\nseed 1\nprev 0xzz\n")), None);
        // Duplicate artifact names and missing mac are malformed.
        let no_mac = format!("{LINK_MAGIC}\nstep run\nseed 1\nprev 0x01\n");
        assert_eq!(Link::parse(&no_mac), None);
        let dup = format!(
            "{LINK_MAGIC}\nstep run\nseed 1\nprev 0x01\nproduct a 0x01\nproduct a 0x02\nmac 0x01\n"
        );
        assert_eq!(Link::parse(&dup), None);
    }

    #[test]
    fn layout_codec_roundtrips_and_mac_gates() {
        let k = key();
        let layout = Layout::default_pipeline(&k);
        let parsed = Layout::parse(&layout.render()).expect("layout parses");
        assert_eq!(parsed, layout);
        assert!(parsed.mac_ok(&k));
        assert!(!parsed.mac_ok(&AttestKey::derive(7)));
        assert_eq!(parsed.position("run"), Some(0));
        assert_eq!(parsed.position("badge"), Some(2));
        assert_eq!(parsed.position("deploy"), None);
    }

    #[test]
    fn chain_verifies_clean_and_catches_linkage_breaks() {
        let store = temp_store("chain");
        let k = init(&store);
        store.append(&k, draft("run")).unwrap();
        let mut vd = draft("verify");
        vd.material("run:T1", 0xAAAA);
        store.append(&k, vd).unwrap();
        let report = verify_chain(&store, &k, &VerifyContext::default());
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.links(), 2);

        // Deleting the first link breaks the second's prev linkage.
        std::fs::remove_file(store.dir().join(Link::file_name(0, "run"))).unwrap();
        let report = verify_chain(&store, &k, &VerifyContext::default());
        assert!(!report.ok());
        assert!(report.failures[0].reason.contains("chain linkage broken"), "{}", report.render());
    }

    #[test]
    fn chain_pinpoints_mismatched_materials() {
        let store = temp_store("materials");
        let k = init(&store);
        store.append(&k, draft("run")).unwrap();
        let mut vd = draft("verify");
        vd.material("run:T1", 0xBEEF); // does not match run's product 0xAAAA
        store.append(&k, vd).unwrap();
        let report = verify_chain(&store, &k, &VerifyContext::default());
        assert!(!report.ok());
        let f = &report.failures[0];
        assert_eq!(f.step, "run", "blames the producing step");
        assert_eq!(f.artifact, "run:T1");
        assert!(f.reason.contains("consumed"), "{}", f.reason);
    }

    #[test]
    fn chain_rejects_steps_out_of_layout_order() {
        let store = temp_store("order");
        let k = init(&store);
        store.append(&k, LinkDraft::new("badge", 2023)).unwrap();
        store.append(&k, draft("run")).unwrap();
        let report = verify_chain(&store, &k, &VerifyContext::default());
        assert!(!report.ok());
        assert!(
            report.failures.iter().any(|f| f.reason.contains("step order violates the layout")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn chain_rejects_undeclared_prefixes_and_steps() {
        let store = temp_store("prefixes");
        let k = init(&store);
        let mut d = LinkDraft::new("run", 2023);
        d.product("deploy:prod", 1); // not a run product prefix
        store.append(&k, d).unwrap();
        let report = verify_chain(&store, &k, &VerifyContext::default());
        assert!(!report.ok());
        assert!(report.failures[0].reason.contains("not allowed by the layout"));
        assert_eq!(
            store.append(&k, LinkDraft::new("deploy", 2023)).unwrap_err().kind(),
            io::ErrorKind::InvalidInput,
            "appending an undeclared step fails closed"
        );
    }

    #[test]
    fn tampered_link_file_is_named() {
        let store = temp_store("tamper-link");
        let k = init(&store);
        store.append(&k, draft("run")).unwrap();
        let path = store.dir().join(Link::file_name(0, "run"));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace("run:T1 0x000000000000aaaa", "run:T1 0x000000000000aaab"),
        )
        .unwrap();
        let report = verify_chain(&store, &k, &VerifyContext::default());
        assert!(!report.ok());
        let f = &report.failures[0];
        assert_eq!(f.step, "run");
        assert!(f.reason.contains("MAC rejected"), "{}", f.reason);
    }

    #[test]
    fn tampered_layout_is_named() {
        let store = temp_store("tamper-layout");
        let k = init(&store);
        let path = store.layout_path();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("step badge", "step deploy")).unwrap();
        let report = verify_chain(&store, &k, &VerifyContext::default());
        assert!(!report.ok());
        assert!(report.failures[0].reason.contains("layout MAC rejected"));
    }

    #[test]
    fn wrong_key_is_diagnosed_as_wrong_key() {
        let store = temp_store("wrong-key");
        let k = init(&store);
        store.append(&k, draft("run")).unwrap();
        let report = verify_chain(&store, &AttestKey::derive(777), &VerifyContext::default());
        assert!(!report.ok());
        assert!(report.failures[0].reason.contains("verification key"), "{}", report.render());
    }

    #[test]
    fn root_material_drift_is_reported() {
        let store = temp_store("roots");
        let k = init(&store);
        store.append(&k, draft("run")).unwrap();
        let ctx = VerifyContext {
            registry_index_hash: Some(0x1111),
            env_fingerprint: Some(0x2222),
            ..VerifyContext::default()
        };
        assert!(verify_chain(&store, &k, &ctx).ok());
        let drifted = VerifyContext { registry_index_hash: Some(0x9999), ..ctx };
        let report = verify_chain(&store, &k, &drifted);
        assert!(!report.ok());
        assert!(report.failures[0].reason.contains("experiment set changed"));
    }

    #[test]
    fn empty_chain_is_ok_but_reports_zero_links() {
        let store = temp_store("empty");
        let k = init(&store);
        let report = verify_chain(&store, &k, &VerifyContext::default());
        assert!(report.ok());
        assert_eq!(report.links(), 0);
    }
}
