//! Canonical content-address hashing (re-exported from `treu-math`).
//!
//! Every content address in the harness — trace addresses, run-cache
//! keys, fault-plan draws, checksum lines — must come from the same
//! FNV-1a fold, or two subsystems that claim to agree on an address can
//! silently disagree. The single implementation lives in
//! [`treu_math::hash`] (the lowest layer, so `derive_seed` can share it);
//! this module is the canonical access path for everything above the math
//! layer. The analyzer's R12 (`duplicate-primitive`) rule enforces that
//! no module grows its own copy again.

pub use treu_math::hash::{fnv64, fnv64_parts, unit, FNV_OFFSET, FNV_PRIME};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_math_implementation() {
        assert_eq!(fnv64(b"treu"), treu_math::hash::fnv64(b"treu"));
        assert_eq!(fnv64_parts(&[b"a", b"b"]), treu_math::hash::fnv64_parts(&[b"a", b"b"]));
        assert_eq!(unit(FNV_OFFSET), treu_math::hash::unit(FNV_OFFSET));
        assert_eq!(FNV_PRIME, 0x0000_0100_0000_01B3);
    }
}
